//! Quickstart: build a HIGGS summary over a small graph stream and run the
//! four TRQ primitives (edge, vertex, path, subgraph queries).
//!
//! Run with: `cargo run -p higgs-examples --release --bin quickstart`

use higgs::{HiggsConfig, HiggsSummary};
use higgs_common::{
    PathQuery, StreamEdge, SubgraphQuery, SummaryExt, TemporalGraphSummary, TimeRange,
    VertexDirection,
};

fn main() {
    // The graph stream of Fig. 5 in the paper: edges (src, dst, weight, time).
    let stream = vec![
        StreamEdge::new(1, 2, 1, 1),
        StreamEdge::new(4, 5, 1, 2),
        StreamEdge::new(2, 3, 1, 3),
        StreamEdge::new(1, 4, 2, 4),
        StreamEdge::new(4, 6, 3, 5),
        StreamEdge::new(2, 3, 1, 6),
        StreamEdge::new(3, 7, 2, 7),
        StreamEdge::new(4, 7, 2, 8),
        StreamEdge::new(2, 3, 2, 9),
        StreamEdge::new(5, 6, 1, 10),
        StreamEdge::new(6, 7, 1, 11),
    ];

    // Build the summary with the paper's default parameters (d1 = 16,
    // F1 = 19, b = 3, r = 4, θ = 4).
    let mut summary = HiggsSummary::new(HiggsConfig::paper_default());
    for edge in &stream {
        summary.insert(edge);
    }

    println!("HIGGS quickstart — {} stream items inserted", stream.len());
    println!(
        "tree height: {}, leaves: {}",
        summary.height(),
        summary.leaf_count()
    );
    println!("space: {} bytes\n", summary.space_bytes());

    // Edge query: aggregated weight of 2 → 3 between t5 and t10 (paper: 3).
    let w = summary.edge_query(2, 3, TimeRange::new(5, 10));
    println!("edge  query  (2 → 3) in [5, 10]      = {w}");

    // Vertex query: total outgoing weight of vertex 4 in [1, 11] (paper: 6).
    let w = summary.vertex_query(4, VertexDirection::Out, TimeRange::new(1, 11));
    println!("vertex query (out of 4) in [1, 11]    = {w}");

    // Path query: 1 → 2 → 3 → 7 over the whole stream.
    let w = summary.path_query(&PathQuery {
        vertices: vec![1, 2, 3, 7],
        range: TimeRange::all(),
    });
    println!("path  query  (1→2→3→7) over all time = {w}");

    // Subgraph query: {(2,3), (3,7), (2,4)} between t4 and t8 (paper: 3).
    let w = summary.subgraph_query(&SubgraphQuery {
        edges: vec![(2, 3), (3, 7), (2, 4)],
        range: TimeRange::new(4, 8),
    });
    println!("subgraph query {{(2,3),(3,7),(2,4)}} in [4, 8] = {w}");
}
