//! Quickstart: serve a HIGGS summary behind the [`HiggsService`] front-end
//! and run the four TRQ kinds through one cloneable [`ServiceClient`] —
//! fallible ingest, single queries, and a mixed plan-sharing batch.
//!
//! Run with: `cargo run -p higgs-examples --release --example quickstart`

use higgs::{HiggsConfig, HiggsService};
use higgs_common::{
    Query, QueryOptions, StreamEdge, TemporalGraphSummary, TimeRange, VertexDirection,
};

fn main() {
    // The graph stream of Fig. 5 in the paper: edges (src, dst, weight, time).
    let stream = vec![
        StreamEdge::new(1, 2, 1, 1),
        StreamEdge::new(4, 5, 1, 2),
        StreamEdge::new(2, 3, 1, 3),
        StreamEdge::new(1, 4, 2, 4),
        StreamEdge::new(4, 6, 3, 5),
        StreamEdge::new(2, 3, 1, 6),
        StreamEdge::new(3, 7, 2, 7),
        StreamEdge::new(4, 7, 2, 8),
        StreamEdge::new(2, 3, 2, 9),
        StreamEdge::new(5, 6, 1, 10),
        StreamEdge::new(6, 7, 1, 11),
    ];

    // Build the service with the paper's default parameters (d1 = 16,
    // F1 = 19, b = 3, r = 4, θ = 4) over two shards. The builder validates
    // the combination and returns Err(ConfigError) instead of panicking on
    // bad parameters; the service wraps a ShardedHiggs with an admission
    // loop and hands out cloneable clients.
    let config = HiggsConfig::builder()
        .shards(2)
        .build()
        .expect("paper defaults are valid");
    let service = HiggsService::new(config);
    let client = service.client();

    // Ingest is fallible now: Err(IngestError) distinguishes backpressure,
    // shutdown, and load-shedding rejection instead of a bare bool.
    client
        .insert_all(&stream)
        .expect("a live service accepts ingest");

    println!("HIGGS quickstart — {} stream items inserted", stream.len());
    println!(
        "service: {} shards holding {:?} leaves",
        service.num_shards(),
        service.summary().shard_leaf_counts()
    );
    println!("space: {} bytes\n", service.summary().space_bytes());

    // Edge query: aggregated weight of 2 → 3 between t5 and t10 (paper: 3).
    // Queries are read-your-writes by default — the ingest above is visible.
    let w = client
        .query(&Query::edge(2, 3, TimeRange::new(5, 10)))
        .expect("service is live");
    println!("edge  query  (2 → 3) in [5, 10]      = {w}");

    // Vertex query: total outgoing weight of vertex 4 in [1, 11] (paper: 6).
    let w = client
        .query(&Query::vertex(
            4,
            VertexDirection::Out,
            TimeRange::new(1, 11),
        ))
        .expect("service is live");
    println!("vertex query (out of 4) in [1, 11]    = {w}");

    // Path query: 1 → 2 → 3 → 7 over the whole stream. The typed surface
    // builds ONE query plan per shard touched and evaluates every hop
    // against it.
    let w = client
        .query(&Query::path(vec![1, 2, 3, 7], TimeRange::all()))
        .expect("service is live");
    println!("path  query  (1→2→3→7) over all time = {w}");

    // Subgraph query: {(2,3), (3,7), (2,4)} between t4 and t8 (paper: 3).
    // Per-query options ride along: this one is latency-sensitive, so it is
    // admitted ahead of Normal/Bulk traffic in its tick.
    let w = client
        .submit_with(
            Query::subgraph(vec![(2, 3), (3, 7), (2, 4)], TimeRange::new(4, 8)),
            QueryOptions::new().priority(higgs_common::Priority::Interactive),
        )
        .wait()
        .expect("service is live");
    println!("subgraph query {{(2,3),(3,7),(2,4)}} in [4, 8] = {w}\n");

    // Mixed batch: queries sharing a time range also share its plan — the
    // boundary search runs at most once per distinct range per shard, and
    // the [1, 11] window was already planned (and cached) by the vertex
    // query above, so this whole batch re-plans nothing.
    let window = TimeRange::new(1, 11);
    service.reset_plan_count();
    let results = client
        .query_batch(&[
            Query::edge(2, 3, window),
            Query::vertex(4, VertexDirection::Out, window),
            Query::path(vec![1, 2, 3, 7], window),
        ])
        .expect("service is live");
    println!(
        "batch over one shared window = {results:?} ({} queries, {} plans built: \
         the window's plan was already in the cross-batch cache)",
        results.len(),
        service.plans_built()
    );
}
