//! Financial fraud-pattern screening (a motivating application from the
//! paper's introduction): look for suspicious transaction chains — paths
//! A → B → C whose aggregated weight inside a short time window exceeds a
//! threshold — with TWO concurrent screener clients submitting the same
//! sliding windows through one [`HiggsService`]. The admission loop
//! coalesces both clients' queries into shared per-shard plans, asserted
//! via `plans_built()`.
//!
//! Run with: `cargo run -p higgs-examples --release --example fraud_detection`

use higgs::{HiggsConfig, HiggsService};
use higgs_common::generator::{generate_stream, BurstConfig, StreamConfig};
use higgs_common::{Query, StreamEdge, TemporalGraphSummary, TimeRange};
use std::time::Duration;

fn main() {
    // Background payment traffic: many accounts, bursty arrival pattern.
    let mut stream = generate_stream(&StreamConfig {
        name: "payments".into(),
        vertices: 5_000,
        edges: 40_000,
        skew: 1.8,
        time_slices: 1 << 14,
        bursts: BurstConfig::default(),
        max_weight: 50,
        seed: 2024,
    });

    // Inject a layering pattern: account 900001 fans money through two mules
    // (900002, 900003) into 900004 inside a narrow window.
    let fraud_window_start = 8_000u64;
    for k in 0..20u64 {
        let t = fraud_window_start + k;
        stream.push(StreamEdge::new(900_001, 900_002, 950, t));
        stream.push(StreamEdge::new(900_002, 900_003, 940, t + 1));
        stream.push(StreamEdge::new(900_003, 900_004, 930, t + 2));
    }
    stream.sort_by_time();

    // Shard the summary 4 ways by sending account and serve it: the
    // admission tick holds each batch open briefly so concurrently-submitted
    // screens land in the same coalesced tick.
    let config = HiggsConfig::builder()
        .shards(4)
        .admission_tick(Duration::from_millis(2))
        .build()
        .expect("paper defaults with 4 shards are valid");
    let service = HiggsService::new(config);
    let ingest = service.client();
    ingest
        .insert_all(stream.edges())
        .expect("a live service accepts the payment feed");
    println!(
        "fraud_detection — {} transfers summarised into {} KiB over {} shards",
        stream.len(),
        service.summary().space_bytes() / 1024,
        service.num_shards()
    );

    // Screen 3-hop chains through the known mule accounts over sliding
    // windows of 64 time slices. Each screener submits its whole sweep as
    // ONE batch; the plan-sharing executor builds a single query plan per
    // window per shard touched and evaluates every hop of the chain against
    // it.
    let chain = vec![900_001u64, 900_002, 900_003, 900_004];
    let threshold = 10_000u64;
    let span = stream.time_span().unwrap();
    let mut batch = Vec::new();
    let mut ranges = Vec::new();
    let mut window_start = span.start;
    while window_start + 64 <= span.end {
        let range = TimeRange::new(window_start, window_start + 63);
        batch.push(Query::path(chain.clone(), range));
        ranges.push(range);
        window_start += 64;
    }

    // TWO independent screeners (compliance and risk) run the identical
    // sweep concurrently, each through its own cloned client. Both sweeps
    // funnel through the shared admission loop, so duplicated windows cost
    // one boundary search per (window, shard) — never one per client.
    service.reset_plan_count();
    let compliance = service.client();
    let risk = service.client();
    let sweep = batch.clone();
    let compliance_screen =
        std::thread::spawn(move || compliance.query_batch(&sweep).expect("service is live"));
    let risk_totals = risk.query_batch(&batch).expect("service is live");
    let totals = compliance_screen.join().expect("screener thread panicked");
    assert_eq!(totals, risk_totals, "both screeners must agree");

    let cold_plans = service.plans_built();
    let plan_bound = (ranges.len() * service.num_shards()) as u64;
    assert!(
        cold_plans <= plan_bound,
        "{cold_plans} plans for two concurrent screeners must stay within the \
         one-per-(window, shard) bound of {plan_bound}"
    );
    println!(
        "two concurrent screeners covered {} windows with {cold_plans} query \
         plans (bound: one per window per shard touched = {plan_bound}; a lone \
         screener would need the same — the second rides along for free)",
        ranges.len(),
    );

    // Real screeners re-submit the same sliding windows every tick. With no
    // payments landing in between, every window's plan is served from the
    // cross-batch plan cache: zero boundary searches on the warm tick, for
    // any number of clients.
    service.reset_plan_count();
    let warm = risk.query_batch(&batch).expect("service is live");
    assert_eq!(warm, totals, "the warm tick must report identical volumes");
    assert_eq!(
        service.plans_built(),
        0,
        "a warm re-screen must be served entirely from the plan cache"
    );
    println!(
        "re-screened the same {} windows with 0 query plans \
         (cross-batch plan cache; invalidated automatically when ingest resumes)",
        batch.len(),
    );

    let mut alerts = 0;
    for (range, total) in ranges.iter().zip(&totals) {
        if *total > threshold {
            alerts += 1;
            println!(
                "ALERT window {range}: chain 900001→900002→900003→900004 moved ~{total} units"
            );
        }
    }
    println!("\n{alerts} windows exceeded the {threshold}-unit layering threshold");

    // Double-check one hop with a typed edge query.
    let hop = risk
        .query(&Query::edge(
            900_001,
            900_002,
            TimeRange::new(fraud_window_start, fraud_window_start + 32),
        ))
        .expect("service is live");
    println!("first hop volume inside the injected window: ~{hop} units");
    assert!(hop >= 950 * 20, "injected volume must be visible");
}
