//! Financial fraud-pattern screening (a motivating application from the
//! paper's introduction): look for suspicious transaction chains — paths
//! A → B → C whose aggregated weight inside a short time window exceeds a
//! threshold — using edge and path queries.
//!
//! Run with: `cargo run -p higgs-examples --release --bin fraud_detection`

use higgs::{HiggsConfig, HiggsSummary};
use higgs_common::generator::{generate_stream, BurstConfig, StreamConfig};
use higgs_common::{PathQuery, StreamEdge, SummaryExt, TemporalGraphSummary, TimeRange};

fn main() {
    // Background payment traffic: many accounts, bursty arrival pattern.
    let mut stream = generate_stream(&StreamConfig {
        name: "payments".into(),
        vertices: 5_000,
        edges: 40_000,
        skew: 1.8,
        time_slices: 1 << 14,
        bursts: BurstConfig::default(),
        max_weight: 50,
        seed: 2024,
    });

    // Inject a layering pattern: account 900001 fans money through two mules
    // (900002, 900003) into 900004 inside a narrow window.
    let fraud_window_start = 8_000u64;
    for k in 0..20u64 {
        let t = fraud_window_start + k;
        stream.push(StreamEdge::new(900_001, 900_002, 950, t));
        stream.push(StreamEdge::new(900_002, 900_003, 940, t + 1));
        stream.push(StreamEdge::new(900_003, 900_004, 930, t + 2));
    }
    stream.sort_by_time();

    let mut summary = HiggsSummary::new(HiggsConfig::paper_default());
    summary.insert_all(stream.edges());
    println!(
        "fraud_detection — {} transfers summarised into {} KiB",
        stream.len(),
        summary.space_bytes() / 1024
    );

    // Screen 2-hop chains through the known mule accounts over sliding
    // windows of 64 time slices.
    let chain = vec![900_001u64, 900_002, 900_003, 900_004];
    let threshold = 10_000u64;
    let span = stream.time_span().unwrap();
    let mut alerts = 0;
    let mut window_start = span.start;
    while window_start + 64 <= span.end {
        let range = TimeRange::new(window_start, window_start + 63);
        let total = summary.path_query(&PathQuery {
            vertices: chain.clone(),
            range,
        });
        if total > threshold {
            alerts += 1;
            println!(
                "ALERT window {range}: chain 900001→900002→900003→900004 moved ~{total} units"
            );
        }
        window_start += 64;
    }
    println!("\n{alerts} windows exceeded the {threshold}-unit layering threshold");

    // Double-check one hop with an edge query.
    let hop = summary.edge_query(
        900_001,
        900_002,
        TimeRange::new(fraud_window_start, fraud_window_start + 32),
    );
    println!("first hop volume inside the injected window: ~{hop} units");
    assert!(hop >= 950 * 20, "injected volume must be visible");
}
