//! Financial fraud-pattern screening (a motivating application from the
//! paper's introduction): look for suspicious transaction chains — paths
//! A → B → C whose aggregated weight inside a short time window exceeds a
//! threshold — screening every sliding window in one plan-sharing
//! [`query_batch`] call, served from a 4-shard [`ShardedHiggs`] so payment
//! ingest scales across writer cores while the screener queries.
//!
//! Run with: `cargo run -p higgs-examples --release --example fraud_detection`

use higgs::{HiggsConfig, ShardedHiggs};
use higgs_common::generator::{generate_stream, BurstConfig, StreamConfig};
use higgs_common::{Query, StreamEdge, TemporalGraphSummary, TimeRange};

fn main() {
    // Background payment traffic: many accounts, bursty arrival pattern.
    let mut stream = generate_stream(&StreamConfig {
        name: "payments".into(),
        vertices: 5_000,
        edges: 40_000,
        skew: 1.8,
        time_slices: 1 << 14,
        bursts: BurstConfig::default(),
        max_weight: 50,
        seed: 2024,
    });

    // Inject a layering pattern: account 900001 fans money through two mules
    // (900002, 900003) into 900004 inside a narrow window.
    let fraud_window_start = 8_000u64;
    for k in 0..20u64 {
        let t = fraud_window_start + k;
        stream.push(StreamEdge::new(900_001, 900_002, 950, t));
        stream.push(StreamEdge::new(900_002, 900_003, 940, t + 1));
        stream.push(StreamEdge::new(900_003, 900_004, 930, t + 2));
    }
    stream.sort_by_time();

    // Shard the summary 4 ways by sending account: each shard owns a writer
    // thread and aggregation pipeline, so the payment feed is accepted at
    // routing speed, and the screener below queries while ingest completes.
    let config = HiggsConfig::builder()
        .shards(4)
        .build()
        .expect("paper defaults with 4 shards are valid");
    let mut summary = ShardedHiggs::new(config);
    summary.insert_all(stream.edges());
    println!(
        "fraud_detection — {} transfers summarised into {} KiB over {} shards",
        stream.len(),
        summary.space_bytes() / 1024,
        summary.num_shards()
    );

    // Screen 3-hop chains through the known mule accounts over sliding
    // windows of 64 time slices — submitted as ONE batch. The plan-sharing
    // executor builds a single query plan per window and evaluates every hop
    // of the chain against it, instead of re-running the boundary search
    // per hop per window.
    let chain = vec![900_001u64, 900_002, 900_003, 900_004];
    let threshold = 10_000u64;
    let span = stream.time_span().unwrap();
    let mut batch = Vec::new();
    let mut ranges = Vec::new();
    let mut window_start = span.start;
    while window_start + 64 <= span.end {
        let range = TimeRange::new(window_start, window_start + 63);
        batch.push(Query::path(chain.clone(), range));
        ranges.push(range);
        window_start += 64;
    }
    summary.reset_plan_count();
    let totals = summary.query_batch(&batch);
    println!(
        "screened {} windows with {} query plans (≤ one per window per shard \
         touched: the chain's hops route to the shards owning the 3 sending \
         accounts, and each shard plans each window once)",
        batch.len(),
        summary.plans_built()
    );
    // A real screener re-submits the same sliding windows every tick. With
    // no payments landing in between, every window's plan is served from the
    // cross-batch plan cache: zero boundary searches on the warm tick.
    summary.reset_plan_count();
    let warm = summary.query_batch(&batch);
    assert_eq!(warm, totals, "the warm tick must report identical volumes");
    println!(
        "re-screened the same {} windows with {} query plans \
         (cross-batch plan cache; invalidated automatically when ingest resumes)",
        batch.len(),
        summary.plans_built()
    );

    let mut alerts = 0;
    for (range, total) in ranges.iter().zip(&totals) {
        if *total > threshold {
            alerts += 1;
            println!(
                "ALERT window {range}: chain 900001→900002→900003→900004 moved ~{total} units"
            );
        }
    }
    println!("\n{alerts} windows exceeded the {threshold}-unit layering threshold");

    // Double-check one hop with a typed edge query.
    let hop = summary.query(&Query::edge(
        900_001,
        900_002,
        TimeRange::new(fraud_window_start, fraud_window_start + 32),
    ));
    println!("first hop volume inside the injected window: ~{hop} units");
    assert!(hop >= 950 * 20, "injected volume must be visible");
}
