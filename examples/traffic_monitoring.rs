//! Urban traffic monitoring (a motivating application from the paper's
//! introduction): estimate flow on road segments and corridors during peak
//! hours versus off-peak hours, and compare HIGGS against the Horae baseline
//! on the same stream. The peak/off-peak sweep is one mixed [`QueryBatch`]
//! submitted to every store — the same typed queries drive the approximate
//! summaries and the exact ground truth. The HIGGS side is served through a
//! [`ServiceClient`]; the baselines stay embedded for a like-for-like
//! accuracy comparison.
//!
//! Run with: `cargo run -p higgs-examples --release --example traffic_monitoring`

use higgs::{HiggsConfig, HiggsService};
use higgs_baselines::{Horae, HoraeConfig};
use higgs_common::generator::{generate_stream, BurstConfig, StreamConfig};
use higgs_common::{
    ExactTemporalGraph, Query, QueryBatch, StreamEdge, TemporalGraphSummary, TimeRange,
    VertexDirection,
};

fn main() {
    // Road network traffic: intersections are vertices, each edge occurrence
    // is a vehicle traversing a road segment at a time slice. Rush hours are
    // modelled as arrival bursts.
    let stream = generate_stream(&StreamConfig {
        name: "traffic".into(),
        vertices: 2_000,
        edges: 60_000,
        skew: 1.6,
        time_slices: 24 * 60, // one day in minutes
        bursts: BurstConfig {
            burst_count: 2, // morning + evening peak
            burst_fraction: 0.6,
            burst_width_fraction: 0.04,
        },
        max_weight: 1,
        seed: 99,
    });

    let service = HiggsService::new(HiggsConfig::paper_default());
    let higgs = service.client();
    let mut horae = Horae::new(HoraeConfig::for_stream(stream.len(), 24 * 60));
    let mut exact = ExactTemporalGraph::new();
    for e in stream.iter() {
        higgs
            .insert(e)
            .expect("a live service accepts observations");
        horae.insert(e);
        exact.insert(e);
    }
    println!(
        "traffic_monitoring — {} vehicle observations; HIGGS {} KiB vs Horae {} KiB",
        stream.len(),
        service.summary().space_bytes() / 1024,
        horae.space_bytes() / 1024
    );

    // Morning peak (07:00–09:00) vs midnight window (00:00–02:00).
    let morning = TimeRange::new(7 * 60, 9 * 60);
    let night = TimeRange::new(0, 2 * 60);

    // Flow through the ten busiest intersections: one batch of 20 vertex
    // queries (10 junctions × 2 windows), submitted identically to HIGGS,
    // Horae, and the exact store. Only two distinct ranges appear, so the
    // HIGGS executor builds exactly two query plans for all 20 queries.
    let mut totals: Vec<(u64, u64)> = stream.out_degrees().into_iter().collect();
    totals.sort_by_key(|&(_, d)| std::cmp::Reverse(d));
    let junctions: Vec<u64> = totals.iter().take(10).map(|&(j, _)| j).collect();

    let mut batch = QueryBatch::with_capacity(junctions.len() * 2);
    for &junction in &junctions {
        batch.push(Query::vertex(junction, VertexDirection::Out, morning));
        batch.push(Query::vertex(junction, VertexDirection::Out, night));
    }
    service.reset_plan_count();
    let higgs_est = higgs.query_batch(batch.queries()).expect("service is live");
    let horae_est = horae.query_batch(batch.queries());
    let truths = exact.query_batch(batch.queries());
    println!(
        "\n20 queries over {} distinct windows → {} HIGGS query plans",
        batch.distinct_ranges(),
        service.plans_built()
    );

    println!("\nintersection   morning-est  morning-true  night-est  night-true");
    let mut higgs_err = 0u64;
    let mut horae_err = 0u64;
    for (i, &junction) in junctions.iter().enumerate() {
        let (m_est, n_est) = (higgs_est[2 * i], higgs_est[2 * i + 1]);
        let (m_true, n_true) = (truths[2 * i], truths[2 * i + 1]);
        higgs_err += m_est.abs_diff(m_true) + n_est.abs_diff(n_true);
        horae_err += horae_est[2 * i].abs_diff(m_true) + horae_est[2 * i + 1].abs_diff(n_true);
        println!("{junction:>12}   {m_est:>11}  {m_true:>12}  {n_est:>9}  {n_true:>10}");
    }
    println!("\nabsolute error over these 20 queries — HIGGS: {higgs_err}, Horae: {horae_err}");

    // Corridor (2-segment) flow comparison for a sample of observed segments.
    let sample: Vec<&StreamEdge> = stream.iter().step_by(997).take(5).collect();
    println!("\nsegment flow during the morning peak (HIGGS estimate vs exact):");
    for e in sample {
        let q = Query::edge(e.src, e.dst, morning);
        let est = higgs.query(&q).expect("service is live");
        let truth = exact.query(&q);
        println!(
            "    {:>5} → {:<5}  est {est:>4}  true {truth:>4}",
            e.src, e.dst
        );
    }
}
