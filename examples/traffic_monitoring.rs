//! Urban traffic monitoring (a motivating application from the paper's
//! introduction): estimate flow on road segments and corridors during peak
//! hours versus off-peak hours, and compare HIGGS against the Horae baseline
//! on the same stream.
//!
//! Run with: `cargo run -p higgs-examples --release --bin traffic_monitoring`

use higgs::{HiggsConfig, HiggsSummary};
use higgs_baselines::{Horae, HoraeConfig};
use higgs_common::generator::{generate_stream, BurstConfig, StreamConfig};
use higgs_common::{
    ExactTemporalGraph, StreamEdge, TemporalGraphSummary, TimeRange, VertexDirection,
};

fn main() {
    // Road network traffic: intersections are vertices, each edge occurrence
    // is a vehicle traversing a road segment at a time slice. Rush hours are
    // modelled as arrival bursts.
    let stream = generate_stream(&StreamConfig {
        name: "traffic".into(),
        vertices: 2_000,
        edges: 60_000,
        skew: 1.6,
        time_slices: 24 * 60, // one day in minutes
        bursts: BurstConfig {
            burst_count: 2, // morning + evening peak
            burst_fraction: 0.6,
            burst_width_fraction: 0.04,
        },
        max_weight: 1,
        seed: 99,
    });

    let mut higgs = HiggsSummary::new(HiggsConfig::paper_default());
    let mut horae = Horae::new(HoraeConfig::for_stream(stream.len(), 24 * 60));
    let mut exact = ExactTemporalGraph::new();
    for e in stream.iter() {
        higgs.insert(e);
        horae.insert(e);
        exact.insert(e);
    }
    println!(
        "traffic_monitoring — {} vehicle observations; HIGGS {} KiB vs Horae {} KiB",
        stream.len(),
        higgs.space_bytes() / 1024,
        horae.space_bytes() / 1024
    );

    // Morning peak (07:00–09:00) vs midnight window (00:00–02:00).
    let morning = TimeRange::new(7 * 60, 9 * 60);
    let night = TimeRange::new(0, 2 * 60);

    // Flow through the ten busiest intersections.
    let mut totals: Vec<(u64, u64)> = stream.out_degrees().into_iter().collect();
    totals.sort_by_key(|&(_, d)| std::cmp::Reverse(d));

    println!("\nintersection   morning-est  morning-true  night-est  night-true");
    let mut higgs_err = 0u64;
    let mut horae_err = 0u64;
    for &(junction, _) in totals.iter().take(10) {
        let m_est = higgs.vertex_query(junction, VertexDirection::Out, morning);
        let m_true = exact.vertex_query(junction, VertexDirection::Out, morning);
        let n_est = higgs.vertex_query(junction, VertexDirection::Out, night);
        let n_true = exact.vertex_query(junction, VertexDirection::Out, night);
        higgs_err += m_est.abs_diff(m_true) + n_est.abs_diff(n_true);
        horae_err += horae
            .vertex_query(junction, VertexDirection::Out, morning)
            .abs_diff(m_true)
            + horae
                .vertex_query(junction, VertexDirection::Out, night)
                .abs_diff(n_true);
        println!("{junction:>12}   {m_est:>11}  {m_true:>12}  {n_est:>9}  {n_true:>10}");
    }
    println!("\nabsolute error over these 20 queries — HIGGS: {higgs_err}, Horae: {horae_err}");

    // Corridor (2-segment) flow comparison for a sample of observed segments.
    let sample: Vec<&StreamEdge> = stream.iter().step_by(997).take(5).collect();
    println!("\nsegment flow during the morning peak (HIGGS estimate vs exact):");
    for e in sample {
        let est = higgs.edge_query(e.src, e.dst, morning);
        let truth = exact.edge_query(e.src, e.dst, morning);
        println!(
            "    {:>5} → {:<5}  est {est:>4}  true {truth:>4}",
            e.src, e.dst
        );
    }
}
