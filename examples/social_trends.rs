//! Social-network trend analysis (the paper's first motivating application):
//! detect which users drive the most interaction inside sliding temporal
//! windows, using vertex queries over a Wikipedia-talk-like stream.
//!
//! Run with: `cargo run -p higgs-examples --release --bin social_trends`

use higgs::{HiggsConfig, HiggsSummary};
use higgs_common::generator::{DatasetPreset, ExperimentScale};
use higgs_common::{TemporalGraphSummary, TimeRange, VertexDirection};

fn main() {
    // A Wikipedia-talk-like interaction stream (users messaging each other).
    let stream = DatasetPreset::WikiTalk.generate(ExperimentScale::Smoke);
    let stats = stream.stats();
    println!(
        "social_trends — {} users, {} messages over {}",
        stats.vertices,
        stats.edges,
        stats.time_span.unwrap()
    );

    let mut summary = HiggsSummary::new(HiggsConfig::paper_default());
    summary.insert_all(stream.edges());
    println!(
        "summary built: {} leaves, height {}, {:.1} KiB\n",
        summary.leaf_count(),
        summary.height(),
        summary.space_bytes() as f64 / 1024.0
    );

    // Split the stream's time span into four windows and find the most
    // active senders in each window.
    let span = stream.time_span().unwrap();
    let window = span.len() / 4;
    let candidates: Vec<u64> = stream.iter().map(|e| e.src).take(5_000).collect();

    for w in 0..4u64 {
        let range = TimeRange::new(
            span.start + w * window,
            (span.start + (w + 1) * window - 1).min(span.end),
        );
        let mut activity: Vec<(u64, u64)> = candidates
            .iter()
            .take(500)
            .map(|&u| (u, summary.vertex_query(u, VertexDirection::Out, range)))
            .collect();
        activity.sort_by_key(|&(_, w)| std::cmp::Reverse(w));
        activity.dedup_by_key(|(u, _)| *u);
        println!("window {range}: top senders (user, est. messages)");
        for (user, weight) in activity.into_iter().filter(|&(_, w)| w > 0).take(5) {
            println!("    user {user:>8}  ~{weight} messages");
        }
    }
}
