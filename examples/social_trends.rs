//! Social-network trend analysis (the paper's first motivating application):
//! detect which users drive the most interaction inside sliding temporal
//! windows, batching hundreds of vertex queries per window through the
//! plan-sharing [`query_batch`] executor — served through a
//! [`ServiceClient`] onto a 4-shard service, where each out-direction
//! vertex query routes straight to the single shard owning its user.
//!
//! Run with: `cargo run -p higgs-examples --release --example social_trends`

use higgs::{HiggsConfig, HiggsService};
use higgs_common::generator::{DatasetPreset, ExperimentScale};
use higgs_common::{
    Consistency, Query, QueryOptions, TemporalGraphSummary, TimeRange, VertexDirection,
};

fn main() {
    // A Wikipedia-talk-like interaction stream (users messaging each other).
    let stream = DatasetPreset::WikiTalk.generate(ExperimentScale::Smoke);
    let stats = stream.stats();
    println!(
        "social_trends — {} users, {} messages over {}",
        stats.vertices,
        stats.edges,
        stats.time_span.unwrap()
    );

    // Users are sharded by hash, so the message firehose is split over four
    // independent writer pipelines and trend queries fan across the shards.
    // The service front-end owns the shards; this analysis is one of its
    // clients (a dashboard and an ingest bridge would simply clone more).
    let config = HiggsConfig::builder()
        .shards(4)
        .build()
        .expect("paper defaults with 4 shards are valid");
    let service = HiggsService::new(config);
    let client = service.client();
    client
        .insert_all(stream.edges())
        .expect("a live service accepts the firehose");
    println!(
        "service built: {} shards holding {:?} leaves, {:.1} KiB total\n",
        service.num_shards(),
        service.summary().shard_leaf_counts(),
        service.summary().space_bytes() as f64 / 1024.0
    );

    // Split the stream's time span into four windows and find the most
    // active senders in each window. All 4 × 500 vertex queries go out as a
    // single batch: the executor plans each window's range once per shard
    // and shares it across the 500 queries probing that window. Trend
    // analysis tolerates slightly stale data, so the batch runs with
    // relaxed consistency — it never waits on pending ingest flushes.
    let span = stream.time_span().unwrap();
    let window = span.len() / 4;
    let candidates: Vec<u64> = stream.iter().map(|e| e.src).take(500).collect();

    let ranges: Vec<TimeRange> = (0..4u64)
        .map(|w| {
            TimeRange::new(
                span.start + w * window,
                (span.start + (w + 1) * window - 1).min(span.end),
            )
        })
        .collect();
    let batch: Vec<Query> = ranges
        .iter()
        .flat_map(|&range| {
            candidates
                .iter()
                .map(move |&u| Query::vertex(u, VertexDirection::Out, range))
        })
        .collect();
    client.flush(); // settle ingest so the relaxed read below sees it all
    service.reset_plan_count();
    let estimates = client
        .submit_batch_with(
            &batch,
            QueryOptions::new().consistency(Consistency::Relaxed),
        )
        .wait()
        .expect("service is live");
    println!(
        "ran {} vertex queries with {} query plans \
         (≤ 4 windows × {} shards: each shard plans each window once)\n",
        batch.len(),
        service.plans_built(),
        service.num_shards()
    );

    for (w, range) in ranges.iter().enumerate() {
        let start = w * candidates.len();
        let mut activity: Vec<(u64, u64)> = candidates
            .iter()
            .zip(&estimates[start..start + candidates.len()])
            .map(|(&u, &est)| (u, est))
            .collect();
        activity.sort_by_key(|&(_, w)| std::cmp::Reverse(w));
        activity.dedup_by_key(|(u, _)| *u);
        println!("window {range}: top senders (user, est. messages)");
        for (user, weight) in activity.into_iter().filter(|&(_, w)| w > 0).take(5) {
            println!("    user {user:>8}  ~{weight} messages");
        }
    }
}
