//! Warm restart: snapshot a live 4-shard HIGGS service to disk, restore it
//! into a fresh process-like service, and prove the restored service answers
//! a large mixed query batch **bit-identically** — then keep ingesting into
//! it, because a restored service is a live service.
//!
//! This is also the CI snapshot round-trip gate: any divergence between the
//! pre-snapshot and post-restore answers panics, failing the build.
//!
//! Run with: `cargo run -p higgs-examples --release --example warm_restart`

use higgs::{HiggsConfig, ShardedHiggs, Store, StoreOptions};
use higgs_common::generator::{DatasetPreset, ExperimentScale};
use higgs_common::{Query, StreamEdge, TemporalGraphSummary, TimeRange, VertexDirection};

/// A mixed batch of 152 queries (all four TRQ kinds) over a handful of
/// shared sliding windows, mirroring a monitoring tick. Endpoints are
/// sampled from the live stream so the batch hits real mass.
fn screening_batch(edges: &[StreamEdge], span: u64) -> Vec<Query> {
    let pick = |k: u64| &edges[(k as usize * 131) % edges.len()];
    let mut batch = Vec::new();
    for k in 0..38u64 {
        let start = (k % 8) * span / 10;
        let window = TimeRange::new(start, start + span / 3);
        let (a, b) = (pick(k), pick(k + 7));
        batch.push(Query::edge(a.src, a.dst, window));
        batch.push(Query::vertex(
            b.src,
            if k % 2 == 0 {
                VertexDirection::Out
            } else {
                VertexDirection::In
            },
            window,
        ));
        batch.push(Query::path(vec![a.src, a.dst, b.dst], window));
        batch.push(Query::subgraph(
            vec![(a.src, a.dst), (b.src, b.dst)],
            window,
        ));
    }
    batch
}

fn main() {
    let stream = DatasetPreset::Lkml.generate(ExperimentScale::Smoke);
    let span = stream.time_span().expect("non-empty stream").end;

    // A live 4-shard service under load.
    let config = HiggsConfig::builder()
        .shards(4)
        .build()
        .expect("valid configuration");
    let mut service = ShardedHiggs::new(config);
    service.insert_all(stream.edges());
    for e in stream.edges().iter().step_by(9) {
        service.delete(e);
    }

    let batch = screening_batch(stream.edges(), span);
    let before = service.query_batch(&batch);
    println!(
        "warm restart demo — {} items live, {} queries in the screening batch",
        service.total_items(),
        batch.len()
    );

    // Snapshot to disk: one checksummed file per shard plus a manifest. The
    // snapshot is read-your-writes consistent (the flush clock is driven
    // first), so it covers every mutation above.
    let dir = std::env::temp_dir().join(format!("higgs-warm-restart-{}", std::process::id()));
    let manifest = service
        .snapshot_to_dir(&dir)
        .expect("snapshot must succeed");
    let bytes: u64 = std::fs::read_dir(&dir)
        .expect("snapshot dir readable")
        .filter_map(|e| e.ok())
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum();
    println!(
        "snapshot: format v{}, {} shards, {} items, {} KiB on disk at {}",
        manifest.format_version,
        manifest.shard_count(),
        manifest.total_items(),
        bytes / 1024,
        dir.display()
    );

    // Simulate the restart: tear the service down completely (writers join),
    // then rebuild it warm from the directory.
    drop(service);
    let mut restored = Store::open(StoreOptions::restore(&dir)).expect("restore must succeed");
    let after = restored.query_batch(&batch);

    // The CI gate: a restored service must answer bit-identically.
    assert_eq!(
        before, after,
        "restored service diverged from the live service"
    );
    println!(
        "restored service answered all {} queries bit-identically ✔",
        batch.len()
    );

    // A restored service is fully live: keep ingesting and re-screen.
    let more: Vec<StreamEdge> = (0..5_000u64)
        .map(|i| StreamEdge::new(i % 200, (i * 23) % 200, 1 + i % 3, span + i / 4))
        .collect();
    restored.insert_all(&more);
    restored.delete(&more[100]);
    let items = restored.total_items();
    let rescreen = restored.query_batch(&batch);
    println!(
        "after 5k more inserts: {} items, full-window query sum {} (was {})",
        items,
        rescreen.iter().sum::<u64>(),
        after.iter().sum::<u64>()
    );

    std::fs::remove_dir_all(&dir).expect("snapshot dir cleanup");
    println!("warm restart round-trip complete");
}
