//! The graph-stream data model of Definition 1: a sequence of weighted,
//! timestamped directed edges `(s, d, w, t)`.

use crate::time::{TimeRange, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Vertex identifier. Real datasets map user/email/account ids to dense
/// integers; the generators emit dense ids directly.
pub type VertexId = u64;

/// Edge weight. The paper's datasets use unit weights per interaction; the
/// model allows arbitrary positive weights.
pub type Weight = u64;

/// A single graph-stream item `e_i = (s_i, d_i, w_i, t_i)`: a directed edge
/// from `src` to `dst` carrying weight `weight` that arrived at timestamp
/// `timestamp` (Definition 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StreamEdge {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Weight carried by this stream item.
    pub weight: Weight,
    /// Arrival timestamp (time-slice index).
    pub timestamp: Timestamp,
}

impl StreamEdge {
    /// Convenience constructor.
    pub fn new(src: VertexId, dst: VertexId, weight: Weight, timestamp: Timestamp) -> Self {
        Self {
            src,
            dst,
            weight,
            timestamp,
        }
    }
}

/// An in-memory graph stream: an ordered sequence of [`StreamEdge`]s plus the
/// bookkeeping the experiment harness needs (vertex/edge counts, time span).
///
/// This is the "raw data" side of the reproduction; summaries never get to
/// keep it — they only see the edges one at a time via
/// [`TemporalGraphSummary::insert`](crate::TemporalGraphSummary::insert).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct GraphStream {
    /// Human-readable name of the stream (dataset preset or generator label).
    pub name: String,
    edges: Vec<StreamEdge>,
}

impl GraphStream {
    /// Creates an empty stream with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            edges: Vec::new(),
        }
    }

    /// Creates a stream from pre-built edges.
    pub fn from_edges(name: impl Into<String>, edges: Vec<StreamEdge>) -> Self {
        Self {
            name: name.into(),
            edges,
        }
    }

    /// Appends an edge to the stream.
    pub fn push(&mut self, edge: StreamEdge) {
        self.edges.push(edge);
    }

    /// Number of stream items.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the stream contains no items.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Borrow the underlying edges in arrival order.
    pub fn edges(&self) -> &[StreamEdge] {
        &self.edges
    }

    /// Iterate over edges in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &StreamEdge> {
        self.edges.iter()
    }

    /// Sorts the stream by timestamp, preserving the relative order of items
    /// that share a timestamp. Generators emit edges already sorted; this is a
    /// guard for hand-built streams.
    pub fn sort_by_time(&mut self) {
        self.edges.sort_by_key(|e| e.timestamp);
    }

    /// Full time span `[first arrival, last arrival]`, or `None` if empty.
    pub fn time_span(&self) -> Option<TimeRange> {
        if self.edges.is_empty() {
            return None;
        }
        let mut lo = Timestamp::MAX;
        let mut hi = 0;
        for e in &self.edges {
            lo = lo.min(e.timestamp);
            hi = hi.max(e.timestamp);
        }
        Some(TimeRange::new(lo, hi))
    }

    /// Computes summary statistics (Table II style) over the stream.
    pub fn stats(&self) -> StreamStats {
        let mut vertices = std::collections::HashSet::new();
        let mut distinct_edges = std::collections::HashSet::new();
        let mut total_weight: u128 = 0;
        for e in &self.edges {
            vertices.insert(e.src);
            vertices.insert(e.dst);
            distinct_edges.insert((e.src, e.dst));
            total_weight += u128::from(e.weight);
        }
        StreamStats {
            name: self.name.clone(),
            vertices: vertices.len(),
            edges: self.edges.len(),
            distinct_edges: distinct_edges.len(),
            total_weight,
            time_span: self.time_span(),
        }
    }

    /// Out-degree (number of stream items per source vertex). Used for the
    /// skewness characterisation of Fig. 2.
    pub fn out_degrees(&self) -> HashMap<VertexId, u64> {
        let mut deg = HashMap::new();
        for e in &self.edges {
            *deg.entry(e.src).or_insert(0) += 1;
        }
        deg
    }

    /// In-degree per destination vertex.
    pub fn in_degrees(&self) -> HashMap<VertexId, u64> {
        let mut deg = HashMap::new();
        for e in &self.edges {
            *deg.entry(e.dst).or_insert(0) += 1;
        }
        deg
    }

    /// Number of stream items per time slice of width `slice`. Used for the
    /// irregularity characterisation of Fig. 3.
    pub fn arrivals_per_slice(&self, slice: u64) -> HashMap<u64, u64> {
        assert!(slice > 0, "slice width must be positive");
        let mut hist = HashMap::new();
        for e in &self.edges {
            *hist.entry(e.timestamp / slice).or_insert(0) += 1;
        }
        hist
    }
}

impl<'a> IntoIterator for &'a GraphStream {
    type Item = &'a StreamEdge;
    type IntoIter = std::slice::Iter<'a, StreamEdge>;

    fn into_iter(self) -> Self::IntoIter {
        self.edges.iter()
    }
}

impl FromIterator<StreamEdge> for GraphStream {
    fn from_iter<T: IntoIterator<Item = StreamEdge>>(iter: T) -> Self {
        Self {
            name: String::from("anonymous"),
            edges: iter.into_iter().collect(),
        }
    }
}

/// Summary statistics of a [`GraphStream`], mirroring Table II of the paper.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StreamStats {
    /// Stream / dataset name.
    pub name: String,
    /// Number of distinct vertices.
    pub vertices: usize,
    /// Number of stream items (edge occurrences).
    pub edges: usize,
    /// Number of distinct `(src, dst)` pairs.
    pub distinct_edges: usize,
    /// Sum of all edge weights.
    pub total_weight: u128,
    /// Temporal extent of the stream.
    pub time_span: Option<TimeRange>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stream() -> GraphStream {
        GraphStream::from_edges(
            "sample",
            vec![
                StreamEdge::new(1, 2, 1, 0),
                StreamEdge::new(1, 3, 2, 1),
                StreamEdge::new(2, 3, 1, 1),
                StreamEdge::new(1, 2, 3, 5),
            ],
        )
    }

    #[test]
    fn stats_counts_vertices_and_edges() {
        let s = sample_stream().stats();
        assert_eq!(s.vertices, 3);
        assert_eq!(s.edges, 4);
        assert_eq!(s.distinct_edges, 3);
        assert_eq!(s.total_weight, 7);
        assert_eq!(s.time_span, Some(TimeRange::new(0, 5)));
    }

    #[test]
    fn degrees() {
        let st = sample_stream();
        let out = st.out_degrees();
        assert_eq!(out[&1], 3);
        assert_eq!(out[&2], 1);
        let inn = st.in_degrees();
        assert_eq!(inn[&2], 2);
        assert_eq!(inn[&3], 2);
    }

    #[test]
    fn arrivals_per_slice_counts() {
        let st = sample_stream();
        let h = st.arrivals_per_slice(2);
        assert_eq!(h[&0], 3); // t=0,1,1
        assert_eq!(h[&2], 1); // t=5
    }

    #[test]
    fn empty_stream_has_no_span() {
        let st = GraphStream::new("empty");
        assert!(st.is_empty());
        assert!(st.time_span().is_none());
    }

    #[test]
    fn sort_by_time_orders_edges() {
        let mut st = GraphStream::from_edges(
            "x",
            vec![StreamEdge::new(1, 2, 1, 9), StreamEdge::new(3, 4, 1, 2)],
        );
        st.sort_by_time();
        assert_eq!(st.edges()[0].timestamp, 2);
        assert_eq!(st.edges()[1].timestamp, 9);
    }

    #[test]
    fn from_iterator_collects() {
        let st: GraphStream = (0..10).map(|i| StreamEdge::new(i, i + 1, 1, i)).collect();
        assert_eq!(st.len(), 10);
    }
}
