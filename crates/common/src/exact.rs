//! Exact ground-truth store used to measure query error (AAE / ARE).
//!
//! The experiments in Section VI compare every summary's estimates against
//! the true aggregated weights. [`ExactTemporalGraph`] keeps the full stream
//! in indexed form — per-edge and per-vertex time-sorted weight lists — so
//! every TRQ primitive can be answered exactly with two binary searches plus
//! a prefix-sum subtraction.

use crate::edge::{StreamEdge, VertexId, Weight};
use crate::query::{TemporalGraphSummary, VertexDirection};
use crate::time::{TimeRange, Timestamp};
use std::collections::HashMap;

/// A time-sorted list of `(timestamp, cumulative weight)` pairs enabling
/// O(log n) exact range-aggregation queries.
#[derive(Clone, Debug, Default)]
struct TimeSeries {
    /// `(timestamp, weight)` in insertion order; kept sorted by timestamp
    /// lazily (streams arrive time-ordered, so appends are usually in order).
    points: Vec<(Timestamp, i128)>,
    sorted: bool,
    /// Prefix sums, rebuilt on demand after mutation.
    prefix: Vec<i128>,
    prefix_valid: bool,
}

impl TimeSeries {
    fn push(&mut self, t: Timestamp, w: i128) {
        if let Some(&(last, _)) = self.points.last() {
            if t < last {
                self.sorted = false;
            }
        }
        self.points.push((t, w));
        self.prefix_valid = false;
    }

    fn ensure_index(&mut self) {
        if !self.sorted {
            self.points.sort_by_key(|&(t, _)| t);
            self.sorted = true;
        }
        if !self.prefix_valid {
            self.prefix.clear();
            self.prefix.reserve(self.points.len());
            let mut acc = 0i128;
            for &(_, w) in &self.points {
                acc += w;
                self.prefix.push(acc);
            }
            self.prefix_valid = true;
        }
    }

    fn range_sum(&mut self, range: TimeRange) -> i128 {
        self.ensure_index();
        if self.points.is_empty() {
            return 0;
        }
        // First index with timestamp >= range.start.
        let lo = self.points.partition_point(|&(t, _)| t < range.start);
        // First index with timestamp > range.end.
        let hi = self.points.partition_point(|&(t, _)| t <= range.end);
        if lo >= hi {
            return 0;
        }
        let upper = self.prefix[hi - 1];
        let lower = if lo == 0 { 0 } else { self.prefix[lo - 1] };
        upper - lower
    }

    fn bytes(&self) -> usize {
        self.points.capacity() * std::mem::size_of::<(Timestamp, i128)>()
            + self.prefix.capacity() * std::mem::size_of::<i128>()
    }
}

impl TimeSeries {
    fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Exact temporal graph: answers every TRQ primitive with zero error.
///
/// Two query paths coexist: the mutable fast path ([`Self::exact_edge`],
/// [`Self::exact_vertex`]) builds sorted prefix-sum indexes lazily and
/// answers in O(log n), while the [`TemporalGraphSummary`] trait methods
/// answer through `&self` with an index-free O(k) scan of the edge's
/// occurrence list — slower, but interior-mutability-free, which keeps the
/// trait object-safe and `Send`. Both paths return identical results.
#[derive(Clone, Debug, Default)]
pub struct ExactTemporalGraph {
    per_edge: HashMap<(VertexId, VertexId), TimeSeries>,
    per_src: HashMap<VertexId, TimeSeries>,
    per_dst: HashMap<VertexId, TimeSeries>,
    items: usize,
}

impl ExactTemporalGraph {
    /// Creates an empty exact store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an exact store from a full stream.
    pub fn from_edges<'a>(edges: impl IntoIterator<Item = &'a StreamEdge>) -> Self {
        let mut g = Self::new();
        for e in edges {
            g.add(e, 1);
        }
        g
    }

    fn add(&mut self, e: &StreamEdge, sign: i128) {
        let w = sign * i128::from(e.weight);
        self.per_edge
            .entry((e.src, e.dst))
            .or_default()
            .push(e.timestamp, w);
        self.per_src.entry(e.src).or_default().push(e.timestamp, w);
        self.per_dst.entry(e.dst).or_default().push(e.timestamp, w);
        if sign > 0 {
            self.items += 1;
        } else {
            self.items = self.items.saturating_sub(1);
        }
    }

    /// Number of stream items currently reflected in the store.
    pub fn items(&self) -> usize {
        self.items
    }

    /// Exact edge query (mutable because indexes are built lazily).
    pub fn exact_edge(&mut self, src: VertexId, dst: VertexId, range: TimeRange) -> Weight {
        self.per_edge
            .get_mut(&(src, dst))
            .map(|ts| ts.range_sum(range).max(0) as Weight)
            .unwrap_or(0)
    }

    /// Exact vertex query (mutable because indexes are built lazily).
    pub fn exact_vertex(
        &mut self,
        vertex: VertexId,
        direction: VertexDirection,
        range: TimeRange,
    ) -> Weight {
        let map = match direction {
            VertexDirection::Out => &mut self.per_src,
            VertexDirection::In => &mut self.per_dst,
        };
        map.get_mut(&vertex)
            .map(|ts| ts.range_sum(range).max(0) as Weight)
            .unwrap_or(0)
    }

    /// Distinct `(src, dst)` pairs seen so far.
    pub fn distinct_edges(&self) -> usize {
        self.per_edge.values().filter(|ts| !ts.is_empty()).count()
    }

    /// All distinct edges, useful for sampling query workloads that hit
    /// existing edges.
    pub fn edge_keys(&self) -> Vec<(VertexId, VertexId)> {
        self.per_edge.keys().copied().collect()
    }

    /// All distinct source vertices.
    pub fn source_vertices(&self) -> Vec<VertexId> {
        self.per_src.keys().copied().collect()
    }
}

impl TemporalGraphSummary for ExactTemporalGraph {
    fn insert(&mut self, edge: &StreamEdge) {
        self.add(edge, 1);
    }

    fn delete(&mut self, edge: &StreamEdge) {
        self.add(edge, -1);
    }

    fn edge_query(&self, src: VertexId, dst: VertexId, range: TimeRange) -> Weight {
        // Clone-free exact evaluation on an immutable receiver: recompute the
        // range sum without the prefix index. This is O(k) in the number of
        // occurrences of the edge, which is fine for ground-truth evaluation.
        self.per_edge
            .get(&(src, dst))
            .map(|ts| {
                ts.points
                    .iter()
                    .filter(|&&(t, _)| range.contains(t))
                    .map(|&(_, w)| w)
                    .sum::<i128>()
                    .max(0) as Weight
            })
            .unwrap_or(0)
    }

    fn vertex_query(
        &self,
        vertex: VertexId,
        direction: VertexDirection,
        range: TimeRange,
    ) -> Weight {
        let map = match direction {
            VertexDirection::Out => &self.per_src,
            VertexDirection::In => &self.per_dst,
        };
        map.get(&vertex)
            .map(|ts| {
                ts.points
                    .iter()
                    .filter(|&&(t, _)| range.contains(t))
                    .map(|&(_, w)| w)
                    .sum::<i128>()
                    .max(0) as Weight
            })
            .unwrap_or(0)
    }

    fn space_bytes(&self) -> usize {
        let series: usize = self
            .per_edge
            .values()
            .chain(self.per_src.values())
            .chain(self.per_dst.values())
            .map(TimeSeries::bytes)
            .sum();
        series
            + self.per_edge.capacity() * std::mem::size_of::<((VertexId, VertexId), TimeSeries)>()
            + (self.per_src.capacity() + self.per_dst.capacity())
                * std::mem::size_of::<(VertexId, TimeSeries)>()
    }

    fn name(&self) -> &'static str {
        "Exact"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig5_stream() -> Vec<StreamEdge> {
        vec![
            StreamEdge::new(1, 2, 1, 1),
            StreamEdge::new(4, 5, 1, 2),
            StreamEdge::new(2, 3, 1, 3),
            StreamEdge::new(1, 4, 2, 4),
            StreamEdge::new(4, 6, 3, 5),
            StreamEdge::new(2, 3, 1, 6),
            StreamEdge::new(3, 7, 2, 7),
            StreamEdge::new(4, 7, 2, 8),
            StreamEdge::new(2, 3, 2, 9),
            StreamEdge::new(5, 6, 1, 10),
            StreamEdge::new(6, 7, 1, 11),
        ]
    }

    #[test]
    fn exact_matches_example_1() {
        let g = ExactTemporalGraph::from_edges(&fig5_stream());
        assert_eq!(g.edge_query(2, 3, TimeRange::new(5, 10)), 3);
        assert_eq!(
            g.vertex_query(4, VertexDirection::Out, TimeRange::new(1, 11)),
            6
        );
    }

    #[test]
    fn mutable_fast_path_agrees_with_immutable_path() {
        let edges = fig5_stream();
        let mut g = ExactTemporalGraph::from_edges(&edges);
        for (s, d) in [(2u64, 3u64), (1, 2), (4, 6), (9, 9)] {
            for range in [
                TimeRange::new(0, 5),
                TimeRange::new(5, 10),
                TimeRange::all(),
            ] {
                let fast = g.exact_edge(s, d, range);
                let slow = g.edge_query(s, d, range);
                assert_eq!(fast, slow);
            }
        }
        for v in [1u64, 2, 3, 4, 7] {
            let fast = g.exact_vertex(v, VertexDirection::In, TimeRange::new(2, 9));
            let slow = g.vertex_query(v, VertexDirection::In, TimeRange::new(2, 9));
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn delete_reverses_insert() {
        let mut g = ExactTemporalGraph::new();
        let e = StreamEdge::new(10, 20, 7, 100);
        g.insert(&e);
        assert_eq!(g.edge_query(10, 20, TimeRange::all()), 7);
        g.delete(&e);
        assert_eq!(g.edge_query(10, 20, TimeRange::all()), 0);
        assert_eq!(
            g.vertex_query(10, VertexDirection::Out, TimeRange::all()),
            0
        );
    }

    #[test]
    fn out_of_order_inserts_are_handled() {
        let mut g = ExactTemporalGraph::new();
        g.insert(&StreamEdge::new(1, 2, 1, 50));
        g.insert(&StreamEdge::new(1, 2, 2, 10));
        g.insert(&StreamEdge::new(1, 2, 4, 30));
        assert_eq!(g.exact_edge(1, 2, TimeRange::new(0, 29)), 2);
        assert_eq!(g.exact_edge(1, 2, TimeRange::new(10, 50)), 7);
    }

    #[test]
    fn unknown_entities_return_zero() {
        let g = ExactTemporalGraph::from_edges(&fig5_stream());
        assert_eq!(g.edge_query(99, 100, TimeRange::all()), 0);
        assert_eq!(
            g.vertex_query(99, VertexDirection::Out, TimeRange::all()),
            0
        );
    }

    #[test]
    fn space_and_counters() {
        let g = ExactTemporalGraph::from_edges(&fig5_stream());
        assert_eq!(g.items(), 11);
        assert_eq!(g.distinct_edges(), 9);
        assert!(g.space_bytes() > 0);
        assert!(!g.edge_keys().is_empty());
        assert!(!g.source_vertices().is_empty());
        assert_eq!(g.name(), "Exact");
    }
}
