//! Thread-to-core pinning for shard workers.
//!
//! A sharded HIGGS service owns one writer thread plus a few aggregation
//! workers per shard, and each shard's compressed-matrix slabs are touched
//! only by those threads. Pinning the whole per-shard thread group to one
//! core keeps the shard's slabs resident in that core's private cache
//! instead of bouncing between cores as the scheduler migrates threads —
//! see `HiggsConfigBuilder::pin_workers` in the `higgs` crate.
//!
//! Consistent with the repository's no-external-crates rule, the Linux
//! implementation invokes the raw `sched_setaffinity` / `sched_getaffinity`
//! syscalls directly through `core::arch::asm!` on x86_64; every other
//! platform gets explicit no-ops ([`pin_to_core`] returns `false`,
//! [`available_cores`] returns 1), so pinning degrades to a hint rather
//! than a portability hazard. The CPU mask covers [`MAX_CPUS`] logical
//! CPUs, far beyond any machine this reproduction targets.
//!
//! Pinning is **runtime placement state, not data**: it is never persisted
//! in snapshots, and a restored service re-derives its pinning from the
//! restored configuration's `pin_workers` flag on the machine it restores
//! onto (which may have a different core count).

/// Largest logical CPU index the affinity mask can express (1024 CPUs,
/// 16 × 64-bit mask words — the kernel's default `CONFIG_NR_CPUS` ceiling).
pub const MAX_CPUS: usize = MASK_WORDS * 64;

const MASK_WORDS: usize = 16;

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod imp {
    use super::{MASK_WORDS, MAX_CPUS};

    const SYS_SCHED_SETAFFINITY: u64 = 203;
    const SYS_SCHED_GETAFFINITY: u64 = 204;
    /// `pid == 0` addresses the calling thread for both affinity syscalls.
    const SELF: u64 = 0;

    /// Raw three-argument syscall. Returns the kernel's result register
    /// (negative errno on failure).
    ///
    /// # Safety
    ///
    /// `a3` must be a valid pointer for the syscall's access mode covering
    /// `a2` bytes, per the syscall's contract.
    #[allow(unsafe_code)]
    unsafe fn syscall3(nr: u64, a1: u64, a2: u64, a3: u64) -> i64 {
        let ret: i64;
        // SAFETY: the caller upholds the pointer/length contract for `a3`
        // (see the fn-level `# Safety` section); the asm block itself only
        // clobbers the registers the x86-64 syscall ABI declares (rcx, r11)
        // and writes the result to rax.
        #[allow(unsafe_code)]
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") nr => ret,
                in("rdi") a1,
                in("rsi") a2,
                in("rdx") a3,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    pub(super) fn pin_to_core(core: usize) -> bool {
        if core >= MAX_CPUS {
            return false;
        }
        let mut mask = [0u64; MASK_WORDS];
        mask[core / 64] = 1u64 << (core % 64);
        // SAFETY: the mask pointer is valid for `size_of_val(&mask)` bytes
        // of reads for the duration of the call.
        #[allow(unsafe_code)]
        let ret = unsafe {
            syscall3(
                SYS_SCHED_SETAFFINITY,
                SELF,
                core::mem::size_of_val(&mask) as u64,
                mask.as_ptr() as u64,
            )
        };
        ret == 0
    }

    pub(super) fn available_cores() -> usize {
        let mut mask = [0u64; MASK_WORDS];
        // SAFETY: the mask pointer is valid for `size_of_val(&mask)` bytes
        // of writes for the duration of the call.
        #[allow(unsafe_code)]
        let ret = unsafe {
            syscall3(
                SYS_SCHED_GETAFFINITY,
                SELF,
                core::mem::size_of_val(&mask) as u64,
                mask.as_mut_ptr() as u64,
            )
        };
        if ret <= 0 {
            return 1;
        }
        let cores: usize = mask.iter().map(|w| w.count_ones() as usize).sum();
        cores.max(1)
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
mod imp {
    pub(super) fn pin_to_core(_core: usize) -> bool {
        false
    }

    pub(super) fn available_cores() -> usize {
        1
    }
}

/// Pins the **calling thread** to logical CPU `core`. Returns `true` on
/// success; `false` when the core index is out of range, the kernel rejects
/// the mask (e.g. the core is excluded by the process's cpuset), or the
/// platform has no affinity support (non-Linux / non-x86_64 builds).
///
/// Failure is always benign — the thread simply stays schedulable anywhere,
/// so callers treat the return value as diagnostic.
pub fn pin_to_core(core: usize) -> bool {
    imp::pin_to_core(core)
}

/// Number of logical CPUs the calling thread may currently run on (the
/// popcount of its affinity mask), at least 1. Used to wrap per-shard core
/// assignments (`shard_index % available_cores()`) so pinning works on any
/// machine size. Returns 1 on platforms without affinity support.
pub fn available_cores() -> usize {
    imp::available_cores()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn available_cores_is_positive_and_stable() {
        let n = available_cores();
        assert!(n >= 1);
        assert!(n <= MAX_CPUS);
        assert_eq!(n, available_cores());
    }

    #[test]
    fn out_of_range_core_is_rejected() {
        assert!(!pin_to_core(MAX_CPUS));
        assert!(!pin_to_core(usize::MAX));
    }

    #[test]
    fn pin_to_first_available_core_succeeds_on_linux() {
        // Pin a scratch thread (not the test harness thread) to core 0 —
        // core 0 is allowed whenever the process's cpuset contains it, which
        // holds on every CI and dev machine this repo targets.
        let pinned = std::thread::spawn(|| pin_to_core(0))
            .join()
            .expect("pin thread must not panic");
        if cfg!(all(target_os = "linux", target_arch = "x86_64")) {
            assert!(pinned, "pinning to core 0 must succeed on linux-x86_64");
        } else {
            assert!(!pinned, "non-linux builds report pinning as unavailable");
        }
    }

    #[test]
    fn pinned_thread_reports_single_core_affinity() {
        if !cfg!(all(target_os = "linux", target_arch = "x86_64")) {
            return;
        }
        let cores = std::thread::spawn(|| {
            assert!(pin_to_core(0));
            available_cores()
        })
        .join()
        .expect("pin thread must not panic");
        assert_eq!(cores, 1, "after pinning, the affinity mask is one core");
    }
}
