//! Temporal Range Query (TRQ) primitives and the [`TemporalGraphSummary`]
//! trait implemented by HIGGS and by every baseline.
//!
//! Definition 2 of the paper gives two primitives — edge queries and vertex
//! queries over a temporal range — from which path and subgraph queries are
//! composed. The composition lives in [`SummaryExt`] so that all competitors
//! are driven by exactly the same query code in the experiments.

use crate::edge::{StreamEdge, VertexId, Weight};
use crate::time::TimeRange;
use serde::{Deserialize, Serialize};

/// Direction of a vertex query: aggregate over outgoing or incoming edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VertexDirection {
    /// Aggregate the weights of all outgoing edges of the vertex.
    Out,
    /// Aggregate the weights of all incoming edges of the vertex.
    In,
}

/// An edge query: aggregated weight of `src → dst` within `range`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EdgeQuery {
    /// Source vertex of the queried edge.
    pub src: VertexId,
    /// Destination vertex of the queried edge.
    pub dst: VertexId,
    /// Temporal range of interest.
    pub range: TimeRange,
}

/// A vertex query: aggregated weight of all outgoing (or incoming) edges of
/// `vertex` within `range`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VertexQuery {
    /// The queried vertex.
    pub vertex: VertexId,
    /// Whether outgoing or incoming edges are aggregated.
    pub direction: VertexDirection,
    /// Temporal range of interest.
    pub range: TimeRange,
}

/// A path query: the sequence of vertices `v_0 → v_1 → … → v_k`; the result
/// is the sum of the aggregated weights of the constituent edges within
/// `range` (the composition used in Section VI-C).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathQuery {
    /// Vertices along the path, in order. A path of `h` hops has `h + 1`
    /// vertices.
    pub vertices: Vec<VertexId>,
    /// Temporal range of interest.
    pub range: TimeRange,
}

impl PathQuery {
    /// Number of hops (edges) on the path.
    pub fn hops(&self) -> usize {
        self.vertices.len().saturating_sub(1)
    }
}

/// A subgraph query: a set of directed edges; the result is the sum of the
/// aggregated weights of each edge within `range` (Example 1 of the paper).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SubgraphQuery {
    /// Directed edges forming the queried subgraph.
    pub edges: Vec<(VertexId, VertexId)>,
    /// Temporal range of interest.
    pub range: TimeRange,
}

/// The interface every graph-stream summary in this repository implements:
/// HIGGS, PGSS, Horae(-cpt), AuxoTime(-cpt), and the exact ground-truth store.
///
/// Implementations are *approximate* (except the exact store) but must have
/// one-sided error: estimates never underestimate the true aggregated weight.
pub trait TemporalGraphSummary {
    /// Inserts one stream item.
    fn insert(&mut self, edge: &StreamEdge);

    /// Deletes (reverses) one previously inserted stream item, decrementing
    /// the matching counters. Deleting an item that was never inserted leaves
    /// the summary in an unspecified (but safe) state, as with Count-Min
    /// deletions.
    fn delete(&mut self, edge: &StreamEdge);

    /// Aggregated weight of the directed edge `src → dst` within `range`.
    fn edge_query(&self, src: VertexId, dst: VertexId, range: TimeRange) -> Weight;

    /// Aggregated weight of all edges incident to `vertex` in `direction`
    /// within `range`.
    fn vertex_query(
        &self,
        vertex: VertexId,
        direction: VertexDirection,
        range: TimeRange,
    ) -> Weight;

    /// Main-memory footprint of the summary in bytes (Section VI-G).
    fn space_bytes(&self) -> usize;

    /// Short human-readable name used in experiment output ("HIGGS",
    /// "Horae", …).
    fn name(&self) -> &'static str;

    /// Bulk-inserts a slice of edges in arrival order. Implementations may
    /// override this with a faster path (e.g. the parallel HIGGS pipeline).
    fn insert_all(&mut self, edges: &[StreamEdge]) {
        for e in edges {
            self.insert(e);
        }
    }
}

/// Query composition shared by every summary: path and subgraph queries built
/// from the edge-query primitive, plus convenience wrappers taking the query
/// structs.
pub trait SummaryExt: TemporalGraphSummary {
    /// Evaluates an [`EdgeQuery`].
    fn run_edge_query(&self, q: &EdgeQuery) -> Weight {
        self.edge_query(q.src, q.dst, q.range)
    }

    /// Evaluates a [`VertexQuery`].
    fn run_vertex_query(&self, q: &VertexQuery) -> Weight {
        self.vertex_query(q.vertex, q.direction, q.range)
    }

    /// Evaluates a [`PathQuery`]: sum of the aggregated weights of each hop.
    fn path_query(&self, q: &PathQuery) -> Weight {
        q.vertices
            .windows(2)
            .map(|w| self.edge_query(w[0], w[1], q.range))
            .sum()
    }

    /// Evaluates a [`SubgraphQuery`]: sum of the aggregated weights of each
    /// edge in the subgraph.
    fn subgraph_query(&self, q: &SubgraphQuery) -> Weight {
        q.edges
            .iter()
            .map(|&(s, d)| self.edge_query(s, d, q.range))
            .sum()
    }
}

impl<T: TemporalGraphSummary + ?Sized> SummaryExt for T {}

/// A bundle of randomly generated queries of all four kinds over one stream,
/// reused verbatim against every competitor and the exact store so errors are
/// measured on identical workloads (Section VI-A).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct QueryWorkload {
    /// Edge queries.
    pub edge_queries: Vec<EdgeQuery>,
    /// Vertex queries.
    pub vertex_queries: Vec<VertexQuery>,
    /// Path queries.
    pub path_queries: Vec<PathQuery>,
    /// Subgraph queries.
    pub subgraph_queries: Vec<SubgraphQuery>,
}

impl QueryWorkload {
    /// Total number of queries in the workload.
    pub fn len(&self) -> usize {
        self.edge_queries.len()
            + self.vertex_queries.len()
            + self.path_queries.len()
            + self.subgraph_queries.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Tiny exact reference implementation used to test the default methods.
    #[derive(Default)]
    struct Toy {
        edges: Vec<StreamEdge>,
    }

    impl TemporalGraphSummary for Toy {
        fn insert(&mut self, edge: &StreamEdge) {
            self.edges.push(*edge);
        }
        fn delete(&mut self, edge: &StreamEdge) {
            if let Some(pos) = self.edges.iter().position(|e| e == edge) {
                self.edges.remove(pos);
            }
        }
        fn edge_query(&self, src: VertexId, dst: VertexId, range: TimeRange) -> Weight {
            self.edges
                .iter()
                .filter(|e| e.src == src && e.dst == dst && range.contains(e.timestamp))
                .map(|e| e.weight)
                .sum()
        }
        fn vertex_query(
            &self,
            vertex: VertexId,
            direction: VertexDirection,
            range: TimeRange,
        ) -> Weight {
            self.edges
                .iter()
                .filter(|e| match direction {
                    VertexDirection::Out => e.src == vertex,
                    VertexDirection::In => e.dst == vertex,
                })
                .filter(|e| range.contains(e.timestamp))
                .map(|e| e.weight)
                .sum()
        }
        fn space_bytes(&self) -> usize {
            self.edges.len() * std::mem::size_of::<StreamEdge>()
        }
        fn name(&self) -> &'static str {
            "Toy"
        }
    }

    fn example_fig5() -> Toy {
        // The stream of Fig. 5 / Example 1.
        let mut t = Toy::default();
        let edges = [
            (1, 2, 1, 1),
            (4, 5, 1, 2),
            (2, 3, 1, 3),
            (1, 4, 2, 4),
            (4, 6, 3, 5),
            (2, 3, 1, 6),
            (3, 7, 2, 7),
            (4, 7, 2, 8),
            (2, 3, 2, 9),
            (5, 6, 1, 10),
            (6, 7, 1, 11),
        ];
        for (s, d, w, ts) in edges {
            t.insert(&StreamEdge::new(s, d, w, ts));
        }
        t
    }

    #[test]
    fn example_1_edge_query() {
        let t = example_fig5();
        // Edge v2→v3 from t5 to t10 has weight 3 (t6 and t9).
        assert_eq!(t.edge_query(2, 3, TimeRange::new(5, 10)), 3);
    }

    #[test]
    fn example_1_vertex_query() {
        let t = example_fig5();
        // v4's outgoing edges from t1 to t11 total 6... the paper counts
        // (4,5,t2,1), (4,6,t5,3), (4,7,t8,2).
        assert_eq!(
            t.vertex_query(4, VertexDirection::Out, TimeRange::new(1, 11)),
            6
        );
    }

    #[test]
    fn example_1_subgraph_query() {
        let t = example_fig5();
        let q = SubgraphQuery {
            edges: vec![(2, 3), (3, 7), (2, 4)],
            range: TimeRange::new(4, 8),
        };
        assert_eq!(t.subgraph_query(&q), 3);
    }

    #[test]
    fn path_query_sums_hops() {
        let t = example_fig5();
        let q = PathQuery {
            vertices: vec![1, 2, 3, 7],
            range: TimeRange::new(1, 11),
        };
        // (1→2)=1, (2→3)=4, (3→7)=2
        assert_eq!(t.path_query(&q), 7);
        assert_eq!(q.hops(), 3);
    }

    #[test]
    fn insert_all_and_delete() {
        let mut t = Toy::default();
        let edges: Vec<StreamEdge> = (0..5).map(|i| StreamEdge::new(1, 2, 1, i)).collect();
        t.insert_all(&edges);
        assert_eq!(t.edge_query(1, 2, TimeRange::all()), 5);
        t.delete(&edges[0]);
        assert_eq!(t.edge_query(1, 2, TimeRange::all()), 4);
    }

    #[test]
    fn in_and_out_directions_differ() {
        let t = example_fig5();
        let r = TimeRange::all();
        let out = t.vertex_query(3, VertexDirection::Out, r);
        let inn = t.vertex_query(3, VertexDirection::In, r);
        assert_eq!(out, 2); // 3→7 at t7
        assert_eq!(inn, 4); // three arrivals of 2→3
        let _sanity: HashMap<&str, Weight> = HashMap::from([("out", out), ("in", inn)]);
    }

    #[test]
    fn workload_len() {
        let mut w = QueryWorkload::default();
        assert!(w.is_empty());
        w.edge_queries.push(EdgeQuery {
            src: 1,
            dst: 2,
            range: TimeRange::all(),
        });
        w.vertex_queries.push(VertexQuery {
            vertex: 1,
            direction: VertexDirection::Out,
            range: TimeRange::all(),
        });
        assert_eq!(w.len(), 2);
    }
}
