//! Temporal Range Query (TRQ) primitives, the typed [`Query`] surface, and
//! the [`TemporalGraphSummary`] trait implemented by HIGGS and by every
//! baseline.
//!
//! Definition 2 of the paper gives two primitives — edge queries and vertex
//! queries over a temporal range — from which path and subgraph queries are
//! composed. This module exposes them in two layers:
//!
//! * **Primitive structs** ([`EdgeQuery`], [`VertexQuery`], [`PathQuery`],
//!   [`SubgraphQuery`]) with `new` constructors, plus the raw
//!   `edge_query`/`vertex_query` trait methods every summary implements.
//! * **The unified [`Query`] enum and [`QueryBatch`]** — the typed surface a
//!   production front-end submits. [`TemporalGraphSummary::query`] evaluates
//!   one query of any kind; [`TemporalGraphSummary::query_batch`] evaluates a
//!   whole mixed batch. The default implementations loop over the primitives
//!   (so every baseline supports batches unchanged), while HIGGS overrides
//!   them with a *plan-sharing executor*: the Algorithm-3 boundary search
//!   runs once per **distinct [`TimeRange`]** in the batch and every query
//!   sharing that range — every hop of a path query, every edge of a
//!   subgraph query — is evaluated against the cached plan. A 10-hop path
//!   query therefore costs one boundary search instead of ten.
//!
//! The legacy per-kind composition lives in [`SummaryExt`] so that all
//! competitors can still be driven by exactly the same query code in the
//! experiments; it is semantically identical to the [`Query`] surface
//! (bit-identical results, asserted by cross-crate property tests).

use crate::edge::{StreamEdge, VertexId, Weight};
use crate::time::TimeRange;
use serde::{Deserialize, Serialize};

/// Direction of a vertex query: aggregate over outgoing or incoming edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum VertexDirection {
    /// Aggregate the weights of all outgoing edges of the vertex.
    Out,
    /// Aggregate the weights of all incoming edges of the vertex.
    In,
}

/// An edge query: aggregated weight of `src → dst` within `range`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EdgeQuery {
    /// Source vertex of the queried edge.
    pub src: VertexId,
    /// Destination vertex of the queried edge.
    pub dst: VertexId,
    /// Temporal range of interest.
    pub range: TimeRange,
}

impl EdgeQuery {
    /// Creates an edge query for `src → dst` within `range`.
    pub fn new(src: VertexId, dst: VertexId, range: impl Into<TimeRange>) -> Self {
        Self {
            src,
            dst,
            range: range.into(),
        }
    }
}

/// A vertex query: aggregated weight of all outgoing (or incoming) edges of
/// `vertex` within `range`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VertexQuery {
    /// The queried vertex.
    pub vertex: VertexId,
    /// Whether outgoing or incoming edges are aggregated.
    pub direction: VertexDirection,
    /// Temporal range of interest.
    pub range: TimeRange,
}

impl VertexQuery {
    /// Creates a vertex query for `vertex` in `direction` within `range`.
    pub fn new(vertex: VertexId, direction: VertexDirection, range: impl Into<TimeRange>) -> Self {
        Self {
            vertex,
            direction,
            range: range.into(),
        }
    }
}

/// A path query: the sequence of vertices `v_0 → v_1 → … → v_k`; the result
/// is the sum of the aggregated weights of the constituent edges within
/// `range` (the composition used in Section VI-C).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathQuery {
    /// Vertices along the path, in order. A path of `h` hops has `h + 1`
    /// vertices.
    pub vertices: Vec<VertexId>,
    /// Temporal range of interest.
    pub range: TimeRange,
}

impl PathQuery {
    /// Creates a path query over `vertices` (in order) within `range`.
    pub fn new(vertices: Vec<VertexId>, range: impl Into<TimeRange>) -> Self {
        Self {
            vertices,
            range: range.into(),
        }
    }

    /// Number of hops (edges) on the path.
    pub fn hops(&self) -> usize {
        self.vertices.len().saturating_sub(1)
    }
}

/// A subgraph query: a set of directed edges; the result is the sum of the
/// aggregated weights of each edge within `range` (Example 1 of the paper).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SubgraphQuery {
    /// Directed edges forming the queried subgraph.
    pub edges: Vec<(VertexId, VertexId)>,
    /// Temporal range of interest.
    pub range: TimeRange,
}

impl SubgraphQuery {
    /// Creates a subgraph query over `edges` within `range`.
    pub fn new(edges: Vec<(VertexId, VertexId)>, range: impl Into<TimeRange>) -> Self {
        Self {
            edges,
            range: range.into(),
        }
    }
}

/// One typed Temporal Range Query: any of the four TRQ kinds of Definition 2
/// and Section VI-C, submitted through a single entry point.
///
/// Production traffic arrives as mixed streams of all four kinds; `Query`
/// lets callers build heterogeneous batches (see [`QueryBatch`]) and lets
/// summaries specialise evaluation per batch rather than per primitive call.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Query {
    /// An edge query.
    Edge(EdgeQuery),
    /// A vertex query.
    Vertex(VertexQuery),
    /// A path query (sum over the hops).
    Path(PathQuery),
    /// A subgraph query (sum over the edges).
    Subgraph(SubgraphQuery),
}

impl Query {
    /// Creates an edge query for `src → dst` within `range`.
    pub fn edge(src: VertexId, dst: VertexId, range: impl Into<TimeRange>) -> Self {
        Query::Edge(EdgeQuery::new(src, dst, range))
    }

    /// Creates a vertex query for `vertex` in `direction` within `range`.
    pub fn vertex(
        vertex: VertexId,
        direction: VertexDirection,
        range: impl Into<TimeRange>,
    ) -> Self {
        Query::Vertex(VertexQuery::new(vertex, direction, range))
    }

    /// Creates a path query over `vertices` within `range`.
    pub fn path(vertices: Vec<VertexId>, range: impl Into<TimeRange>) -> Self {
        Query::Path(PathQuery::new(vertices, range))
    }

    /// Creates a subgraph query over `edges` within `range`.
    pub fn subgraph(edges: Vec<(VertexId, VertexId)>, range: impl Into<TimeRange>) -> Self {
        Query::Subgraph(SubgraphQuery::new(edges, range))
    }

    /// The temporal range this query aggregates over — the grouping key of
    /// the plan-sharing batch executor.
    pub fn range(&self) -> TimeRange {
        match self {
            Query::Edge(q) => q.range,
            Query::Vertex(q) => q.range,
            Query::Path(q) => q.range,
            Query::Subgraph(q) => q.range,
        }
    }

    /// Number of primitive edge/vertex lookups this query expands into
    /// (1 for edge and vertex queries, the hop count for paths, the edge
    /// count for subgraphs).
    pub fn primitive_count(&self) -> usize {
        match self {
            Query::Edge(_) | Query::Vertex(_) => 1,
            Query::Path(q) => q.hops(),
            Query::Subgraph(q) => q.edges.len(),
        }
    }

    /// Short human-readable kind label ("edge", "vertex", "path",
    /// "subgraph").
    pub fn kind_label(&self) -> &'static str {
        match self {
            Query::Edge(_) => "edge",
            Query::Vertex(_) => "vertex",
            Query::Path(_) => "path",
            Query::Subgraph(_) => "subgraph",
        }
    }

    /// Decomposes this query into independently routable parts for a summary
    /// partitioned by **source vertex** (each shard owns every edge whose
    /// source hashes to it, see [`crate::hashing::shard_of`]).
    ///
    /// The routing rules:
    ///
    /// * an edge query is owned by its source's shard,
    /// * an out-direction vertex query is owned by the vertex's shard (all of
    ///   its outgoing edges live there),
    /// * an in-direction vertex query fans out to
    ///   [every shard](ShardRoute::AllShards) — incoming edges may originate
    ///   from any source — and the per-shard results are summed,
    /// * path and subgraph queries split into one edge query per hop /
    ///   per edge, each owned by that hop's source shard.
    ///
    /// The sum of the parts' results equals this query's result on an
    /// unsharded summary (paths and subgraphs are defined as sums over their
    /// hops/edges, Section VI-C).
    pub fn shard_parts(&self) -> Vec<(ShardRoute, Query)> {
        match self {
            Query::Edge(q) => vec![(ShardRoute::Vertex(q.src), self.clone())],
            Query::Vertex(q) => match q.direction {
                VertexDirection::Out => vec![(ShardRoute::Vertex(q.vertex), self.clone())],
                VertexDirection::In => vec![(ShardRoute::AllShards, self.clone())],
            },
            Query::Path(q) => q
                .vertices
                .windows(2)
                .map(|w| (ShardRoute::Vertex(w[0]), Query::edge(w[0], w[1], q.range)))
                .collect(),
            Query::Subgraph(q) => q
                .edges
                .iter()
                .map(|&(s, d)| (ShardRoute::Vertex(s), Query::edge(s, d, q.range)))
                .collect(),
        }
    }
}

/// Where one [shard part](Query::shard_parts) of a query must execute when a
/// summary is partitioned by source vertex.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ShardRoute {
    /// The part is answered entirely by the shard owning this vertex.
    Vertex(VertexId),
    /// The part must run on every shard and the results be summed
    /// (in-direction vertex queries: incoming edges can originate anywhere).
    AllShards,
}

/// A batch of typed queries routed onto `num_shards` source-partitioned
/// shards: one sub-batch per shard plus the scatter map that reassembles
/// per-shard results into one weight per original query.
///
/// Build one with [`ShardPlan::build`] (or [`QueryBatch::shard_plan`]); run
/// each [`sub_batch`](Self::sub_batch) against its shard — each shard's
/// plan-sharing executor still builds only one Algorithm-3 plan per distinct
/// [`TimeRange`] in its sub-batch — then [`gather`](Self::gather) the
/// per-shard result vectors.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// One sub-batch per shard, in shard order.
    sub: Vec<Vec<Query>>,
    /// Parallel to `sub`: the original query index each sub-query's result
    /// accumulates into.
    scatter: Vec<Vec<usize>>,
    /// Number of queries in the original batch.
    len: usize,
}

impl ShardPlan {
    /// Routes `queries` onto `num_shards` shards following the rules of
    /// [`Query::shard_parts`].
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero.
    pub fn build(queries: &[Query], num_shards: usize) -> Self {
        assert!(num_shards > 0, "shard count must be positive");
        let mut sub = vec![Vec::new(); num_shards];
        let mut scatter = vec![Vec::new(); num_shards];
        for (qi, query) in queries.iter().enumerate() {
            for (route, part) in query.shard_parts() {
                match route {
                    ShardRoute::Vertex(v) => {
                        let s = crate::hashing::shard_of(v, num_shards);
                        sub[s].push(part);
                        scatter[s].push(qi);
                    }
                    ShardRoute::AllShards => {
                        for s in 0..num_shards {
                            sub[s].push(part.clone());
                            scatter[s].push(qi);
                        }
                    }
                }
            }
        }
        Self {
            sub,
            scatter,
            len: queries.len(),
        }
    }

    /// Number of shards this plan routes onto.
    pub fn num_shards(&self) -> usize {
        self.sub.len()
    }

    /// Number of queries in the original batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the original batch was empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The sub-batch destined for `shard` (empty when nothing routes there).
    pub fn sub_batch(&self, shard: usize) -> &[Query] {
        &self.sub[shard]
    }

    /// Reassembles per-shard result vectors (one per shard, each parallel to
    /// its [`sub_batch`](Self::sub_batch)) into one weight per original
    /// query, summing the parts.
    ///
    /// # Panics
    ///
    /// Panics if the result vectors do not match the plan's shape.
    pub fn gather(&self, per_shard: &[Vec<Weight>]) -> Vec<Weight> {
        assert_eq!(per_shard.len(), self.sub.len(), "one result vec per shard");
        let mut out = vec![0u64; self.len];
        for (shard, results) in per_shard.iter().enumerate() {
            assert_eq!(
                results.len(),
                self.scatter[shard].len(),
                "shard {shard} returned a result count that does not match its sub-batch"
            );
            for (&qi, &w) in self.scatter[shard].iter().zip(results) {
                out[qi] += w;
            }
        }
        out
    }
}

/// Distinct-range count up to which [`group_by_range`] stays on the linear
/// small-vec probe; beyond it, an index map takes over so pathological
/// batches (every query its own range) group in O(N) instead of O(N·G).
const LINEAR_GROUPING_LIMIT: usize = 32;

/// Groups a batch's query indices by distinct [`TimeRange`], preserving the
/// first-appearance order of the ranges. This is the grouping surface the
/// plan-sharing batch executors key their per-range work on.
///
/// Deliberately a linear probe over a small `Vec` rather than a `HashMap`:
/// serving batches rarely contain more than a handful of distinct windows
/// (sliding-window screens re-use the same few ranges), and for those sizes
/// scanning a contiguous vector of 16-byte ranges is cheaper than hashing
/// every query's range and paying a per-batch table allocation — see the
/// `plan_cache/grouping/*` micro-benchmarks in `higgs-bench`. Once a batch
/// exceeds `LINEAR_GROUPING_LIMIT` (32) distinct ranges, a `HashMap` index over
/// the already-collected groups takes over, so a batch of N mostly-distinct
/// ranges costs O(N), not O(N²).
pub fn group_by_range(queries: &[Query]) -> Vec<(TimeRange, Vec<u32>)> {
    let mut groups: Vec<(TimeRange, Vec<u32>)> = Vec::new();
    let mut index: Option<std::collections::HashMap<TimeRange, usize>> = None;
    for (qi, query) in queries.iter().enumerate() {
        let range = query.range();
        let position = match &index {
            Some(map) => map.get(&range).copied(),
            None => groups.iter().position(|(r, _)| *r == range),
        };
        match position {
            Some(g) => groups[g].1.push(qi as u32),
            None => {
                if let Some(map) = &mut index {
                    map.insert(range, groups.len());
                } else if groups.len() == LINEAR_GROUPING_LIMIT {
                    // The batch turned out range-heavy: switch to hashing,
                    // seeding the index with everything grouped so far.
                    let mut map: std::collections::HashMap<TimeRange, usize> = groups
                        .iter()
                        .enumerate()
                        .map(|(g, (r, _))| (*r, g))
                        .collect();
                    map.insert(range, groups.len());
                    index = Some(map);
                }
                groups.push((range, vec![qi as u32]));
            }
        }
    }
    groups
}

impl From<EdgeQuery> for Query {
    fn from(q: EdgeQuery) -> Self {
        Query::Edge(q)
    }
}

impl From<VertexQuery> for Query {
    fn from(q: VertexQuery) -> Self {
        Query::Vertex(q)
    }
}

impl From<PathQuery> for Query {
    fn from(q: PathQuery) -> Self {
        Query::Path(q)
    }
}

impl From<SubgraphQuery> for Query {
    fn from(q: SubgraphQuery) -> Self {
        Query::Subgraph(q)
    }
}

/// An ordered batch of typed queries, evaluated in one call through
/// [`TemporalGraphSummary::query_batch`].
///
/// Results are returned in submission order and are bit-identical to calling
/// [`TemporalGraphSummary::query`] per element; batching only changes *cost*
/// (implementations may share planning work across queries), never results.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryBatch {
    queries: Vec<Query>,
}

impl QueryBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty batch with room for `capacity` queries.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            queries: Vec::with_capacity(capacity),
        }
    }

    /// Appends one query (any of the four kinds, or a primitive struct via
    /// its `From` impl).
    pub fn push(&mut self, query: impl Into<Query>) {
        self.queries.push(query.into());
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the batch holds no query.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The batched queries, in submission order.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// Iterates over the batched queries in submission order.
    pub fn iter(&self) -> std::slice::Iter<'_, Query> {
        self.queries.iter()
    }

    /// Number of distinct temporal ranges in the batch — the number of query
    /// plans a plan-sharing executor builds for it.
    pub fn distinct_ranges(&self) -> usize {
        let mut ranges: Vec<TimeRange> = self.queries.iter().map(Query::range).collect();
        ranges.sort_unstable_by_key(|r| (r.start, r.end));
        ranges.dedup();
        ranges.len()
    }

    /// Routes the batch onto `num_shards` source-partitioned shards; see
    /// [`ShardPlan`].
    pub fn shard_plan(&self, num_shards: usize) -> ShardPlan {
        ShardPlan::build(&self.queries, num_shards)
    }
}

impl From<Vec<Query>> for QueryBatch {
    fn from(queries: Vec<Query>) -> Self {
        Self { queries }
    }
}

impl FromIterator<Query> for QueryBatch {
    fn from_iter<I: IntoIterator<Item = Query>>(iter: I) -> Self {
        Self {
            queries: iter.into_iter().collect(),
        }
    }
}

impl Extend<Query> for QueryBatch {
    fn extend<I: IntoIterator<Item = Query>>(&mut self, iter: I) {
        self.queries.extend(iter);
    }
}

impl IntoIterator for QueryBatch {
    type Item = Query;
    type IntoIter = std::vec::IntoIter<Query>;
    fn into_iter(self) -> Self::IntoIter {
        self.queries.into_iter()
    }
}

impl<'a> IntoIterator for &'a QueryBatch {
    type Item = &'a Query;
    type IntoIter = std::slice::Iter<'a, Query>;
    fn into_iter(self) -> Self::IntoIter {
        self.queries.iter()
    }
}

/// The interface every graph-stream summary in this repository implements:
/// HIGGS, PGSS, Horae(-cpt), AuxoTime(-cpt), and the exact ground-truth store.
///
/// Implementations are *approximate* (except the exact store) but must have
/// one-sided error: estimates never underestimate the true aggregated weight.
pub trait TemporalGraphSummary {
    /// Inserts one stream item.
    fn insert(&mut self, edge: &StreamEdge);

    /// Deletes (reverses) one previously inserted stream item, decrementing
    /// the matching counters. Deleting an item that was never inserted leaves
    /// the summary in an unspecified (but safe) state, as with Count-Min
    /// deletions.
    fn delete(&mut self, edge: &StreamEdge);

    /// Aggregated weight of the directed edge `src → dst` within `range`.
    fn edge_query(&self, src: VertexId, dst: VertexId, range: TimeRange) -> Weight;

    /// Aggregated weight of all edges incident to `vertex` in `direction`
    /// within `range`.
    fn vertex_query(
        &self,
        vertex: VertexId,
        direction: VertexDirection,
        range: TimeRange,
    ) -> Weight;

    /// Main-memory footprint of the summary in bytes (Section VI-G).
    fn space_bytes(&self) -> usize;

    /// Short human-readable name used in experiment output ("HIGGS",
    /// "Horae", …).
    fn name(&self) -> &'static str;

    /// Bulk-inserts a slice of edges in arrival order. Implementations may
    /// override this with a faster path (e.g. the parallel HIGGS pipeline).
    fn insert_all(&mut self, edges: &[StreamEdge]) {
        for e in edges {
            self.insert(e);
        }
    }

    /// Evaluates one typed [`Query`] of any kind.
    ///
    /// The default implementation expands composite queries into the
    /// edge-query primitive (path queries sum their hops, subgraph queries
    /// sum their edges — Section VI-C). Implementations may override this
    /// with a faster path; overrides must return bit-identical results.
    fn query(&self, query: &Query) -> Weight {
        match query {
            Query::Edge(q) => self.edge_query(q.src, q.dst, q.range),
            Query::Vertex(q) => self.vertex_query(q.vertex, q.direction, q.range),
            Query::Path(q) => q
                .vertices
                .windows(2)
                .map(|w| self.edge_query(w[0], w[1], q.range))
                .sum(),
            Query::Subgraph(q) => q
                .edges
                .iter()
                .map(|&(s, d)| self.edge_query(s, d, q.range))
                .sum(),
        }
    }

    /// Evaluates a batch of typed queries, returning one weight per query in
    /// submission order.
    ///
    /// The default implementation loops [`Self::query`] over the slice, so
    /// every summary supports batches unchanged. HIGGS overrides this with a
    /// plan-sharing executor that runs the boundary search once per distinct
    /// [`TimeRange`] in the batch; results stay bit-identical either way.
    fn query_batch(&self, queries: &[Query]) -> Vec<Weight> {
        queries.iter().map(|q| self.query(q)).collect()
    }
}

/// Query composition shared by every summary: path and subgraph queries built
/// from the edge-query primitive, plus convenience wrappers taking the query
/// structs.
///
/// This is the *unoptimised* per-primitive composition (each hop plans its
/// range anew); the typed [`TemporalGraphSummary::query`] /
/// [`TemporalGraphSummary::query_batch`] surface is the batchable entry point
/// that lets implementations amortise planning. Both produce identical
/// results.
pub trait SummaryExt: TemporalGraphSummary {
    /// Evaluates an [`EdgeQuery`].
    fn run_edge_query(&self, q: &EdgeQuery) -> Weight {
        self.edge_query(q.src, q.dst, q.range)
    }

    /// Evaluates a [`VertexQuery`].
    fn run_vertex_query(&self, q: &VertexQuery) -> Weight {
        self.vertex_query(q.vertex, q.direction, q.range)
    }

    /// Evaluates a [`PathQuery`]: sum of the aggregated weights of each hop.
    fn path_query(&self, q: &PathQuery) -> Weight {
        q.vertices
            .windows(2)
            .map(|w| self.edge_query(w[0], w[1], q.range))
            .sum()
    }

    /// Evaluates a [`SubgraphQuery`]: sum of the aggregated weights of each
    /// edge in the subgraph.
    fn subgraph_query(&self, q: &SubgraphQuery) -> Weight {
        q.edges
            .iter()
            .map(|&(s, d)| self.edge_query(s, d, q.range))
            .sum()
    }
}

impl<T: TemporalGraphSummary + ?Sized> SummaryExt for T {}

/// A bundle of randomly generated queries of all four kinds over one stream,
/// reused verbatim against every competitor and the exact store so errors are
/// measured on identical workloads (Section VI-A).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct QueryWorkload {
    /// Edge queries.
    pub edge_queries: Vec<EdgeQuery>,
    /// Vertex queries.
    pub vertex_queries: Vec<VertexQuery>,
    /// Path queries.
    pub path_queries: Vec<PathQuery>,
    /// Subgraph queries.
    pub subgraph_queries: Vec<SubgraphQuery>,
}

impl QueryWorkload {
    /// Total number of queries in the workload.
    pub fn len(&self) -> usize {
        self.edge_queries.len()
            + self.vertex_queries.len()
            + self.path_queries.len()
            + self.subgraph_queries.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over every query in the workload as a typed [`Query`], in
    /// kind order (edge, vertex, path, subgraph).
    pub fn iter(&self) -> impl Iterator<Item = Query> + '_ {
        self.edge_queries
            .iter()
            .copied()
            .map(Query::Edge)
            .chain(self.vertex_queries.iter().copied().map(Query::Vertex))
            .chain(self.path_queries.iter().cloned().map(Query::Path))
            .chain(self.subgraph_queries.iter().cloned().map(Query::Subgraph))
    }

    /// Collects the whole workload into a [`QueryBatch`] (kind order).
    pub fn to_batch(&self) -> QueryBatch {
        self.iter().collect()
    }
}

/// Scheduling class of a submitted query, consumed by the serving layer's
/// admission loop. Within one admission tick, classes are evaluated
/// strictly in the order `Interactive`, `Normal`, `Bulk` — a latency-
/// sensitive query never waits behind a bulk scan admitted in the same
/// tick. Plain (unserved) `query_batch` calls ignore priority entirely.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-sensitive: evaluated first within its admission tick and,
    /// when combined with [`Consistency::Relaxed`], without waiting for
    /// pending ingest flushes.
    Interactive,
    /// Default class: today's semantics — evaluated after interactive
    /// traffic, with read-your-writes visibility.
    #[default]
    Normal,
    /// Throughput-oriented: evaluated last within its tick; suited to
    /// analytical sweeps that tolerate extra queueing delay.
    Bulk,
}

/// Visibility guarantee a submitted query requires from the serving layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Consistency {
    /// Every edge the submitting process ingested before the submission is
    /// visible to the query (the serving layer flushes pending shard queues
    /// first when needed). This is the behaviour of direct
    /// `ShardedHiggs::query*` calls today, and the default.
    #[default]
    ReadYourWrites,
    /// The query may run against a slightly stale summary: the serving
    /// layer skips the pre-query flush, trading bounded staleness (at most
    /// the writer queues' backlog) for lower latency.
    Relaxed,
}

/// Bounded exponential-backoff retry for transient serving failures
/// (overload backpressure and degraded-shard fast-fails). Attached to a
/// submission via [`QueryOptions::retry`]; interpreted by the serving
/// layer's blocking client calls, never by the admission loop itself —
/// each retry is a fresh submission.
///
/// The `n`-th retry (1-based) sleeps `base_backoff * 2^(n-1)` first, so
/// `RetryPolicy::retries(3)` with the default 1 ms base waits 1 ms, 2 ms,
/// then 4 ms. The default policy performs no retries, reproducing the
/// fail-fast semantics existing callers rely on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of *re*-submissions after the initial attempt; `0`
    /// (the default) disables retrying entirely.
    pub max_retries: u32,
    /// Sleep before the first retry; doubles on each subsequent one.
    pub base_backoff: std::time::Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 0,
            base_backoff: std::time::Duration::from_millis(1),
        }
    }
}

impl RetryPolicy {
    /// Policy retrying up to `max_retries` times with the default 1 ms
    /// base backoff.
    pub fn retries(max_retries: u32) -> Self {
        Self {
            max_retries,
            ..Self::default()
        }
    }

    /// Sets the sleep before the first retry (doubles each retry after).
    pub fn base_backoff(mut self, base_backoff: std::time::Duration) -> Self {
        self.base_backoff = base_backoff;
        self
    }

    /// The sleep before 1-based retry `attempt`, saturating instead of
    /// overflowing for absurd attempt counts.
    pub fn backoff_before(&self, attempt: u32) -> std::time::Duration {
        let factor = 1u32.checked_shl(attempt.saturating_sub(1)).unwrap_or(0);
        if factor == 0 {
            // 2^(attempt-1) overflowed u32: saturate to the largest
            // representable doubling rather than wrapping to zero sleep.
            self.base_backoff.saturating_mul(u32::MAX)
        } else {
            self.base_backoff.saturating_mul(factor)
        }
    }
}

/// Per-submission options for the serving layer: deadline, scheduling
/// [`Priority`], [`Consistency`] mode, and transient-failure
/// [`RetryPolicy`]. The default value reproduces today's semantics exactly
/// (no deadline, `Normal` priority, read-your-writes, no retries), so
/// existing call sites that never mention options are unaffected — and the
/// primitive query structs stay untouched.
///
/// Built fluently:
///
/// ```
/// use higgs_common::{Consistency, Priority, QueryOptions};
/// use std::time::Duration;
///
/// let opts = QueryOptions::new()
///     .deadline(Duration::from_millis(5))
///     .priority(Priority::Interactive)
///     .consistency(Consistency::Relaxed);
/// assert_eq!(opts.priority, Priority::Interactive);
/// assert_eq!(QueryOptions::default().consistency, Consistency::ReadYourWrites);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryOptions {
    /// Maximum time the submission may wait before evaluation starts,
    /// measured from the moment of submission. A submission that is still
    /// queued when its deadline elapses completes with a typed
    /// deadline-exceeded error instead of a result. `None` (the default)
    /// never expires.
    pub deadline: Option<std::time::Duration>,
    /// Scheduling class within an admission tick.
    pub priority: Priority,
    /// Visibility guarantee relative to the submitter's own writes.
    pub consistency: Consistency,
    /// Bounded exponential-backoff retry for transient failures
    /// (overload, degraded shard). Only the serving layer's *blocking*
    /// client calls honour it; ticket-based submission returns the first
    /// attempt's outcome. Default: no retries.
    pub retry: RetryPolicy,
}

impl QueryOptions {
    /// Options reproducing today's semantics (alias for `Default`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Convenience preset for latency-sensitive traffic: `Interactive`
    /// priority with relaxed consistency, so the query neither queues
    /// behind bulk work nor waits for ingest flushes.
    pub fn interactive() -> Self {
        Self::new()
            .priority(Priority::Interactive)
            .consistency(Consistency::Relaxed)
    }

    /// Convenience preset for throughput-oriented traffic: `Bulk` priority
    /// with the default read-your-writes visibility.
    pub fn bulk() -> Self {
        Self::new().priority(Priority::Bulk)
    }

    /// Sets the submission deadline (measured from submission time).
    pub fn deadline(mut self, deadline: std::time::Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the scheduling class.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the visibility guarantee.
    pub fn consistency(mut self, consistency: Consistency) -> Self {
        self.consistency = consistency;
        self
    }

    /// Sets the transient-failure retry policy.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Tiny exact reference implementation used to test the default methods.
    #[derive(Default)]
    struct Toy {
        edges: Vec<StreamEdge>,
    }

    impl TemporalGraphSummary for Toy {
        fn insert(&mut self, edge: &StreamEdge) {
            self.edges.push(*edge);
        }
        fn delete(&mut self, edge: &StreamEdge) {
            if let Some(pos) = self.edges.iter().position(|e| e == edge) {
                self.edges.remove(pos);
            }
        }
        fn edge_query(&self, src: VertexId, dst: VertexId, range: TimeRange) -> Weight {
            self.edges
                .iter()
                .filter(|e| e.src == src && e.dst == dst && range.contains(e.timestamp))
                .map(|e| e.weight)
                .sum()
        }
        fn vertex_query(
            &self,
            vertex: VertexId,
            direction: VertexDirection,
            range: TimeRange,
        ) -> Weight {
            self.edges
                .iter()
                .filter(|e| match direction {
                    VertexDirection::Out => e.src == vertex,
                    VertexDirection::In => e.dst == vertex,
                })
                .filter(|e| range.contains(e.timestamp))
                .map(|e| e.weight)
                .sum()
        }
        fn space_bytes(&self) -> usize {
            self.edges.len() * std::mem::size_of::<StreamEdge>()
        }
        fn name(&self) -> &'static str {
            "Toy"
        }
    }

    fn example_fig5() -> Toy {
        // The stream of Fig. 5 / Example 1.
        let mut t = Toy::default();
        let edges = [
            (1, 2, 1, 1),
            (4, 5, 1, 2),
            (2, 3, 1, 3),
            (1, 4, 2, 4),
            (4, 6, 3, 5),
            (2, 3, 1, 6),
            (3, 7, 2, 7),
            (4, 7, 2, 8),
            (2, 3, 2, 9),
            (5, 6, 1, 10),
            (6, 7, 1, 11),
        ];
        for (s, d, w, ts) in edges {
            t.insert(&StreamEdge::new(s, d, w, ts));
        }
        t
    }

    #[test]
    fn example_1_edge_query() {
        let t = example_fig5();
        // Edge v2→v3 from t5 to t10 has weight 3 (t6 and t9).
        assert_eq!(t.edge_query(2, 3, TimeRange::new(5, 10)), 3);
        assert_eq!(t.query(&Query::edge(2, 3, TimeRange::new(5, 10))), 3);
    }

    #[test]
    fn example_1_vertex_query() {
        let t = example_fig5();
        // v4's outgoing edges from t1 to t11 total 6... the paper counts
        // (4,5,t2,1), (4,6,t5,3), (4,7,t8,2).
        assert_eq!(
            t.vertex_query(4, VertexDirection::Out, TimeRange::new(1, 11)),
            6
        );
        assert_eq!(
            t.query(&Query::vertex(
                4,
                VertexDirection::Out,
                TimeRange::new(1, 11)
            )),
            6
        );
    }

    #[test]
    fn example_1_subgraph_query() {
        let t = example_fig5();
        let q = SubgraphQuery::new(vec![(2, 3), (3, 7), (2, 4)], TimeRange::new(4, 8));
        assert_eq!(t.subgraph_query(&q), 3);
        assert_eq!(t.query(&Query::Subgraph(q)), 3);
    }

    #[test]
    fn path_query_sums_hops() {
        let t = example_fig5();
        let q = PathQuery::new(vec![1, 2, 3, 7], TimeRange::new(1, 11));
        // (1→2)=1, (2→3)=4, (3→7)=2
        assert_eq!(t.path_query(&q), 7);
        assert_eq!(q.hops(), 3);
        assert_eq!(t.query(&Query::Path(q)), 7);
    }

    #[test]
    fn insert_all_and_delete() {
        let mut t = Toy::default();
        let edges: Vec<StreamEdge> = (0..5).map(|i| StreamEdge::new(1, 2, 1, i)).collect();
        t.insert_all(&edges);
        assert_eq!(t.edge_query(1, 2, TimeRange::all()), 5);
        t.delete(&edges[0]);
        assert_eq!(t.edge_query(1, 2, TimeRange::all()), 4);
    }

    #[test]
    fn in_and_out_directions_differ() {
        let t = example_fig5();
        let r = TimeRange::all();
        let out = t.vertex_query(3, VertexDirection::Out, r);
        let inn = t.vertex_query(3, VertexDirection::In, r);
        assert_eq!(out, 2); // 3→7 at t7
        assert_eq!(inn, 4); // three arrivals of 2→3
        let _sanity: HashMap<&str, Weight> = HashMap::from([("out", out), ("in", inn)]);
    }

    #[test]
    fn workload_len() {
        let mut w = QueryWorkload::default();
        assert!(w.is_empty());
        w.edge_queries.push(EdgeQuery::new(1, 2, TimeRange::all()));
        w.vertex_queries
            .push(VertexQuery::new(1, VertexDirection::Out, TimeRange::all()));
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn query_accessors() {
        let r = TimeRange::new(3, 9);
        let queries = [
            Query::edge(1, 2, r),
            Query::vertex(1, VertexDirection::In, r),
            Query::path(vec![1, 2, 3, 4], r),
            Query::subgraph(vec![(1, 2), (2, 3)], r),
        ];
        assert!(queries.iter().all(|q| q.range() == r));
        assert_eq!(
            queries
                .iter()
                .map(Query::primitive_count)
                .collect::<Vec<_>>(),
            vec![1, 1, 3, 2]
        );
        assert_eq!(
            queries.iter().map(Query::kind_label).collect::<Vec<_>>(),
            vec!["edge", "vertex", "path", "subgraph"]
        );
    }

    #[test]
    fn query_from_primitive_structs() {
        let r = TimeRange::new(0, 5);
        assert_eq!(Query::from(EdgeQuery::new(1, 2, r)), Query::edge(1, 2, r));
        assert_eq!(
            Query::from(VertexQuery::new(7, VertexDirection::Out, r)),
            Query::vertex(7, VertexDirection::Out, r)
        );
        assert_eq!(
            Query::from(PathQuery::new(vec![1, 2], r)),
            Query::path(vec![1, 2], r)
        );
        assert_eq!(
            Query::from(SubgraphQuery::new(vec![(1, 2)], r)),
            Query::subgraph(vec![(1, 2)], r)
        );
    }

    #[test]
    fn group_by_range_preserves_first_appearance_order_and_indices() {
        let a = TimeRange::new(0, 10);
        let b = TimeRange::new(5, 15);
        let queries = vec![
            Query::edge(1, 2, b),
            Query::vertex(3, VertexDirection::Out, a),
            Query::path(vec![1, 2, 3], b),
            Query::subgraph(vec![(1, 2)], a),
            Query::edge(4, 5, b),
        ];
        let groups = group_by_range(&queries);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], (b, vec![0, 2, 4]));
        assert_eq!(groups[1], (a, vec![1, 3]));
        // Every query index appears exactly once across all groups.
        let mut seen: Vec<u32> = groups.iter().flat_map(|(_, m)| m.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..queries.len() as u32).collect::<Vec<_>>());
        assert!(group_by_range(&[]).is_empty());
    }

    #[test]
    fn group_by_range_hashing_fallback_matches_linear_semantics() {
        // Far more distinct ranges than LINEAR_GROUPING_LIMIT, with repeats
        // landing on both sides of the linear→hashing switch: grouping must
        // stay first-appearance-ordered and complete.
        let queries: Vec<Query> = (0..500u64)
            .map(|i| Query::edge(i, i + 1, TimeRange::new(i % 100, i % 100 + 10)))
            .collect();
        let groups = group_by_range(&queries);
        assert_eq!(groups.len(), 100);
        for (g, (range, members)) in groups.iter().enumerate() {
            assert_eq!(*range, TimeRange::new(g as u64, g as u64 + 10));
            assert_eq!(
                members,
                &(0..5).map(|k| (g + 100 * k) as u32).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn batch_push_len_and_distinct_ranges() {
        let mut batch = QueryBatch::new();
        assert!(batch.is_empty());
        let a = TimeRange::new(0, 10);
        let b = TimeRange::new(5, 15);
        batch.push(EdgeQuery::new(1, 2, a));
        batch.push(Query::vertex(3, VertexDirection::Out, a));
        batch.push(Query::path(vec![1, 2, 3], b));
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.distinct_ranges(), 2);
        assert_eq!(batch.queries().len(), 3);
        assert_eq!(batch.iter().count(), 3);
        assert_eq!((&batch).into_iter().count(), 3);
        assert_eq!(batch.clone().into_iter().count(), 3);
    }

    #[test]
    fn default_query_batch_matches_per_query_loop() {
        let t = example_fig5();
        let batch: QueryBatch = [
            Query::edge(2, 3, TimeRange::new(5, 10)),
            Query::vertex(4, VertexDirection::Out, TimeRange::new(1, 11)),
            Query::path(vec![1, 2, 3, 7], TimeRange::new(1, 11)),
            Query::subgraph(vec![(2, 3), (3, 7), (2, 4)], TimeRange::new(4, 8)),
        ]
        .into_iter()
        .collect();
        let batched = t.query_batch(batch.queries());
        let looped: Vec<Weight> = batch.iter().map(|q| t.query(q)).collect();
        assert_eq!(batched, looped);
        assert_eq!(batched, vec![3, 6, 7, 3]);
    }

    #[test]
    fn shard_parts_follow_source_routing_rules() {
        let r = TimeRange::new(0, 9);
        assert_eq!(
            Query::edge(1, 2, r).shard_parts(),
            vec![(ShardRoute::Vertex(1), Query::edge(1, 2, r))]
        );
        assert_eq!(
            Query::vertex(5, VertexDirection::Out, r).shard_parts(),
            vec![(
                ShardRoute::Vertex(5),
                Query::vertex(5, VertexDirection::Out, r)
            )]
        );
        assert_eq!(
            Query::vertex(5, VertexDirection::In, r).shard_parts(),
            vec![(
                ShardRoute::AllShards,
                Query::vertex(5, VertexDirection::In, r)
            )]
        );
        assert_eq!(
            Query::path(vec![1, 2, 3], r).shard_parts(),
            vec![
                (ShardRoute::Vertex(1), Query::edge(1, 2, r)),
                (ShardRoute::Vertex(2), Query::edge(2, 3, r)),
            ]
        );
        assert_eq!(
            Query::subgraph(vec![(7, 8), (9, 7)], r).shard_parts(),
            vec![
                (ShardRoute::Vertex(7), Query::edge(7, 8, r)),
                (ShardRoute::Vertex(9), Query::edge(9, 7, r)),
            ]
        );
        // Degenerate composites decompose into zero parts (their result is
        // the empty sum, matching the unsharded definition).
        assert!(Query::path(vec![1], r).shard_parts().is_empty());
        assert!(Query::subgraph(vec![], r).shard_parts().is_empty());
    }

    #[test]
    fn shard_plan_gather_matches_unsharded_evaluation() {
        // Evaluate a mixed batch on one exact store, and on per-shard exact
        // stores fed only their share of the stream; the routed + gathered
        // results must be identical.
        let t = example_fig5();
        let num_shards = 3;
        let mut shards: Vec<Toy> = (0..num_shards).map(|_| Toy::default()).collect();
        for e in &t.edges {
            shards[crate::hashing::shard_of(e.src, num_shards)].insert(e);
        }
        let batch: QueryBatch = [
            Query::edge(2, 3, TimeRange::new(5, 10)),
            Query::vertex(4, VertexDirection::Out, TimeRange::new(1, 11)),
            Query::vertex(7, VertexDirection::In, TimeRange::new(1, 11)),
            Query::path(vec![1, 2, 3, 7], TimeRange::new(1, 11)),
            Query::subgraph(vec![(2, 3), (3, 7), (2, 4)], TimeRange::new(4, 8)),
        ]
        .into_iter()
        .collect();
        let plan = batch.shard_plan(num_shards);
        assert_eq!(plan.num_shards(), num_shards);
        assert_eq!(plan.len(), batch.len());
        assert!(!plan.is_empty());
        let per_shard: Vec<Vec<Weight>> = (0..num_shards)
            .map(|s| shards[s].query_batch(plan.sub_batch(s)))
            .collect();
        let gathered = plan.gather(&per_shard);
        let direct = t.query_batch(batch.queries());
        assert_eq!(gathered, direct);
        assert_eq!(gathered, vec![3, 6, 5, 7, 3]);
    }

    #[test]
    fn shard_plan_single_shard_routes_everything_to_shard_zero() {
        let r = TimeRange::all();
        let queries = vec![
            Query::edge(1, 2, r),
            Query::vertex(3, VertexDirection::In, r),
            Query::path(vec![4, 5, 6], r),
        ];
        let plan = ShardPlan::build(&queries, 1);
        // 1 edge part + 1 broadcast part + 2 path hops.
        assert_eq!(plan.sub_batch(0).len(), 4);
        let toy = example_fig5();
        let results = vec![toy.query_batch(plan.sub_batch(0))];
        assert_eq!(plan.gather(&results), toy.query_batch(&queries));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn shard_plan_rejects_zero_shards() {
        let _ = ShardPlan::build(&[Query::edge(1, 2, TimeRange::all())], 0);
    }

    #[test]
    fn workload_iter_yields_every_query_as_typed() {
        let mut w = QueryWorkload::default();
        w.edge_queries.push(EdgeQuery::new(1, 2, TimeRange::all()));
        w.vertex_queries
            .push(VertexQuery::new(3, VertexDirection::In, TimeRange::all()));
        w.path_queries
            .push(PathQuery::new(vec![1, 2, 3], TimeRange::all()));
        w.subgraph_queries
            .push(SubgraphQuery::new(vec![(4, 5)], TimeRange::all()));
        let batch = w.to_batch();
        assert_eq!(batch.len(), w.len());
        assert_eq!(
            w.iter().map(|q| q.kind_label()).collect::<Vec<_>>(),
            vec!["edge", "vertex", "path", "subgraph"]
        );
    }

    #[test]
    fn query_options_default_matches_todays_semantics() {
        let opts = QueryOptions::default();
        assert_eq!(opts.deadline, None);
        assert_eq!(opts.priority, Priority::Normal);
        assert_eq!(opts.consistency, Consistency::ReadYourWrites);
        assert_eq!(opts.retry.max_retries, 0, "default must never retry");
        assert_eq!(opts, QueryOptions::new());
    }

    #[test]
    fn query_options_builder_sets_every_field() {
        let opts = QueryOptions::new()
            .deadline(std::time::Duration::from_millis(7))
            .priority(Priority::Bulk)
            .consistency(Consistency::Relaxed)
            .retry(RetryPolicy::retries(3));
        assert_eq!(opts.deadline, Some(std::time::Duration::from_millis(7)));
        assert_eq!(opts.priority, Priority::Bulk);
        assert_eq!(opts.consistency, Consistency::Relaxed);
        assert_eq!(opts.retry, RetryPolicy::retries(3));
    }

    #[test]
    fn retry_backoff_doubles_and_saturates() {
        let policy = RetryPolicy::retries(4).base_backoff(std::time::Duration::from_millis(2));
        assert_eq!(
            policy.backoff_before(1),
            std::time::Duration::from_millis(2)
        );
        assert_eq!(
            policy.backoff_before(2),
            std::time::Duration::from_millis(4)
        );
        assert_eq!(
            policy.backoff_before(3),
            std::time::Duration::from_millis(8)
        );
        // Way past any sane retry count: saturate, never wrap to a zero
        // sleep (which would turn backoff into a busy loop).
        assert!(policy.backoff_before(200) >= policy.backoff_before(3));
    }

    #[test]
    fn query_options_presets_pick_sensible_classes() {
        let fast = QueryOptions::interactive();
        assert_eq!(fast.priority, Priority::Interactive);
        assert_eq!(fast.consistency, Consistency::Relaxed);
        let slow = QueryOptions::bulk();
        assert_eq!(slow.priority, Priority::Bulk);
        assert_eq!(slow.consistency, Consistency::ReadYourWrites);
    }

    #[test]
    fn priority_order_ranks_interactive_ahead_of_bulk() {
        // The admission loop relies on the derived `Ord` for class order.
        assert!(Priority::Interactive < Priority::Normal);
        assert!(Priority::Normal < Priority::Bulk);
    }
}
