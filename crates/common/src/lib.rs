//! # higgs-common
//!
//! Shared substrate for the HIGGS (HIerarchy-Guided Graph Stream
//! Summarization, ICDE 2025) reproduction:
//!
//! * the graph-stream data model ([`StreamEdge`], [`GraphStream`],
//!   [`TimeRange`]),
//! * the hashing substrate used by every sketch (64-bit mixing, the
//!   fingerprint/address split of Eq. (1), linear-congruential address
//!   sequences for multiple mapping buckets),
//! * the [`TemporalGraphSummary`] trait that HIGGS and every baseline
//!   implement, together with the typed [`Query`] / [`QueryBatch`] surface
//!   (one entry point for all four TRQ kinds, batchable so implementations
//!   can share query plans) and composed path/subgraph queries,
//! * an exact ground-truth store ([`ExactTemporalGraph`]) for measuring
//!   average absolute / relative error,
//! * the binary persistence codec ([`codec`]): checksummed little-endian
//!   encode/decode with length-prefixed sections, the substrate of the
//!   `higgs` crate's snapshot format,
//! * synthetic workload generators reproducing the skewed, bursty character
//!   of the paper's datasets (Lkml, Wikipedia-talk, Stackoverflow),
//! * the error / throughput / latency / space metrics of Section VI, and
//! * the hardware-acceleration substrate: lane-width slab sweep kernels with
//!   runtime SSE2/AVX2 dispatch behind the `simd` cargo feature ([`simd`]),
//!   the portable software-prefetch shim ([`prefetch_read_data`]), and
//!   raw-syscall thread-to-core pinning ([`affinity`]).
//!
//! Everything here is self-contained: no external sketch or graph library is
//! used, matching the "build every substrate" requirement of the
//! reproduction.

#![deny(missing_docs)]
// `deny` rather than `forbid`: the SIMD kernels, the prefetch intrinsic,
// and the affinity syscalls carry narrowly scoped `#[allow(unsafe_code)]`
// blocks with safety comments; everything else stays safe Rust.
#![deny(unsafe_code)]
// Every unsafe operation inside an `unsafe fn` must sit in its own explicit
// `unsafe {}` block, so each one carries its own `// SAFETY:` rationale —
// which `cargo run -p xtask -- lint` then enforces mechanically.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod affinity;
pub mod codec;
pub mod edge;
pub mod exact;
pub mod generator;
pub mod hashing;
pub mod metrics;
pub mod query;
pub mod simd;
pub mod time;

pub use codec::{CodecError, Decoder, Encoder};
pub use edge::{GraphStream, StreamEdge, StreamStats, VertexId, Weight};
pub use exact::ExactTemporalGraph;
pub use hashing::{
    lcg_sequence, shard_of, vertex_hash, AddressSequence, FingerprintLayout, HashedVertex,
};
pub use metrics::{ErrorStats, LatencyStats, ThroughputStats};
pub use query::{
    group_by_range, Consistency, EdgeQuery, PathQuery, Priority, Query, QueryBatch, QueryOptions,
    QueryWorkload, RetryPolicy, ShardPlan, ShardRoute, SubgraphQuery, SummaryExt,
    TemporalGraphSummary, VertexDirection, VertexQuery,
};
pub use simd::{prefetch_read_data, sum_matching};
pub use time::{TimeRange, Timestamp};
