//! Temporal primitives: timestamps (discrete time slices) and inclusive
//! temporal ranges as used by Temporal Range Queries (TRQ, Definition 2).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Discrete timestamp (time-slice index). The paper uses a 1-second slice for
/// all datasets; the reproduction treats slices as abstract `u64` ticks.
pub type Timestamp = u64;

/// An inclusive temporal range `[start, end]` used by every TRQ primitive.
///
/// Ranges are inclusive on both ends to match Definition 2 ("the aggregated
/// weight of this edge within I = [ts, te]").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeRange {
    /// First timestamp covered by the range.
    pub start: Timestamp,
    /// Last timestamp covered by the range (inclusive).
    pub end: Timestamp,
}

impl TimeRange {
    /// Creates a new inclusive range. Panics if `start > end`.
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        assert!(start <= end, "TimeRange start {start} > end {end}");
        Self { start, end }
    }

    /// A range covering a single timestamp.
    pub fn instant(t: Timestamp) -> Self {
        Self { start: t, end: t }
    }

    /// A range covering every representable timestamp.
    pub fn all() -> Self {
        Self {
            start: 0,
            end: Timestamp::MAX,
        }
    }

    /// Number of timestamps covered (saturating).
    pub fn len(&self) -> u64 {
        (self.end - self.start).saturating_add(1)
    }

    /// Inclusive ranges are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `t` lies inside the range.
    #[inline]
    pub fn contains(&self, t: Timestamp) -> bool {
        self.start <= t && t <= self.end
    }

    /// Whether `other` is entirely contained in `self`.
    pub fn contains_range(&self, other: &TimeRange) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Whether the two ranges share at least one timestamp.
    pub fn overlaps(&self, other: &TimeRange) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Intersection of two ranges, if any.
    pub fn intersect(&self, other: &TimeRange) -> Option<TimeRange> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start <= end).then_some(TimeRange { start, end })
    }
}

impl fmt::Debug for TimeRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

impl fmt::Display for TimeRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

impl From<(Timestamp, Timestamp)> for TimeRange {
    fn from((start, end): (Timestamp, Timestamp)) -> Self {
        Self::new(start, end)
    }
}

/// Decomposes `[range.start, range.end]` into maximal dyadic intervals, i.e.
/// intervals of the form `[k·2^g, (k+1)·2^g − 1]`.
///
/// This is the classic top-down, domain-based decomposition used by the
/// Horae / PGSS family of baselines (each dyadic level corresponds to one
/// "layer" of their multi-layer structures). Returned as `(granularity g,
/// block index k)` pairs; the union of the returned intervals equals the
/// input range and the intervals are pairwise disjoint.
pub fn dyadic_decompose(range: TimeRange) -> Vec<(u32, u64)> {
    let mut out = Vec::new();
    let mut lo = range.start;
    let hi = range.end;
    while lo <= hi {
        // Largest power-of-two block starting at `lo` that fits in [lo, hi].
        let max_by_alignment = if lo == 0 { 63 } else { lo.trailing_zeros() };
        let remaining = hi - lo + 1;
        let max_by_len = 63 - remaining.leading_zeros();
        let g = max_by_alignment.min(max_by_len);
        let block = 1u64 << g;
        out.push((g, lo >> g));
        match lo.checked_add(block) {
            Some(next) => lo = next,
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_basics() {
        let r = TimeRange::new(5, 10);
        assert_eq!(r.len(), 6);
        assert!(r.contains(5));
        assert!(r.contains(10));
        assert!(!r.contains(11));
        assert!(!r.contains(4));
        assert!(!r.is_empty());
    }

    #[test]
    fn instant_range() {
        let r = TimeRange::instant(7);
        assert_eq!(r.len(), 1);
        assert!(r.contains(7));
        assert!(!r.contains(6));
    }

    #[test]
    #[should_panic(expected = "start")]
    fn invalid_range_panics() {
        let _ = TimeRange::new(10, 5);
    }

    #[test]
    fn contains_range_and_overlaps() {
        let outer = TimeRange::new(0, 100);
        let inner = TimeRange::new(10, 20);
        assert!(outer.contains_range(&inner));
        assert!(!inner.contains_range(&outer));
        assert!(outer.overlaps(&inner));
        let disjoint = TimeRange::new(101, 110);
        assert!(!outer.overlaps(&disjoint));
        assert!(outer.overlaps(&TimeRange::new(100, 110)));
    }

    #[test]
    fn intersection() {
        let a = TimeRange::new(0, 10);
        let b = TimeRange::new(5, 20);
        assert_eq!(a.intersect(&b), Some(TimeRange::new(5, 10)));
        let c = TimeRange::new(11, 20);
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn dyadic_cover_is_exact_and_disjoint() {
        for (s, e) in [(0u64, 0u64), (0, 15), (3, 17), (5, 5), (1, 1023), (7, 8)] {
            let range = TimeRange::new(s, e);
            let blocks = dyadic_decompose(range);
            let mut covered = Vec::new();
            for (g, k) in &blocks {
                let lo = k << g;
                let hi = lo + (1u64 << g) - 1;
                covered.push((lo, hi));
            }
            covered.sort_unstable();
            // Disjoint, contiguous, and exactly covering [s, e].
            assert_eq!(covered.first().unwrap().0, s);
            assert_eq!(covered.last().unwrap().1, e);
            for w in covered.windows(2) {
                assert_eq!(w[0].1 + 1, w[1].0, "gap or overlap in dyadic cover");
            }
        }
    }

    #[test]
    fn dyadic_aligned_range_is_single_block() {
        let blocks = dyadic_decompose(TimeRange::new(16, 31));
        assert_eq!(blocks, vec![(4, 1)]);
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", TimeRange::new(1, 2)), "[1, 2]");
    }
}
