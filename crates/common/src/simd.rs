//! Lane-width slab sweep primitives shared by the HIGGS compressed matrix
//! and the GSS baseline.
//!
//! The hot loops of every probe — edge lookups over `r × r` candidate
//! buckets, source-vertex sweeps over a contiguous `d · b`-slot row — reduce
//! to one shape: *sum the weights of all slots whose packed key and tag match
//! a pattern under a mask and whose time offset lies in an inclusive range*.
//! [`sum_matching`] is that primitive, operating over three parallel columns
//! (`keys`, `tags`, `weights`) of a structure-of-arrays slab:
//!
//! * `keys[i]` holds the packed fingerprint pair of slot `i`,
//! * `tags[i]` holds the packed index pair in its high 32 bits and the time
//!   offset in its low 32 bits,
//! * `weights[i]` holds the accumulated signed weight.
//!
//! Empty slots are all-zero, so they can match a zero pattern — but their
//! weight is zero, so they contribute nothing. That invariant lets callers
//! sweep *fixed-length* slot ranges (whole buckets, whole rows) without
//! consulting per-bucket occupancy counts: every slot is subjected to the
//! identical predicate, which is exactly the shape the explicit kernels
//! need.
//!
//! # Key-first evaluation
//!
//! The predicate is conjunctive and the key test is by far the most
//! selective conjunct (fingerprints are ≈ 19 random bits), so every kernel
//! evaluates **key-first**: the `keys` column is the only stream read
//! unconditionally — 8 bytes per slot instead of the full 24 — and the
//! `tags`/`weights` columns are loaded only for the rare slots whose masked
//! key matches. Sweep cost is therefore bounded by the bandwidth of one
//! column, not three, which is what lets the wide fixed-length sweeps beat
//! the occupancy-guided scans they replaced.
//!
//! # Kernels and dispatch
//!
//! The **scalar path is the reference**: a key-first loop whose rare-match
//! branch is almost never taken (the branch predictor, not the
//! autovectoriser, is the accelerator on targets without explicit kernels).
//! It is always compiled and is the only path on non-x86_64 targets.
//!
//! With the `simd` cargo feature enabled on x86_64, explicit SSE2 and AVX2
//! kernels (`core::arch::x86_64`, no external crates) are compiled as well
//! and selected once at runtime via `is_x86_feature_detected!`; the choice is
//! cached in an atomic so steady-state dispatch is one relaxed load. They
//! vectorise the masked key compare and reduce it to a movemask; matching
//! lanes fall back to the same scalar slot check, visited in ascending index
//! order. All kernels therefore compute bit-identical sums (same per-slot
//! predicate, same wrapping accumulation order), which the property suites
//! in `higgs` assert across random workloads. [`force_scalar`] pins dispatch
//! to the scalar path so those suites can diff kernels inside one process.
//!
//! [`prefetch_read_data`] is the portable software-prefetch shim used by the
//! columnar batch evaluator: `prefetcht0` on x86_64 (baseline SSE, available
//! on every x86_64 CPU), a no-op elsewhere. Prefetching never faults, so the
//! wrapper is safe; it bounds-checks the index and does nothing out of range.

use core::sync::atomic::{AtomicBool, Ordering};

/// Mask extracting the time offset from a packed tag (low 32 bits).
pub const TAG_OFFSET_MASK: u64 = 0xFFFF_FFFF;

/// Sums `weights[i]` over all `i` where
/// `keys[i] & key_mask == key_pat`, `tags[i] & tag_mask == tag_pat`, and
/// `off_lo <= tags[i] & TAG_OFFSET_MASK <= off_hi` (inclusive).
///
/// All three slices must have equal length (debug-asserted; the shorter
/// length governs in release builds). Accumulation wraps on 64-bit overflow
/// in every kernel, so results are bit-identical across dispatch choices.
///
/// `tag_pat` must not set bits inside [`TAG_OFFSET_MASK`] (offsets are
/// range-checked, not pattern-matched) and `off_lo`/`off_hi` must be
/// `u32`-range values; both are debug-asserted.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn sum_matching(
    keys: &[u64],
    tags: &[u64],
    weights: &[i64],
    key_mask: u64,
    key_pat: u64,
    tag_mask: u64,
    tag_pat: u64,
    off_lo: u32,
    off_hi: u32,
) -> i64 {
    debug_assert_eq!(keys.len(), tags.len());
    debug_assert_eq!(keys.len(), weights.len());
    debug_assert_eq!(tag_pat & TAG_OFFSET_MASK, 0);
    dispatch::sum_matching(
        keys, tags, weights, key_mask, key_pat, tag_mask, tag_pat, off_lo, off_hi,
    )
}

/// Tag-and-offset check for one slot whose key already matched: returns the
/// slot's weight if the remaining conjuncts hold, else zero (branchless
/// select, so every kernel resolves a key hit identically).
#[inline(always)]
// LINT-ALLOW(hot-path-panic): every caller derives `i` from a loop bounded by
// `n = min(keys.len(), tags.len(), weights.len())`, so both accesses are in
// range; a bounds branch here would sit on the rare-hit path of every kernel.
fn slot_contrib(
    tags: &[u64],
    weights: &[i64],
    i: usize,
    tag_mask: u64,
    tag_pat: u64,
    off_lo: u64,
    off_hi: u64,
) -> i64 {
    let t = tags[i];
    let tag_eq = (t & tag_mask) == tag_pat;
    let off = t & TAG_OFFSET_MASK;
    let off_in = (off >= off_lo) & (off <= off_hi);
    // `true` → all-ones mask, `false` → zero: select without branching.
    let lane = ((tag_eq & off_in) as i64).wrapping_neg();
    weights[i] & lane
}

/// Scalar reference kernel, key-first: stream the `keys` column, and only on
/// a masked key hit (rare — fingerprints are random) touch the slot's tag
/// and weight. The hit branch is near-perfectly predicted, so the loop
/// retires ≈ one key check per cycle while reading a third of the slab
/// bytes. This is the semantics every explicit kernel must reproduce
/// bit-for-bit: same predicate, same ascending accumulation order.
///
/// `#[inline]`: bucket-granular probes call this with `b ≈ 3`-slot slices
/// tens of times per query; inlining into the probe loop removes the
/// nine-argument call from the hot path.
#[inline]
#[allow(clippy::too_many_arguments)]
fn sum_matching_scalar(
    keys: &[u64],
    tags: &[u64],
    weights: &[i64],
    key_mask: u64,
    key_pat: u64,
    tag_mask: u64,
    tag_pat: u64,
    off_lo: u32,
    off_hi: u32,
) -> i64 {
    let (off_lo, off_hi) = (u64::from(off_lo), u64::from(off_hi));
    let n = keys.len().min(tags.len()).min(weights.len());
    let mut acc = 0i64;
    // LINT-ALLOW(hot-path-panic): `n <= keys.len()` by construction.
    for (i, &k) in keys[..n].iter().enumerate() {
        if k & key_mask == key_pat {
            acc = acc.wrapping_add(slot_contrib(
                tags, weights, i, tag_mask, tag_pat, off_lo, off_hi,
            ));
        }
    }
    acc
}

static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Pins kernel dispatch to the scalar reference path (`true`) or restores
/// runtime selection (`false`).
///
/// Test hook for the SIMD/scalar bit-identity suites: with the `simd`
/// feature enabled they evaluate every workload twice — once forced scalar,
/// once hardware-dispatched — and assert equal results. Not intended for
/// production use; without the `simd` feature it has no observable effect
/// (the scalar path is the only one compiled).
#[doc(hidden)]
pub fn force_scalar(on: bool) {
    // ORDERING: Release pairs with the Acquire load in `kernel_name`, so a
    // thread that observes the toggle also observes everything the toggling
    // test did before it. Dispatch itself only needs the flag value (all
    // kernels are bit-identical), but the stronger pair keeps the test
    // hook's happens-before story simple.
    FORCE_SCALAR.store(on, Ordering::Release);
}

/// Name of the kernel the next [`sum_matching`] call will dispatch to
/// (`"scalar"`, `"sse2"`, or `"avx2"`). Diagnostic only.
pub fn kernel_name() -> &'static str {
    dispatch::kernel_name()
}

/// True when a [`sum_matching`] call over a long slice will dispatch to an
/// explicit vector kernel (the `simd` feature is compiled in, the CPU has
/// one, and [`force_scalar`] is off).
///
/// Callers that can choose their sweep granularity use this to pick the
/// kernel's preferred shape: with a vector kernel active, one wide
/// fixed-length sweep per candidate row beats bucket-by-bucket scanning
/// (the kernel streams only the keys column); without one, occupancy-guided
/// per-bucket scans read less memory and win. Either shape produces
/// bit-identical sums — never-occupied slots contribute exactly zero — so
/// this is purely a performance hint, re-evaluated per probe (two relaxed
/// atomic loads).
#[inline]
pub fn wide_kernel_active() -> bool {
    dispatch::wide_kernel_active()
}

/// Minimum slice length worth routing to an explicit SIMD kernel: shorter
/// sweeps (single buckets of `b ≈ 3` slots) are dominated by setup and
/// horizontal reduction, so they take the scalar path regardless of
/// dispatch. Kept crate-public so tests can straddle the threshold.
pub const SIMD_MIN_LEN: usize = 16;

#[cfg(all(target_arch = "x86_64", feature = "simd"))]
mod dispatch {
    use super::{sum_matching_scalar, Ordering, FORCE_SCALAR, SIMD_MIN_LEN};
    use core::sync::atomic::AtomicU8;

    const KERNEL_UNKNOWN: u8 = 0;
    const KERNEL_SCALAR: u8 = 1;
    const KERNEL_SSE2: u8 = 2;
    const KERNEL_AVX2: u8 = 3;

    /// Cached `is_x86_feature_detected!` verdict; steady-state dispatch is
    /// one relaxed load.
    static KERNEL: AtomicU8 = AtomicU8::new(KERNEL_UNKNOWN);

    fn detect() -> u8 {
        // ORDERING: Relaxed — the cache holds an idempotent CPUID verdict;
        // racing threads recompute the same value and publish no other data,
        // so only the value itself (not ordering) matters.
        let k = KERNEL.load(Ordering::Relaxed);
        if k != KERNEL_UNKNOWN {
            return k;
        }
        let k = if std::arch::is_x86_feature_detected!("avx2") {
            KERNEL_AVX2
        } else if std::arch::is_x86_feature_detected!("sse2") {
            KERNEL_SSE2
        } else {
            KERNEL_SCALAR
        };
        // ORDERING: Relaxed — same reasoning as the load above: the store
        // only memoises a value every thread derives identically.
        KERNEL.store(k, Ordering::Relaxed);
        k
    }

    pub(super) fn kernel_name() -> &'static str {
        // ORDERING: Acquire pairs with the Release store in `force_scalar`
        // (see the rationale there).
        if FORCE_SCALAR.load(Ordering::Acquire) {
            return "scalar";
        }
        match detect() {
            KERNEL_AVX2 => "avx2",
            KERNEL_SSE2 => "sse2",
            _ => "scalar",
        }
    }

    #[inline]
    pub(super) fn wide_kernel_active() -> bool {
        // ORDERING: Relaxed — purely a performance hint; a stale read at
        // worst picks a differently shaped (but bit-identical) sweep.
        !FORCE_SCALAR.load(Ordering::Relaxed) && matches!(detect(), KERNEL_AVX2 | KERNEL_SSE2)
    }

    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub(super) fn sum_matching(
        keys: &[u64],
        tags: &[u64],
        weights: &[i64],
        key_mask: u64,
        key_pat: u64,
        tag_mask: u64,
        tag_pat: u64,
        off_lo: u32,
        off_hi: u32,
    ) -> i64 {
        // ORDERING: Relaxed — dispatch hint only; every kernel computes the
        // same bits, so observing a stale flag value cannot change results.
        if keys.len() >= SIMD_MIN_LEN && !FORCE_SCALAR.load(Ordering::Relaxed) {
            match detect() {
                // SAFETY: `detect` verified AVX2 support at runtime before
                // selecting this arm.
                #[allow(unsafe_code)]
                KERNEL_AVX2 => unsafe {
                    return sum_matching_avx2(
                        keys, tags, weights, key_mask, key_pat, tag_mask, tag_pat, off_lo, off_hi,
                    );
                },
                // SAFETY: `detect` verified SSE2 support at runtime before
                // selecting this arm.
                #[allow(unsafe_code)]
                KERNEL_SSE2 => unsafe {
                    return sum_matching_sse2(
                        keys, tags, weights, key_mask, key_pat, tag_mask, tag_pat, off_lo, off_hi,
                    );
                },
                _ => {}
            }
        }
        sum_matching_scalar(
            keys, tags, weights, key_mask, key_pat, tag_mask, tag_pat, off_lo, off_hi,
        )
    }

    /// AVX2 kernel, key-first: masked 64-bit compare of four keys per step,
    /// reduced to a 4-bit movemask. The overwhelmingly common all-miss step
    /// is one load + and + cmpeq + movemask with no access to the tag or
    /// weight columns; hit lanes are resolved through the same
    /// [`slot_contrib`] check as the scalar kernel, in ascending index order
    /// (`trailing_zeros` walks the mask low-to-high), so sums are
    /// bit-identical to the reference.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support at runtime.
    // LINT-ALLOW(hot-path-panic): the remainder slices use `i..n` with
    // `i <= n <= len` of every column (loop guards), and hit lanes satisfy
    // `i + lane < n` by the movemask width, so no access can be out of range.
    #[allow(unsafe_code)]
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    unsafe fn sum_matching_avx2(
        keys: &[u64],
        tags: &[u64],
        weights: &[i64],
        key_mask: u64,
        key_pat: u64,
        tag_mask: u64,
        tag_pat: u64,
        off_lo: u32,
        off_hi: u32,
    ) -> i64 {
        use core::arch::x86_64::*;
        let n = keys.len().min(tags.len()).min(weights.len());
        let (lo, hi) = (u64::from(off_lo), u64::from(off_hi));
        let vkey_mask = _mm256_set1_epi64x(key_mask as i64);
        let vkey_pat = _mm256_set1_epi64x(key_pat as i64);
        let mut acc = 0i64;
        let mut i = 0usize;
        // Two vectors per step (8 keys) with the two 4-bit movemasks packed
        // into one hit word: halves the loop/branch overhead of the all-miss
        // fast path, which is where wide sweeps spend essentially all steps.
        while i + 8 <= n {
            // SAFETY: `i + 8 <= n` bounds both unaligned 32-byte loads.
            #[allow(unsafe_code)]
            let (k0, k1) = unsafe {
                (
                    _mm256_loadu_si256(keys.as_ptr().add(i).cast()),
                    _mm256_loadu_si256(keys.as_ptr().add(i + 4).cast()),
                )
            };
            let eq0 = _mm256_cmpeq_epi64(_mm256_and_si256(k0, vkey_mask), vkey_pat);
            let eq1 = _mm256_cmpeq_epi64(_mm256_and_si256(k1, vkey_mask), vkey_pat);
            // One sign bit per 64-bit lane (compare masks are all-ones or
            // all-zero, so the double-precision movemask is exact). Bits
            // 0..=3 are lanes i..=i+3, bits 4..=7 lanes i+4..=i+7, so a
            // trailing-zeros walk visits hits in ascending index order.
            let mut hits = (_mm256_movemask_pd(_mm256_castsi256_pd(eq0)) as u32)
                | ((_mm256_movemask_pd(_mm256_castsi256_pd(eq1)) as u32) << 4);
            while hits != 0 {
                let lane = hits.trailing_zeros() as usize;
                acc = acc.wrapping_add(super::slot_contrib(
                    tags,
                    weights,
                    i + lane,
                    tag_mask,
                    tag_pat,
                    lo,
                    hi,
                ));
                hits &= hits - 1;
            }
            i += 8;
        }
        while i + 4 <= n {
            // SAFETY: `i + 4 <= n` bounds the unaligned 32-byte load.
            #[allow(unsafe_code)]
            let k = unsafe { _mm256_loadu_si256(keys.as_ptr().add(i).cast()) };
            let key_eq = _mm256_cmpeq_epi64(_mm256_and_si256(k, vkey_mask), vkey_pat);
            let mut hits = _mm256_movemask_pd(_mm256_castsi256_pd(key_eq)) as u32;
            while hits != 0 {
                let lane = hits.trailing_zeros() as usize;
                acc = acc.wrapping_add(super::slot_contrib(
                    tags,
                    weights,
                    i + lane,
                    tag_mask,
                    tag_pat,
                    lo,
                    hi,
                ));
                hits &= hits - 1;
            }
            i += 4;
        }
        acc.wrapping_add(sum_matching_scalar(
            &keys[i..n],
            &tags[i..n],
            &weights[i..n],
            key_mask,
            key_pat,
            tag_mask,
            tag_pat,
            off_lo,
            off_hi,
        ))
    }

    /// SSE2 kernel, key-first: two keys per step. SSE2 has no 64-bit
    /// compare, so 64-bit equality is two 32-bit `cmpeq` halves ANDed
    /// together; the rest mirrors the AVX2 kernel (movemask, hit lanes via
    /// [`slot_contrib`] in ascending order).
    ///
    /// # Safety
    ///
    /// Caller must have verified SSE2 support at runtime (guaranteed on
    /// every x86_64 CPU, but dispatch checks anyway).
    // LINT-ALLOW(hot-path-panic): the remainder slice uses `i..n` with
    // `i <= n <= len` of every column (loop guard), and hit lanes satisfy
    // `i + lane < n` by the movemask width, so no access can be out of range.
    #[allow(unsafe_code)]
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "sse2")]
    unsafe fn sum_matching_sse2(
        keys: &[u64],
        tags: &[u64],
        weights: &[i64],
        key_mask: u64,
        key_pat: u64,
        tag_mask: u64,
        tag_pat: u64,
        off_lo: u32,
        off_hi: u32,
    ) -> i64 {
        use core::arch::x86_64::*;
        let n = keys.len().min(tags.len()).min(weights.len());
        let (lo, hi) = (u64::from(off_lo), u64::from(off_hi));
        let vkey_mask = _mm_set1_epi64x(key_mask as i64);
        let vkey_pat = _mm_set1_epi64x(key_pat as i64);
        let mut acc = 0i64;
        let mut i = 0usize;
        while i + 2 <= n {
            // SAFETY: `i + 2 <= n` bounds the unaligned 16-byte load.
            #[allow(unsafe_code)]
            let k = unsafe { _mm_loadu_si128(keys.as_ptr().add(i).cast()) };
            let eq32 = _mm_cmpeq_epi32(_mm_and_si128(k, vkey_mask), vkey_pat);
            // Per-64-bit-lane equality out of 32-bit compares: both dword
            // halves must agree.
            let key_eq = _mm_and_si128(eq32, _mm_shuffle_epi32(eq32, 0b1011_0001));
            let mut hits = _mm_movemask_pd(_mm_castsi128_pd(key_eq)) as u32;
            while hits != 0 {
                let lane = hits.trailing_zeros() as usize;
                acc = acc.wrapping_add(super::slot_contrib(
                    tags,
                    weights,
                    i + lane,
                    tag_mask,
                    tag_pat,
                    lo,
                    hi,
                ));
                hits &= hits - 1;
            }
            i += 2;
        }
        acc.wrapping_add(sum_matching_scalar(
            &keys[i..n],
            &tags[i..n],
            &weights[i..n],
            key_mask,
            key_pat,
            tag_mask,
            tag_pat,
            off_lo,
            off_hi,
        ))
    }
}

#[cfg(not(all(target_arch = "x86_64", feature = "simd")))]
mod dispatch {
    use super::sum_matching_scalar;

    pub(super) fn kernel_name() -> &'static str {
        "scalar"
    }

    #[inline]
    pub(super) fn wide_kernel_active() -> bool {
        false
    }

    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub(super) fn sum_matching(
        keys: &[u64],
        tags: &[u64],
        weights: &[i64],
        key_mask: u64,
        key_pat: u64,
        tag_mask: u64,
        tag_pat: u64,
        off_lo: u32,
        off_hi: u32,
    ) -> i64 {
        sum_matching_scalar(
            keys, tags, weights, key_mask, key_pat, tag_mask, tag_pat, off_lo, off_hi,
        )
    }
}

/// Software-prefetches `data[index]` for an imminent read (`prefetcht0` on
/// x86_64, no-op elsewhere and when `index` is out of range). Purely a
/// performance hint: prefetch instructions never fault and never change
/// observable results.
#[inline(always)]
pub fn prefetch_read_data<T>(data: &[T], index: usize) {
    #[cfg(target_arch = "x86_64")]
    if index < data.len() {
        // SAFETY: the index is in bounds, so the pointer is valid; prefetch
        // has no observable side effects and cannot fault regardless.
        #[allow(unsafe_code)]
        unsafe {
            core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
                data.as_ptr().add(index).cast(),
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (data, index);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation with obvious branching semantics.
    #[allow(clippy::too_many_arguments)]
    fn naive(
        keys: &[u64],
        tags: &[u64],
        weights: &[i64],
        key_mask: u64,
        key_pat: u64,
        tag_mask: u64,
        tag_pat: u64,
        off_lo: u32,
        off_hi: u32,
    ) -> i64 {
        let mut acc = 0i64;
        for i in 0..keys.len() {
            let off = (tags[i] & TAG_OFFSET_MASK) as u32;
            if keys[i] & key_mask == key_pat
                && tags[i] & tag_mask == tag_pat
                && off >= off_lo
                && off <= off_hi
            {
                acc = acc.wrapping_add(weights[i]);
            }
        }
        acc
    }

    fn workload(len: usize, seed: u64) -> (Vec<u64>, Vec<u64>, Vec<i64>) {
        let mut state = seed;
        let mut next = move || {
            state = crate::hashing::splitmix64(state);
            state
        };
        let keys: Vec<u64> = (0..len).map(|_| next() % 8).collect();
        let tags: Vec<u64> = (0..len)
            .map(|_| ((next() % 4) << 32) | (next() % 100))
            .collect();
        let weights: Vec<i64> = (0..len).map(|_| (next() % 1000) as i64 - 500).collect();
        (keys, tags, weights)
    }

    #[test]
    fn matches_naive_reference_across_lengths() {
        // Lengths straddle the SIMD threshold and every lane-width remainder.
        for len in [0usize, 1, 2, 3, 5, 7, 15, 16, 17, 31, 64, 100, 257] {
            let (keys, tags, weights) = workload(len, len as u64 + 1);
            for (lo, hi) in [(0u32, u32::MAX), (10, 60), (50, 50), (90, 10)] {
                let expect = naive(&keys, &tags, &weights, !0, 3, 0xF_0000_0000, 0, lo, hi);
                let got = sum_matching(&keys, &tags, &weights, !0, 3, 0xF_0000_0000, 0, lo, hi);
                assert_eq!(got, expect, "len {len} range [{lo}, {hi}]");
            }
        }
    }

    #[test]
    fn masked_key_and_tag_patterns() {
        let (keys, tags, weights) = workload(200, 42);
        // High-half key match (src-style), high-byte tag match.
        let cases = [
            (
                0xFFFF_FFFF_0000_0000u64,
                2u64 << 32,
                0xFF00_0000_0000u64,
                0u64,
            ),
            (0xFFFF_FFFFu64, 5, 0xFF_0000_0000u64, 2u64 << 32),
            (!0u64, 0, !TAG_OFFSET_MASK, 3u64 << 32),
        ];
        for (km, kp, tm, tp) in cases {
            assert_eq!(
                sum_matching(&keys, &tags, &weights, km, kp, tm, tp, 0, u32::MAX),
                naive(&keys, &tags, &weights, km, kp, tm, tp, 0, u32::MAX),
            );
        }
    }

    #[test]
    fn forced_scalar_is_bit_identical_to_dispatch() {
        // `force_scalar` flips a process-global; this is the single test
        // that toggles it (kernel_name assertions live here too), so no
        // other concurrently running test observes a half-toggled state —
        // and even if one did, every kernel is bit-identical anyway.
        let (keys, tags, weights) = workload(4096, 7);
        let args = (!0u64, 1u64, 0xF_0000_0000u64, 0u64, 5u32, 80u32);
        let dispatched = sum_matching(
            &keys, &tags, &weights, args.0, args.1, args.2, args.3, args.4, args.5,
        );
        assert!(["scalar", "sse2", "avx2"].contains(&kernel_name()));
        force_scalar(true);
        assert_eq!(kernel_name(), "scalar");
        let scalar = sum_matching(
            &keys, &tags, &weights, args.0, args.1, args.2, args.3, args.4, args.5,
        );
        force_scalar(false);
        assert_eq!(dispatched, scalar);
    }

    #[test]
    fn empty_all_zero_slots_contribute_nothing() {
        // The slab invariant: all-zero slots may satisfy a zero pattern but
        // never change the sum, because their weight is zero.
        let keys = vec![0u64; 64];
        let tags = vec![0u64; 64];
        let weights = vec![0i64; 64];
        assert_eq!(
            sum_matching(&keys, &tags, &weights, 0, 0, 0, 0, 0, u32::MAX),
            0
        );
    }

    #[test]
    fn wrapping_accumulation_is_consistent() {
        let keys = vec![1u64; 20];
        let tags = vec![0u64; 20];
        let weights = vec![i64::MAX; 20];
        let expect = (0..20).fold(0i64, |a, _| a.wrapping_add(i64::MAX));
        assert_eq!(
            sum_matching(&keys, &tags, &weights, !0, 1, !0, 0, 0, u32::MAX),
            expect
        );
    }

    #[test]
    fn prefetch_is_safe_in_and_out_of_bounds() {
        let data = [1u64, 2, 3];
        prefetch_read_data(&data, 0);
        prefetch_read_data(&data, 2);
        prefetch_read_data(&data, 3); // out of range: no-op
        prefetch_read_data::<u64>(&[], 0);
    }
}
