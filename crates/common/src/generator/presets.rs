//! Dataset presets standing in for the paper's three real datasets
//! (Table II) and the synthetic skewness / variance sweeps of Fig. 14/15.
//!
//! The real KONECT dumps are not redistributable inside this repository, so
//! each preset produces a scaled-down stream with the same qualitative
//! characteristics: node/edge ratio, degree skew, and arrival burstiness.
//! The scale factor is controlled by [`ExperimentScale`] so the full
//! benchmark harness runs on a laptop (see DESIGN.md §4 for the
//! substitution rationale).

use super::{generate_stream, BurstConfig, StreamConfig};
use crate::edge::GraphStream;

/// How large the generated experiment streams should be.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Tiny streams for CI / unit tests (a few thousand edges).
    Smoke,
    /// Default laptop-scale streams (tens to hundreds of thousands of edges).
    Default,
    /// Larger streams approximating the paper's relative dataset sizes
    /// (millions of edges; minutes of runtime).
    Paper,
}

impl ExperimentScale {
    /// Multiplier applied to the default edge counts.
    pub fn edge_multiplier(&self) -> f64 {
        match self {
            ExperimentScale::Smoke => 0.05,
            ExperimentScale::Default => 1.0,
            ExperimentScale::Paper => 10.0,
        }
    }
}

/// The three dataset presets of Table II.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetPreset {
    /// Linux kernel mailing list replies: 63K users, 1.1M replies, 2006–2013.
    Lkml,
    /// English Wikipedia talk-page messages: 3.0M users, 25M messages.
    WikiTalk,
    /// Stack Overflow interactions: 2.6M users, 63M interactions.
    Stackoverflow,
}

impl DatasetPreset {
    /// All presets in the order the paper lists them.
    pub fn all() -> [DatasetPreset; 3] {
        [
            DatasetPreset::Lkml,
            DatasetPreset::WikiTalk,
            DatasetPreset::Stackoverflow,
        ]
    }

    /// Short name used in experiment output (matches the paper's labels).
    pub fn label(&self) -> &'static str {
        match self {
            DatasetPreset::Lkml => "Lkml",
            DatasetPreset::WikiTalk => "Wiki-talk",
            DatasetPreset::Stackoverflow => "Stackoverflow",
        }
    }

    /// Generator configuration for this preset at the given scale.
    ///
    /// Node/edge ratios follow Table II: Lkml has ~17 edges per node and a
    /// heavier tail (mailing-list power users), Wiki-talk ~8, Stackoverflow
    /// ~24. Time spans are proportional to the real multi-year spans.
    pub fn config(&self, scale: ExperimentScale) -> StreamConfig {
        let m = scale.edge_multiplier();
        let (edges, vertices, skew, slices, bursts) = match self {
            DatasetPreset::Lkml => (
                120_000,
                7_000,
                2.2,
                1u64 << 18,
                BurstConfig {
                    burst_count: 6,
                    burst_fraction: 0.55,
                    burst_width_fraction: 0.01,
                },
            ),
            DatasetPreset::WikiTalk => (
                250_000,
                30_000,
                2.0,
                1u64 << 19,
                BurstConfig {
                    burst_count: 10,
                    burst_fraction: 0.45,
                    burst_width_fraction: 0.015,
                },
            ),
            DatasetPreset::Stackoverflow => (
                400_000,
                17_000,
                1.9,
                1u64 << 19,
                BurstConfig {
                    burst_count: 12,
                    burst_fraction: 0.5,
                    burst_width_fraction: 0.008,
                },
            ),
        };
        StreamConfig {
            name: self.label().to_string(),
            vertices: ((vertices as f64 * m.max(0.05)) as usize).max(200),
            edges: ((edges as f64 * m) as usize).max(1_000),
            skew,
            time_slices: slices,
            bursts,
            max_weight: 1,
            seed: 0xD1CE ^ (*self as u64),
        }
    }

    /// Generates the preset stream at the given scale.
    pub fn generate(&self, scale: ExperimentScale) -> GraphStream {
        generate_stream(&self.config(scale))
    }
}

/// Generates the six skewness datasets of Fig. 14: power-law exponents from
/// 1.5 to 3.0 in steps of 0.3, each with `vertices` nodes and `edges` items.
pub fn skewness_sweep(vertices: usize, edges: usize) -> Vec<(f64, GraphStream)> {
    (0..6)
        .map(|i| {
            let skew = 1.5 + 0.3 * i as f64;
            let cfg = StreamConfig {
                name: format!("skew-{skew:.1}"),
                vertices,
                edges,
                skew,
                time_slices: 1 << 16,
                bursts: BurstConfig::default(),
                max_weight: 1,
                seed: 9_000 + i,
            };
            (skew, generate_stream(&cfg))
        })
        .collect()
}

/// Generates the six variance datasets of Fig. 15: increasing arrival
/// burstiness levels, each with `vertices` nodes and `edges` items. Returns
/// `(level, stream)` pairs; the measured per-slice variance grows with the
/// level.
pub fn variance_sweep(vertices: usize, edges: usize) -> Vec<(usize, GraphStream)> {
    (0..6)
        .map(|level| {
            let cfg = StreamConfig {
                name: format!("variance-{level}"),
                vertices,
                edges,
                skew: 2.0,
                time_slices: 1 << 16,
                bursts: BurstConfig::variance_level(level),
                max_weight: 1,
                seed: 11_000 + level as u64,
            };
            (level, generate_stream(&cfg))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::arrival_variance;

    #[test]
    fn presets_generate_at_smoke_scale() {
        for preset in DatasetPreset::all() {
            let s = preset.generate(ExperimentScale::Smoke);
            assert!(!s.is_empty());
            assert_eq!(s.name, preset.label());
        }
    }

    #[test]
    fn preset_sizes_are_ordered_like_table_2() {
        let lkml = DatasetPreset::Lkml.config(ExperimentScale::Default);
        let wt = DatasetPreset::WikiTalk.config(ExperimentScale::Default);
        let so = DatasetPreset::Stackoverflow.config(ExperimentScale::Default);
        assert!(lkml.edges < wt.edges);
        assert!(wt.edges < so.edges);
        assert!(lkml.vertices < wt.vertices);
    }

    #[test]
    fn scale_multiplier_orders() {
        assert!(
            ExperimentScale::Smoke.edge_multiplier() < ExperimentScale::Default.edge_multiplier()
        );
        assert!(
            ExperimentScale::Default.edge_multiplier() < ExperimentScale::Paper.edge_multiplier()
        );
    }

    #[test]
    fn skewness_sweep_has_six_levels() {
        let sweep = skewness_sweep(500, 4_000);
        assert_eq!(sweep.len(), 6);
        assert!((sweep[0].0 - 1.5).abs() < 1e-9);
        assert!((sweep[5].0 - 3.0).abs() < 1e-9);
        let max_deg_first = *sweep[0].1.out_degrees().values().max().unwrap();
        let max_deg_last = *sweep[5].1.out_degrees().values().max().unwrap();
        assert!(max_deg_last >= max_deg_first);
    }

    #[test]
    fn variance_sweep_variance_grows() {
        let sweep = variance_sweep(500, 20_000);
        assert_eq!(sweep.len(), 6);
        let v0 = arrival_variance(&sweep[0].1, 64);
        let v5 = arrival_variance(&sweep[5].1, 64);
        assert!(v5 > v0, "variance should grow with level: {v0} vs {v5}");
    }
}
