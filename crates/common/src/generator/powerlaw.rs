//! Zipf / power-law vertex popularity sampling.
//!
//! Vertex degrees in the paper's datasets follow a power law (Fig. 2); the
//! skewness sweep of Fig. 14 varies the exponent from 1.5 to 3.0. This module
//! provides an exact inverse-CDF Zipf sampler over ranks `0..n` with
//! probability `P(rank = k) ∝ 1 / (k+1)^s`.

use rand::Rng;

/// Exact Zipf sampler over `n` ranks with exponent `s`.
///
/// Sampling uses binary search over the precomputed CDF: O(n) memory,
/// O(log n) per sample, fully deterministic given the RNG. For the stream
/// sizes used in the reproduction (≤ a few hundred thousand vertices) this is
/// both simpler and more accurate than rejection-based samplers.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
    exponent: f64,
}

impl ZipfSampler {
    /// Creates a sampler over `n ≥ 1` ranks with exponent `s ≥ 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "ZipfSampler needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be finite and ≥ 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating point drift.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf, exponent: s }
    }

    /// The exponent this sampler was built with.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler has zero ranks (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..n`; rank 0 is the most popular.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of a given rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            return 0.0;
        }
        let hi = self.cdf[rank];
        let lo = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        hi - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = ZipfSampler::new(100, 2.0);
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.len(), 100);
        assert!(!z.is_empty());
        assert_eq!(z.exponent(), 2.0);
    }

    #[test]
    fn rank_zero_is_most_popular() {
        let z = ZipfSampler::new(50, 1.8);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(10));
        assert!(z.pmf(10) > z.pmf(49));
    }

    #[test]
    fn samples_follow_pmf_roughly() {
        let z = ZipfSampler::new(10, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let empirical = count as f64 / n as f64;
            let expected = z.pmf(k);
            assert!(
                (empirical - expected).abs() < 0.01,
                "rank {k}: empirical {empirical} expected {expected}"
            );
        }
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = ZipfSampler::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn higher_exponent_concentrates_mass() {
        let lo = ZipfSampler::new(1000, 1.5);
        let hi = ZipfSampler::new(1000, 3.0);
        assert!(hi.pmf(0) > lo.pmf(0));
    }

    #[test]
    fn single_rank_always_sampled() {
        let z = ZipfSampler::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = ZipfSampler::new(0, 1.0);
    }
}
