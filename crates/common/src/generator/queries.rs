//! Query-workload sampling.
//!
//! Section VI-A: "For vertex and edge queries, we vary the query range length
//! Lq from 10^1 to 10^7. For each Lq, we randomly generated 100K edge queries
//! and 10K vertex queries. For path and subgraph queries, the path length is
//! set to [1, 7] and subgraph size is set to [50, 350]."
//!
//! [`WorkloadBuilder`] samples queries from an existing stream so that query
//! targets are real edges/vertices (true values are mostly non-zero, as the
//! ARE metric requires), with configurable range length and counts.

use crate::edge::{GraphStream, VertexId};
use crate::query::{
    EdgeQuery, PathQuery, QueryWorkload, SubgraphQuery, VertexDirection, VertexQuery,
};
use crate::time::{TimeRange, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Samples TRQ workloads anchored on an existing graph stream.
#[derive(Clone, Debug)]
pub struct WorkloadBuilder {
    edges: Vec<(VertexId, VertexId)>,
    adjacency: HashMap<VertexId, Vec<VertexId>>,
    vertices: Vec<VertexId>,
    span: TimeRange,
    rng: StdRng,
}

impl WorkloadBuilder {
    /// Creates a builder over `stream` with a deterministic seed.
    pub fn new(stream: &GraphStream, seed: u64) -> Self {
        let mut edge_set = HashSet::new();
        let mut adjacency: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
        let mut vertex_set = HashSet::new();
        for e in stream.iter() {
            if edge_set.insert((e.src, e.dst)) {
                adjacency.entry(e.src).or_default().push(e.dst);
            }
            vertex_set.insert(e.src);
            vertex_set.insert(e.dst);
        }
        let mut edges: Vec<_> = edge_set.into_iter().collect();
        edges.sort_unstable();
        let mut vertices: Vec<_> = vertex_set.into_iter().collect();
        vertices.sort_unstable();
        let span = stream.time_span().unwrap_or(TimeRange::new(0, 1));
        Self {
            edges,
            adjacency,
            vertices,
            span,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Full time span of the underlying stream.
    pub fn span(&self) -> TimeRange {
        self.span
    }

    /// Samples a temporal range of length `lq` (clamped to the stream span),
    /// positioned uniformly at random.
    pub fn random_range(&mut self, lq: u64) -> TimeRange {
        let lq = lq.max(1);
        let span_len = self.span.len();
        let len = lq.min(span_len);
        let max_start = self.span.end.saturating_sub(len - 1);
        let start = if max_start <= self.span.start {
            self.span.start
        } else {
            self.rng.gen_range(self.span.start..=max_start)
        };
        TimeRange::new(start, start + len - 1)
    }

    /// Samples `count` edge queries with range length `lq`.
    pub fn edge_queries(&mut self, count: usize, lq: u64) -> Vec<EdgeQuery> {
        (0..count)
            .map(|_| {
                let (src, dst) = self.edges[self.rng.gen_range(0..self.edges.len())];
                EdgeQuery::new(src, dst, self.random_range(lq))
            })
            .collect()
    }

    /// Samples `count` vertex queries with range length `lq`, alternating
    /// between out- and in-direction.
    pub fn vertex_queries(&mut self, count: usize, lq: u64) -> Vec<VertexQuery> {
        (0..count)
            .map(|i| {
                let vertex = self.vertices[self.rng.gen_range(0..self.vertices.len())];
                let direction = if i % 2 == 0 {
                    VertexDirection::Out
                } else {
                    VertexDirection::In
                };
                VertexQuery::new(vertex, direction, self.random_range(lq))
            })
            .collect()
    }

    /// Samples `count` path queries of exactly `hops` hops (paths follow
    /// existing edges where possible, falling back to random vertices when a
    /// walk dead-ends, as the paper's random path queries do).
    pub fn path_queries(&mut self, count: usize, hops: usize, lq: u64) -> Vec<PathQuery> {
        (0..count)
            .map(|_| {
                let mut vertices = Vec::with_capacity(hops + 1);
                let start = self.vertices[self.rng.gen_range(0..self.vertices.len())];
                vertices.push(start);
                let mut current = start;
                for _ in 0..hops {
                    let next = match self.adjacency.get(&current) {
                        Some(nexts) if !nexts.is_empty() => {
                            nexts[self.rng.gen_range(0..nexts.len())]
                        }
                        _ => self.vertices[self.rng.gen_range(0..self.vertices.len())],
                    };
                    vertices.push(next);
                    current = next;
                }
                PathQuery::new(vertices, self.random_range(lq))
            })
            .collect()
    }

    /// Samples `count` subgraph queries of `size` edges each.
    pub fn subgraph_queries(&mut self, count: usize, size: usize, lq: u64) -> Vec<SubgraphQuery> {
        (0..count)
            .map(|_| {
                let edges = (0..size)
                    .map(|_| self.edges[self.rng.gen_range(0..self.edges.len())])
                    .collect();
                SubgraphQuery::new(edges, self.random_range(lq))
            })
            .collect()
    }

    /// Builds a full mixed workload at range length `lq` (scaled-down version
    /// of the Section VI-A setup).
    pub fn mixed_workload(
        &mut self,
        edge_count: usize,
        vertex_count: usize,
        path_count: usize,
        subgraph_count: usize,
        lq: u64,
    ) -> QueryWorkload {
        QueryWorkload {
            edge_queries: self.edge_queries(edge_count, lq),
            vertex_queries: self.vertex_queries(vertex_count, lq),
            path_queries: self.path_queries(path_count, 4, lq),
            subgraph_queries: self.subgraph_queries(subgraph_count, 50, lq),
        }
    }

    /// Randomly samples an arrival timestamp present in the stream span.
    pub fn random_timestamp(&mut self) -> Timestamp {
        self.rng.gen_range(self.span.start..=self.span.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::StreamEdge;

    fn stream() -> GraphStream {
        let mut edges = Vec::new();
        for i in 0..200u64 {
            edges.push(StreamEdge::new(i % 20, (i + 1) % 20, 1, i * 10));
        }
        GraphStream::from_edges("test", edges)
    }

    #[test]
    fn edge_queries_hit_existing_edges() {
        let s = stream();
        let mut b = WorkloadBuilder::new(&s, 1);
        let qs = b.edge_queries(50, 100);
        assert_eq!(qs.len(), 50);
        let known: HashSet<_> = s.iter().map(|e| (e.src, e.dst)).collect();
        assert!(qs.iter().all(|q| known.contains(&(q.src, q.dst))));
    }

    #[test]
    fn ranges_have_requested_length() {
        let s = stream();
        let mut b = WorkloadBuilder::new(&s, 2);
        for _ in 0..100 {
            let r = b.random_range(17);
            assert_eq!(r.len(), 17);
            assert!(r.start >= b.span().start);
            assert!(r.end <= b.span().end);
        }
    }

    #[test]
    fn long_ranges_are_clamped_to_span() {
        let s = stream();
        let mut b = WorkloadBuilder::new(&s, 3);
        let r = b.random_range(10_000_000);
        assert_eq!(r.len(), b.span().len());
    }

    #[test]
    fn path_queries_have_requested_hops() {
        let s = stream();
        let mut b = WorkloadBuilder::new(&s, 4);
        for q in b.path_queries(20, 5, 50) {
            assert_eq!(q.hops(), 5);
        }
    }

    #[test]
    fn subgraph_queries_have_requested_size() {
        let s = stream();
        let mut b = WorkloadBuilder::new(&s, 5);
        for q in b.subgraph_queries(10, 30, 50) {
            assert_eq!(q.edges.len(), 30);
        }
    }

    #[test]
    fn mixed_workload_counts() {
        let s = stream();
        let mut b = WorkloadBuilder::new(&s, 6);
        let w = b.mixed_workload(10, 5, 3, 2, 100);
        assert_eq!(w.edge_queries.len(), 10);
        assert_eq!(w.vertex_queries.len(), 5);
        assert_eq!(w.path_queries.len(), 3);
        assert_eq!(w.subgraph_queries.len(), 2);
        assert_eq!(w.len(), 20);
    }

    #[test]
    fn deterministic_given_seed() {
        let s = stream();
        let a = WorkloadBuilder::new(&s, 9).edge_queries(20, 10);
        let b = WorkloadBuilder::new(&s, 9).edge_queries(20, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn vertex_queries_alternate_direction() {
        let s = stream();
        let mut b = WorkloadBuilder::new(&s, 10);
        let qs = b.vertex_queries(4, 10);
        assert_eq!(qs[0].direction, VertexDirection::Out);
        assert_eq!(qs[1].direction, VertexDirection::In);
    }
}
