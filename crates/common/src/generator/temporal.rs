//! Bursty arrival-time generation.
//!
//! Fig. 3 of the paper shows "hot time intervals where a large number of
//! stream edges occur" — arrivals are far from uniform. The
//! [`ArrivalProcess`] reproduces this by mixing a uniform background with a
//! configurable number of Gaussian bursts; the burst fraction and width drive
//! the per-slice arrival variance, which is the x-axis of Fig. 15.

use crate::time::Timestamp;
use rand::Rng;
use rand_distr_free::sample_gaussian;

/// Configuration of the burstiness of a synthetic stream's arrivals.
#[derive(Clone, Debug)]
pub struct BurstConfig {
    /// Number of hot intervals (bursts) across the stream's time span.
    pub burst_count: usize,
    /// Fraction of all edges that arrive inside bursts (0.0 = uniform).
    pub burst_fraction: f64,
    /// Standard deviation of each burst as a fraction of the total time span.
    pub burst_width_fraction: f64,
}

impl Default for BurstConfig {
    fn default() -> Self {
        Self {
            burst_count: 4,
            burst_fraction: 0.5,
            burst_width_fraction: 0.02,
        }
    }
}

impl BurstConfig {
    /// Purely uniform arrivals (no bursts).
    pub fn uniform() -> Self {
        Self {
            burst_count: 0,
            burst_fraction: 0.0,
            burst_width_fraction: 0.0,
        }
    }

    /// A configuration whose per-slice arrival variance grows monotonically
    /// with `level` in `0..=5`, used for the Fig. 15 sweep (the paper labels
    /// the six synthetic datasets with variances 600–1600).
    pub fn variance_level(level: usize) -> Self {
        let level = level.min(5);
        Self {
            burst_count: 6,
            burst_fraction: 0.3 + 0.12 * level as f64,
            burst_width_fraction: 0.03 / (1.0 + level as f64),
        }
    }
}

/// Samples arrival timestamps over `0..time_slices`.
#[derive(Clone, Debug)]
pub struct ArrivalProcess {
    time_slices: u64,
    config: BurstConfig,
}

impl ArrivalProcess {
    /// Creates an arrival process over `time_slices ≥ 1` slices.
    pub fn new(time_slices: u64, config: BurstConfig) -> Self {
        assert!(time_slices >= 1);
        Self {
            time_slices,
            config,
        }
    }

    /// Samples `count` timestamps (unsorted).
    pub fn sample_timestamps<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<Timestamp> {
        let span = self.time_slices as f64;
        // Pick burst centres uniformly.
        let centres: Vec<f64> = (0..self.config.burst_count)
            .map(|_| rng.gen_range(0.0..span))
            .collect();
        let sigma = (self.config.burst_width_fraction * span).max(1.0);

        (0..count)
            .map(|_| {
                let in_burst =
                    !centres.is_empty() && rng.gen_range(0.0..1.0) < self.config.burst_fraction;
                let t = if in_burst {
                    let c = centres[rng.gen_range(0..centres.len())];
                    sample_gaussian(rng, c, sigma)
                } else {
                    rng.gen_range(0.0..span)
                };
                (t.clamp(0.0, span - 1.0)) as Timestamp
            })
            .collect()
    }
}

/// A tiny dependency-free Gaussian sampler (Box–Muller), kept private to this
/// module so the workspace needs no `rand_distr` dependency.
mod rand_distr_free {
    use rand::Rng;

    /// Draws one sample from N(mean, sigma²).
    pub fn sample_gaussian<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + sigma * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn timestamps_within_bounds() {
        let p = ArrivalProcess::new(1000, BurstConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        let ts = p.sample_timestamps(10_000, &mut rng);
        assert_eq!(ts.len(), 10_000);
        assert!(ts.iter().all(|&t| t < 1000));
    }

    #[test]
    fn uniform_config_spreads_mass() {
        let p = ArrivalProcess::new(100, BurstConfig::uniform());
        let mut rng = StdRng::seed_from_u64(1);
        let ts = p.sample_timestamps(50_000, &mut rng);
        let mut counts = vec![0u64; 100];
        for t in ts {
            counts[t as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min < 2.0, "uniform arrivals too lumpy: {min}..{max}");
    }

    #[test]
    fn bursty_config_concentrates_mass() {
        let p = ArrivalProcess::new(
            1000,
            BurstConfig {
                burst_count: 2,
                burst_fraction: 0.95,
                burst_width_fraction: 0.002,
            },
        );
        let mut rng = StdRng::seed_from_u64(2);
        let ts = p.sample_timestamps(50_000, &mut rng);
        let mut counts = vec![0u64; 1000];
        for t in ts {
            counts[t as usize] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top_20: u64 = counts.iter().take(20).sum();
        assert!(
            top_20 > 25_000,
            "expected >half of arrivals in the hottest 2% of slices, got {top_20}"
        );
    }

    #[test]
    fn variance_levels_are_monotone() {
        let mut variances = Vec::new();
        for level in 0..6 {
            let p = ArrivalProcess::new(1024, BurstConfig::variance_level(level));
            let mut rng = StdRng::seed_from_u64(3);
            let ts = p.sample_timestamps(40_000, &mut rng);
            let mut counts = vec![0f64; 1024];
            for t in ts {
                counts[t as usize] += 1.0;
            }
            let mean = counts.iter().sum::<f64>() / counts.len() as f64;
            let var =
                counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / counts.len() as f64;
            variances.push(var);
        }
        assert!(
            variances.last().unwrap() > variances.first().unwrap(),
            "variance levels should increase: {variances:?}"
        );
    }

    #[test]
    fn single_slice_process() {
        let p = ArrivalProcess::new(1, BurstConfig::default());
        let mut rng = StdRng::seed_from_u64(4);
        let ts = p.sample_timestamps(100, &mut rng);
        assert!(ts.iter().all(|&t| t == 0));
    }
}
