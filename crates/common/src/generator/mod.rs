//! Synthetic graph-stream generators.
//!
//! The paper evaluates on three KONECT datasets (Lkml, Wikipedia-talk,
//! Stackoverflow) plus twelve synthetic datasets with controlled skewness
//! and arrival variance (Fig. 14/15). Raw KONECT dumps are not shipped with
//! this repository, so the generators here produce streams with the two
//! properties the evaluation actually depends on (Section I, "irregularity
//! of graph streams"):
//!
//! * **Skewed vertex degrees** — sources and destinations are drawn from a
//!   Zipf (power-law) distribution with a configurable exponent
//!   ([`powerlaw`]), matching Fig. 2.
//! * **Irregular arrivals** — timestamps follow a bursty process mixing a
//!   uniform background with Gaussian "hot interval" bursts of configurable
//!   intensity ([`temporal`]), matching Fig. 3.
//!
//! [`presets`] offers scaled-down stand-ins for the three real datasets and
//! the Fig. 14/15 sweeps; [`queries`] samples query workloads from a
//! generated stream (so that query targets exist in the data, as in the
//! paper's setup).

pub mod powerlaw;
pub mod presets;
pub mod queries;
pub mod temporal;

pub use powerlaw::ZipfSampler;
pub use presets::{DatasetPreset, ExperimentScale};
pub use queries::WorkloadBuilder;
pub use temporal::{ArrivalProcess, BurstConfig};

use crate::edge::{GraphStream, StreamEdge, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a synthetic graph stream.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Name attached to the generated [`GraphStream`].
    pub name: String,
    /// Number of distinct vertices to draw from.
    pub vertices: usize,
    /// Number of stream items (edge occurrences) to generate.
    pub edges: usize,
    /// Power-law exponent of the vertex popularity distribution (the
    /// "skewness" knob of Fig. 14); ≥ 1.0. Larger means more skewed.
    pub skew: f64,
    /// Total number of time slices spanned by the stream.
    pub time_slices: u64,
    /// Burst configuration controlling arrival irregularity (Fig. 15 knob).
    pub bursts: BurstConfig,
    /// Maximum edge weight (weights are uniform in `1..=max_weight`).
    pub max_weight: u64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            name: "synthetic".into(),
            vertices: 10_000,
            edges: 100_000,
            skew: 2.0,
            time_slices: 1 << 16,
            bursts: BurstConfig::default(),
            max_weight: 4,
            seed: 42,
        }
    }
}

/// Generates a synthetic graph stream according to `config`.
///
/// Edges are emitted in non-decreasing timestamp order (streams are
/// time-ordered by construction, as in the real datasets).
pub fn generate_stream(config: &StreamConfig) -> GraphStream {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let src_sampler = ZipfSampler::new(config.vertices, config.skew);
    let dst_sampler = ZipfSampler::new(config.vertices, config.skew);
    let arrivals = ArrivalProcess::new(config.time_slices, config.bursts.clone());
    let mut timestamps = arrivals.sample_timestamps(config.edges, &mut rng);
    timestamps.sort_unstable();

    let mut edges = Vec::with_capacity(config.edges);
    // Random permutations decouple the popularity rank from the vertex id so
    // that hash-based sketches see no accidental structure in the ids.
    let src_perm = permutation(config.vertices, config.seed ^ 0xA5A5_A5A5, &mut rng);
    let dst_perm = permutation(config.vertices, config.seed ^ 0x5A5A_5A5A, &mut rng);

    for &t in &timestamps {
        let s_rank = src_sampler.sample(&mut rng);
        let mut d_rank = dst_sampler.sample(&mut rng);
        let src = src_perm[s_rank] as VertexId;
        // Avoid self loops (the datasets are interaction networks where
        // replying to yourself is rare and irrelevant to the evaluation).
        let mut dst = dst_perm[d_rank] as VertexId;
        while dst == src && config.vertices > 1 {
            d_rank = (d_rank + 1) % config.vertices;
            dst = dst_perm[d_rank] as VertexId;
        }
        let weight = rng.gen_range(1..=config.max_weight.max(1));
        edges.push(StreamEdge::new(src, dst, weight, t));
    }
    GraphStream::from_edges(config.name.clone(), edges)
}

fn permutation(n: usize, salt: u64, rng: &mut StdRng) -> Vec<u64> {
    let _ = salt;
    let mut ids: Vec<u64> = (0..n as u64).collect();
    // Fisher–Yates shuffle.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        ids.swap(i, j);
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{arrival_variance, powerlaw_exponent};

    #[test]
    fn generates_requested_size() {
        let cfg = StreamConfig {
            edges: 5_000,
            vertices: 500,
            ..Default::default()
        };
        let s = generate_stream(&cfg);
        assert_eq!(s.len(), 5_000);
        let stats = s.stats();
        assert!(stats.vertices <= 500);
        assert!(stats.vertices > 50);
    }

    #[test]
    fn timestamps_are_sorted_and_bounded() {
        let cfg = StreamConfig {
            edges: 2_000,
            time_slices: 1024,
            ..Default::default()
        };
        let s = generate_stream(&cfg);
        let mut last = 0;
        for e in s.iter() {
            assert!(e.timestamp >= last);
            assert!(e.timestamp < 1024);
            last = e.timestamp;
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = StreamConfig {
            edges: 1_000,
            seed: 7,
            ..Default::default()
        };
        let a = generate_stream(&cfg);
        let b = generate_stream(&cfg);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn different_seed_differs() {
        let a = generate_stream(&StreamConfig {
            edges: 1_000,
            seed: 1,
            ..Default::default()
        });
        let b = generate_stream(&StreamConfig {
            edges: 1_000,
            seed: 2,
            ..Default::default()
        });
        assert_ne!(a.edges(), b.edges());
    }

    #[test]
    fn higher_skew_gives_lower_fitted_exponent_gap() {
        // Higher configured skew must produce a more concentrated degree
        // distribution (larger max degree share).
        let lo = generate_stream(&StreamConfig {
            edges: 20_000,
            vertices: 2_000,
            skew: 1.5,
            name: "lo".into(),
            ..Default::default()
        });
        let hi = generate_stream(&StreamConfig {
            edges: 20_000,
            vertices: 2_000,
            skew: 3.0,
            name: "hi".into(),
            ..Default::default()
        });
        let max_deg = |s: &GraphStream| *s.out_degrees().values().max().unwrap();
        assert!(max_deg(&hi) > max_deg(&lo));
        assert!(powerlaw_exponent(&lo).is_finite());
    }

    #[test]
    fn burstier_config_has_higher_variance() {
        let calm = generate_stream(&StreamConfig {
            edges: 20_000,
            time_slices: 1 << 10,
            bursts: BurstConfig::uniform(),
            name: "calm".into(),
            ..Default::default()
        });
        let bursty = generate_stream(&StreamConfig {
            edges: 20_000,
            time_slices: 1 << 10,
            bursts: BurstConfig {
                burst_count: 8,
                burst_fraction: 0.9,
                burst_width_fraction: 0.005,
            },
            name: "bursty".into(),
            ..Default::default()
        });
        assert!(arrival_variance(&bursty, 8) > arrival_variance(&calm, 8));
    }

    #[test]
    fn no_self_loops() {
        let s = generate_stream(&StreamConfig {
            edges: 5_000,
            vertices: 50,
            ..Default::default()
        });
        assert!(s.iter().all(|e| e.src != e.dst));
    }
}
