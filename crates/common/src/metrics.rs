//! Evaluation metrics of Section VI-A: average absolute error (AAE), average
//! relative error (ARE), query latency, insertion/deletion throughput, and
//! space cost, plus the dataset characterisations of Fig. 2 (degree skewness)
//! and Fig. 3 (arrival irregularity).

use crate::edge::{GraphStream, Weight};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Accumulates `(true value, estimate)` pairs and reports AAE / ARE as
/// defined by Eq. (17) of the paper.
///
/// For ARE, query pairs whose true value is zero are skipped (the paper's
/// relative-error definition divides by the true value; queries are sampled
/// from existing edges/vertices so true values are positive in practice).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ErrorStats {
    /// Number of (truth, estimate) observations.
    pub count: usize,
    /// Number of observations with non-zero truth (ARE denominator count).
    pub relative_count: usize,
    /// Number of observations where the estimate was below the truth
    /// (must stay zero for one-sided-error summaries).
    pub underestimates: usize,
    sum_abs_err: f64,
    sum_rel_err: f64,
    max_abs_err: f64,
}

impl ErrorStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one query outcome.
    pub fn record(&mut self, truth: Weight, estimate: Weight) {
        self.count += 1;
        let abs = estimate.abs_diff(truth) as f64;
        self.sum_abs_err += abs;
        self.max_abs_err = self.max_abs_err.max(abs);
        if estimate < truth {
            self.underestimates += 1;
        }
        if truth > 0 {
            self.relative_count += 1;
            self.sum_rel_err += abs / truth as f64;
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &ErrorStats) {
        self.count += other.count;
        self.relative_count += other.relative_count;
        self.underestimates += other.underestimates;
        self.sum_abs_err += other.sum_abs_err;
        self.sum_rel_err += other.sum_rel_err;
        self.max_abs_err = self.max_abs_err.max(other.max_abs_err);
    }

    /// Average absolute error over all observations.
    pub fn aae(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_abs_err / self.count as f64
        }
    }

    /// Average relative error over observations with non-zero truth.
    pub fn are(&self) -> f64 {
        if self.relative_count == 0 {
            0.0
        } else {
            self.sum_rel_err / self.relative_count as f64
        }
    }

    /// Largest absolute error observed.
    pub fn max_abs_error(&self) -> f64 {
        self.max_abs_err
    }

    /// Whether every estimate was ≥ the truth (the one-sided-error guarantee
    /// of Section V-D).
    pub fn is_one_sided(&self) -> bool {
        self.underestimates == 0
    }
}

/// Throughput of a bulk operation: items processed per second.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ThroughputStats {
    /// Number of items processed.
    pub items: usize,
    /// Wall-clock time for the whole batch, in seconds.
    pub seconds: f64,
}

impl ThroughputStats {
    /// Builds throughput stats from an item count and an elapsed duration.
    pub fn new(items: usize, elapsed: Duration) -> Self {
        Self {
            items,
            seconds: elapsed.as_secs_f64(),
        }
    }

    /// Items per second (million edges per second is the paper's unit).
    pub fn per_second(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.items as f64 / self.seconds
        }
    }

    /// Million items per second.
    pub fn mops(&self) -> f64 {
        self.per_second() / 1.0e6
    }

    /// Average latency per item, in microseconds.
    pub fn latency_us(&self) -> f64 {
        if self.items == 0 {
            0.0
        } else {
            self.seconds * 1.0e6 / self.items as f64
        }
    }
}

/// Aggregated per-operation latency: mean / p50 / p99 in microseconds.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LatencyStats {
    samples_us: Vec<f64>,
}

impl LatencyStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one operation latency.
    pub fn record(&mut self, d: Duration) {
        self.samples_us.push(d.as_secs_f64() * 1.0e6);
    }

    /// Records a latency expressed in microseconds.
    pub fn record_us(&mut self, us: f64) {
        self.samples_us.push(us);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples_us.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    /// Mean latency in microseconds.
    pub fn mean_us(&self) -> f64 {
        if self.samples_us.is_empty() {
            0.0
        } else {
            self.samples_us.iter().sum::<f64>() / self.samples_us.len() as f64
        }
    }

    /// Latency percentile (0.0–1.0) in microseconds.
    pub fn percentile_us(&self, p: f64) -> f64 {
        if self.samples_us.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples_us.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((sorted.len() - 1) as f64 * p.clamp(0.0, 1.0)).round() as usize;
        sorted[idx]
    }
}

/// One `(degree, #vertices with that degree)` point of the Fig. 2 skewness
/// characterisation, log-binned.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DegreePoint {
    /// Out-degree bucket (lower bound of the log bin).
    pub degree: u64,
    /// Number of vertices whose degree falls in the bin.
    pub vertices: u64,
}

/// Computes the out-degree distribution of a stream, log-binned (Fig. 2).
pub fn degree_distribution(stream: &GraphStream) -> Vec<DegreePoint> {
    let degrees = stream.out_degrees();
    let mut bins: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for &d in degrees.values() {
        let bin = if d == 0 {
            0
        } else {
            1u64 << (63 - d.leading_zeros())
        };
        *bins.entry(bin).or_insert(0) += 1;
    }
    bins.into_iter()
        .map(|(degree, vertices)| DegreePoint { degree, vertices })
        .collect()
}

/// Fits the power-law exponent of the out-degree distribution via the
/// discrete maximum-likelihood estimator `α = 1 + n / Σ ln(d_i / d_min)` with
/// `d_min = 1`. Used to verify that generated streams match the skewness knob
/// (Fig. 14's x-axis).
pub fn powerlaw_exponent(stream: &GraphStream) -> f64 {
    let degrees = stream.out_degrees();
    let mut n = 0usize;
    let mut sum_ln = 0.0f64;
    for &d in degrees.values() {
        if d >= 1 {
            n += 1;
            sum_ln += (d as f64).ln();
        }
    }
    if sum_ln <= 0.0 {
        return f64::INFINITY;
    }
    1.0 + n as f64 / sum_ln
}

/// One `(slice index, #arrivals)` point of the Fig. 3 irregularity
/// characterisation.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ArrivalPoint {
    /// Time-slice index.
    pub slice: u64,
    /// Number of stream items arriving in that slice.
    pub arrivals: u64,
}

/// Computes arrivals per slice of width `slice_width` (Fig. 3), sorted by
/// slice index.
pub fn arrival_histogram(stream: &GraphStream, slice_width: u64) -> Vec<ArrivalPoint> {
    let mut points: Vec<ArrivalPoint> = stream
        .arrivals_per_slice(slice_width)
        .into_iter()
        .map(|(slice, arrivals)| ArrivalPoint { slice, arrivals })
        .collect();
    points.sort_by_key(|p| p.slice);
    points
}

/// Sample variance of the per-slice arrival counts — the "variance" knob of
/// Fig. 15.
pub fn arrival_variance(stream: &GraphStream, slice_width: u64) -> f64 {
    let hist = arrival_histogram(stream, slice_width);
    if hist.len() < 2 {
        return 0.0;
    }
    let mean = hist.iter().map(|p| p.arrivals as f64).sum::<f64>() / hist.len() as f64;
    hist.iter()
        .map(|p| {
            let d = p.arrivals as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / (hist.len() - 1) as f64
}

/// Pretty-prints a byte count as MiB with two decimals (Fig. 19 unit).
pub fn format_mib(bytes: usize) -> String {
    format!("{:.2} MiB", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::StreamEdge;

    #[test]
    fn error_stats_aae_are() {
        let mut s = ErrorStats::new();
        s.record(10, 12); // abs 2, rel 0.2
        s.record(5, 5); // abs 0
        s.record(0, 3); // abs 3, no rel
        assert_eq!(s.count, 3);
        assert!((s.aae() - 5.0 / 3.0).abs() < 1e-9);
        assert!((s.are() - 0.1).abs() < 1e-9);
        assert!(s.is_one_sided());
        assert_eq!(s.max_abs_error(), 3.0);
    }

    #[test]
    fn error_stats_detects_underestimates() {
        let mut s = ErrorStats::new();
        s.record(10, 8);
        assert!(!s.is_one_sided());
        assert_eq!(s.underestimates, 1);
    }

    #[test]
    fn error_stats_merge() {
        let mut a = ErrorStats::new();
        a.record(10, 11);
        let mut b = ErrorStats::new();
        b.record(10, 14);
        a.merge(&b);
        assert_eq!(a.count, 2);
        assert!((a.aae() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn throughput_math() {
        let t = ThroughputStats::new(2_000_000, Duration::from_secs(2));
        assert!((t.per_second() - 1.0e6).abs() < 1.0);
        assert!((t.mops() - 1.0).abs() < 1e-9);
        assert!((t.latency_us() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn latency_percentiles() {
        let mut l = LatencyStats::new();
        for i in 1..=100 {
            l.record_us(i as f64);
        }
        assert_eq!(l.len(), 100);
        assert!((l.mean_us() - 50.5).abs() < 1e-9);
        assert!((l.percentile_us(0.5) - 50.0).abs() <= 1.0);
        assert!((l.percentile_us(0.99) - 99.0).abs() <= 1.0);
        assert!(!l.is_empty());
    }

    fn skewed_stream() -> GraphStream {
        // Vertex 0 has degree 64, others degree 1.
        let mut edges = Vec::new();
        for i in 0..64u64 {
            edges.push(StreamEdge::new(0, i + 1, 1, i));
        }
        for v in 1..=32u64 {
            edges.push(StreamEdge::new(v, 0, 1, 64 + v));
        }
        GraphStream::from_edges("skewed", edges)
    }

    #[test]
    fn degree_distribution_bins() {
        let dist = degree_distribution(&skewed_stream());
        // Degree-1 bin should hold 32 vertices; degree-64 bin one vertex.
        let one = dist.iter().find(|p| p.degree == 1).unwrap();
        assert_eq!(one.vertices, 32);
        let big = dist.iter().find(|p| p.degree == 64).unwrap();
        assert_eq!(big.vertices, 1);
    }

    #[test]
    fn powerlaw_exponent_is_finite_for_skewed_streams() {
        let alpha = powerlaw_exponent(&skewed_stream());
        assert!(alpha.is_finite());
        assert!(alpha > 1.0);
    }

    #[test]
    fn arrival_histogram_and_variance() {
        let stream = GraphStream::from_edges(
            "bursty",
            vec![
                StreamEdge::new(1, 2, 1, 0),
                StreamEdge::new(1, 2, 1, 0),
                StreamEdge::new(1, 2, 1, 1),
                StreamEdge::new(1, 2, 1, 10),
            ],
        );
        let hist = arrival_histogram(&stream, 1);
        assert_eq!(hist[0].arrivals, 2);
        assert!(arrival_variance(&stream, 1) > 0.0);
    }

    #[test]
    fn mib_formatting() {
        assert_eq!(format_mib(1024 * 1024), "1.00 MiB");
    }
}
