//! Binary encoding substrate for persistence: little-endian primitive
//! encode/decode over `std::io`, length-prefixed sections, and a running
//! FNV-1a checksum.
//!
//! The build environment has no serialisation dependency (the workspace's
//! `serde` is a no-op shim), so snapshot files are written with this small,
//! fully deterministic codec instead. Design points:
//!
//! * **Little-endian, fixed-width integers.** Every primitive is written in
//!   LE byte order at its natural width, so a snapshot is byte-identical
//!   across platforms and re-encoding an unchanged structure reproduces the
//!   file bit for bit (the property the snapshot round-trip tests pin down).
//! * **Length-prefixed sections.** Aggregates are framed as
//!   `tag: u16 | len: u64 | payload` via [`Encoder::section`] /
//!   [`Decoder::section_header`]. A reader can verify it consumed exactly
//!   `len` bytes ([`Decoder::expect_section_end`]) and a future format
//!   version can skip unknown trailing sections without understanding them.
//! * **Running FNV-1a checksum.** Both sides fold every byte into a 64-bit
//!   FNV-1a state ([`Encoder::checksum`] / [`Decoder::checksum`]); writers
//!   finish a file with [`Encoder::finish_with_checksum`] and readers verify
//!   with [`Decoder::verify_checksum`], so truncation and bit corruption are
//!   detected before any partially decoded structure is used.
//!
//! The codec itself is version-agnostic: file magic and version numbers are
//! the caller's concern (see the `snapshot` module of the `higgs` crate for
//! the format built on top of this layer).

use std::fmt;
use std::io::{Read, Write};

/// Offset basis of 64-bit FNV-1a.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// Prime of 64-bit FNV-1a.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into an FNV-1a state (checksum of a whole buffer when
/// started from the default state).
#[inline]
pub fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut hash = state;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The initial FNV-1a state both codec halves start from.
#[inline]
pub fn fnv1a_init() -> u64 {
    FNV_OFFSET
}

/// Why an encode or decode operation failed.
#[derive(Debug)]
pub enum CodecError {
    /// The underlying reader/writer failed.
    Io(std::io::Error),
    /// The reader ran out of bytes mid-value (a truncated document).
    UnexpectedEof,
    /// A decoded value violates a structural constraint; the message names
    /// the field and the violated bound.
    Invalid(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "I/O error: {e}"),
            CodecError::UnexpectedEof => write!(f, "unexpected end of input (truncated document)"),
            CodecError::Invalid(msg) => write!(f, "invalid encoding: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            CodecError::UnexpectedEof
        } else {
            CodecError::Io(e)
        }
    }
}

/// Checksumming little-endian writer over any [`Write`] sink.
#[derive(Debug)]
pub struct Encoder<W: Write> {
    sink: W,
    checksum: u64,
    written: u64,
}

impl<W: Write> Encoder<W> {
    /// Wraps `sink`, starting a fresh checksum.
    pub fn new(sink: W) -> Self {
        Self {
            sink,
            checksum: fnv1a_init(),
            written: 0,
        }
    }

    /// The running FNV-1a checksum over every byte written so far.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Number of bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.written
    }

    /// Writes raw bytes, folding them into the checksum.
    pub fn put_bytes(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        self.sink.write_all(bytes)?;
        self.checksum = fnv1a(self.checksum, bytes);
        self.written += bytes.len() as u64;
        Ok(())
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) -> Result<(), CodecError> {
        self.put_bytes(&[v])
    }

    /// Writes a `u16` in little-endian order.
    pub fn put_u16(&mut self, v: u16) -> Result<(), CodecError> {
        self.put_bytes(&v.to_le_bytes())
    }

    /// Writes a `u32` in little-endian order.
    pub fn put_u32(&mut self, v: u32) -> Result<(), CodecError> {
        self.put_bytes(&v.to_le_bytes())
    }

    /// Writes a `u64` in little-endian order.
    pub fn put_u64(&mut self, v: u64) -> Result<(), CodecError> {
        self.put_bytes(&v.to_le_bytes())
    }

    /// Writes an `i64` in little-endian two's-complement order.
    pub fn put_i64(&mut self, v: i64) -> Result<(), CodecError> {
        self.put_bytes(&v.to_le_bytes())
    }

    /// Writes a `bool` as one byte (`0` / `1`).
    pub fn put_bool(&mut self, v: bool) -> Result<(), CodecError> {
        self.put_u8(u8::from(v))
    }

    /// Writes a length-prefixed section: `tag | len | payload`. The payload
    /// is a fully pre-encoded byte buffer (build it with an in-memory
    /// [`Encoder`] over a `Vec<u8>`), so the length prefix is always exact.
    pub fn section(&mut self, tag: u16, payload: &[u8]) -> Result<(), CodecError> {
        self.put_u16(tag)?;
        self.put_u64(payload.len() as u64)?;
        self.put_bytes(payload)
    }

    /// Appends the running checksum as the final `u64` of the document and
    /// returns it. The checksum field itself is (necessarily) not covered by
    /// the checksum; [`Decoder::verify_checksum`] mirrors that.
    pub fn finish_with_checksum(&mut self) -> Result<u64, CodecError> {
        let checksum = self.checksum;
        self.sink.write_all(&checksum.to_le_bytes())?;
        self.written += 8;
        Ok(checksum)
    }

    /// Flushes and returns the underlying sink.
    pub fn into_inner(mut self) -> Result<W, CodecError> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Checksumming little-endian reader over any [`Read`] source.
#[derive(Debug)]
pub struct Decoder<R: Read> {
    source: R,
    checksum: u64,
    read: u64,
}

impl<R: Read> Decoder<R> {
    /// Wraps `source`, starting a fresh checksum.
    pub fn new(source: R) -> Self {
        Self {
            source,
            checksum: fnv1a_init(),
            read: 0,
        }
    }

    /// The running FNV-1a checksum over every byte read so far.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Number of bytes read so far.
    pub fn bytes_read(&self) -> u64 {
        self.read
    }

    /// Reads exactly `buf.len()` bytes, folding them into the checksum.
    pub fn get_bytes(&mut self, buf: &mut [u8]) -> Result<(), CodecError> {
        self.source.read_exact(buf)?;
        self.checksum = fnv1a(self.checksum, buf);
        self.read += buf.len() as u64;
        Ok(())
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        let mut buf = [0u8; 1];
        self.get_bytes(&mut buf)?;
        Ok(buf[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        let mut buf = [0u8; 2];
        self.get_bytes(&mut buf)?;
        Ok(u16::from_le_bytes(buf))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let mut buf = [0u8; 4];
        self.get_bytes(&mut buf)?;
        Ok(u32::from_le_bytes(buf))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let mut buf = [0u8; 8];
        self.get_bytes(&mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Reads a little-endian two's-complement `i64`.
    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        let mut buf = [0u8; 8];
        self.get_bytes(&mut buf)?;
        Ok(i64::from_le_bytes(buf))
    }

    /// Reads a `bool` byte, rejecting values other than `0` / `1` (any other
    /// value means the stream is corrupt or misaligned).
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::Invalid(format!(
                "bool byte must be 0 or 1, got {other}"
            ))),
        }
    }

    /// Reads a `usize`-bounded length field: a `u64` that must not exceed
    /// `limit` (guards against corrupt lengths driving huge allocations).
    pub fn get_len(&mut self, limit: u64, what: &str) -> Result<usize, CodecError> {
        let len = self.get_u64()?;
        if len > limit {
            return Err(CodecError::Invalid(format!(
                "{what} length {len} exceeds limit {limit}"
            )));
        }
        Ok(len as usize)
    }

    /// Reads a section header, returning `(tag, payload length)`. Callers
    /// decode the payload with the same decoder (the checksum keeps running)
    /// and then check consumption with [`expect_section_end`](Self::expect_section_end).
    pub fn section_header(&mut self) -> Result<(u16, u64), CodecError> {
        let tag = self.get_u16()?;
        let len = self.get_u64()?;
        Ok((tag, len))
    }

    /// Verifies that exactly `len` payload bytes were consumed since
    /// `start` (= [`bytes_read`](Self::bytes_read) right after the header).
    pub fn expect_section_end(&self, start: u64, len: u64, tag: u16) -> Result<(), CodecError> {
        let consumed = self.read - start;
        if consumed != len {
            return Err(CodecError::Invalid(format!(
                "section {tag:#06x} declared {len} payload bytes but {consumed} were consumed"
            )));
        }
        Ok(())
    }

    /// Reads the trailing checksum `u64` (not folded into the running state)
    /// and compares it with the state accumulated so far. Returns the stored
    /// checksum on success.
    pub fn verify_checksum(&mut self) -> Result<u64, CodecError> {
        let expected = self.checksum;
        let mut buf = [0u8; 8];
        self.source.read_exact(&mut buf)?;
        self.read += 8;
        let stored = u64::from_le_bytes(buf);
        if stored != expected {
            return Err(CodecError::Invalid(format!(
                "checksum mismatch: stored {stored:#018x}, computed {expected:#018x}"
            )));
        }
        Ok(stored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_little_endian() {
        let mut buf = Vec::new();
        let mut enc = Encoder::new(&mut buf);
        enc.put_u8(0xAB).unwrap();
        enc.put_u16(0x1234).unwrap();
        enc.put_u32(0xDEAD_BEEF).unwrap();
        enc.put_u64(0x0123_4567_89AB_CDEF).unwrap();
        enc.put_i64(-42).unwrap();
        enc.put_bool(true).unwrap();
        enc.put_bool(false).unwrap();
        let written = enc.bytes_written();
        let _ = enc;
        assert_eq!(written, buf.len() as u64);
        // LE spot check: the u16 bytes follow the u8 lowest-byte-first.
        assert_eq!(&buf[..3], &[0xAB, 0x34, 0x12]);

        let mut dec = Decoder::new(buf.as_slice());
        assert_eq!(dec.get_u8().unwrap(), 0xAB);
        assert_eq!(dec.get_u16().unwrap(), 0x1234);
        assert_eq!(dec.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(dec.get_i64().unwrap(), -42);
        assert!(dec.get_bool().unwrap());
        assert!(!dec.get_bool().unwrap());
        assert_eq!(dec.bytes_read(), written);
    }

    #[test]
    fn encoder_and_decoder_checksums_agree() {
        let mut buf = Vec::new();
        let mut enc = Encoder::new(&mut buf);
        enc.put_u64(7).unwrap();
        enc.put_bytes(b"higgs").unwrap();
        let enc_sum = enc.checksum();
        enc.finish_with_checksum().unwrap();
        let _ = enc;

        let mut dec = Decoder::new(buf.as_slice());
        dec.get_u64().unwrap();
        let mut name = [0u8; 5];
        dec.get_bytes(&mut name).unwrap();
        assert_eq!(dec.checksum(), enc_sum);
        assert_eq!(dec.verify_checksum().unwrap(), enc_sum);
    }

    #[test]
    fn corrupted_byte_fails_checksum_verification() {
        let mut buf = Vec::new();
        let mut enc = Encoder::new(&mut buf);
        enc.put_u64(1234).unwrap();
        enc.finish_with_checksum().unwrap();
        let _ = enc;
        buf[3] ^= 0x40; // flip one payload bit

        let mut dec = Decoder::new(buf.as_slice());
        dec.get_u64().unwrap();
        let err = dec.verify_checksum().unwrap_err();
        assert!(matches!(err, CodecError::Invalid(_)), "{err}");
        assert!(err.to_string().contains("checksum mismatch"));
    }

    #[test]
    fn truncated_input_reports_unexpected_eof() {
        let mut buf = Vec::new();
        let mut enc = Encoder::new(&mut buf);
        enc.put_u64(1).unwrap();
        let _ = enc;
        buf.truncate(5);
        let mut dec = Decoder::new(buf.as_slice());
        assert!(matches!(
            dec.get_u64().unwrap_err(),
            CodecError::UnexpectedEof
        ));
    }

    #[test]
    fn sections_frame_payloads_exactly() {
        let mut payload = Vec::new();
        let mut inner = Encoder::new(&mut payload);
        inner.put_u32(99).unwrap();
        inner.put_bool(true).unwrap();
        let _ = inner;

        let mut buf = Vec::new();
        let mut enc = Encoder::new(&mut buf);
        enc.section(0x0042, &payload).unwrap();
        let _ = enc;

        let mut dec = Decoder::new(buf.as_slice());
        let (tag, len) = dec.section_header().unwrap();
        assert_eq!(tag, 0x0042);
        assert_eq!(len, 5);
        let start = dec.bytes_read();
        assert_eq!(dec.get_u32().unwrap(), 99);
        assert!(dec.get_bool().unwrap());
        dec.expect_section_end(start, len, tag).unwrap();
    }

    #[test]
    fn section_length_mismatch_is_detected() {
        let mut buf = Vec::new();
        let mut enc = Encoder::new(&mut buf);
        enc.section(7, &[1, 2, 3, 4]).unwrap();
        let _ = enc;
        let mut dec = Decoder::new(buf.as_slice());
        let (tag, len) = dec.section_header().unwrap();
        let start = dec.bytes_read();
        let _ = dec.get_u8().unwrap(); // consume only 1 of 4 payload bytes
        let err = dec.expect_section_end(start, len, tag).unwrap_err();
        assert!(err.to_string().contains("declared 4"));
    }

    #[test]
    fn bounded_lengths_reject_huge_values() {
        let mut buf = Vec::new();
        let mut enc = Encoder::new(&mut buf);
        enc.put_u64(u64::MAX).unwrap();
        let _ = enc;
        let mut dec = Decoder::new(buf.as_slice());
        let err = dec.get_len(1 << 20, "leaf count").unwrap_err();
        assert!(err.to_string().contains("leaf count"));
    }

    #[test]
    fn bool_bytes_other_than_zero_or_one_are_invalid() {
        let mut dec = Decoder::new([7u8].as_slice());
        assert!(matches!(
            dec.get_bool().unwrap_err(),
            CodecError::Invalid(_)
        ));
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(fnv1a_init(), b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(fnv1a_init(), b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(fnv1a_init(), b"foobar"), 0x8594_4171_f739_67e8);
    }
}
