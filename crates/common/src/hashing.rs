//! Hashing substrate shared by every sketch in the reproduction.
//!
//! Three pieces:
//!
//! 1. [`vertex_hash`]: a 64-bit finaliser (SplitMix64 style) that turns a
//!    vertex id into a well-mixed hash `H(v)`, optionally salted with a seed
//!    so that structures needing several independent hash functions (TCM,
//!    Count-Min) can derive them.
//! 2. [`FingerprintLayout`]: the fingerprint / address split of Eq. (1) in
//!    the paper, `f(v) = H(v) & (2^{F1} − 1)` and
//!    `h(v) = (H(v) >> F1) mod d1`, plus the level-`l` re-partitioning used
//!    by HIGGS aggregation (Algorithm 2): moving the top `R·(l−1)` fingerprint
//!    bits into the address.
//! 3. [`AddressSequence`]: the linear-congruential address sequences used by
//!    the Multiple Mapping Buckets optimisation (Section IV-C) and by GSS
//!    square hashing. The generator has full period modulo a power of two and
//!    is invertible, so an entry that records its index pair `(i, j)` can be
//!    mapped back to its base address during aggregation.

use serde::{Deserialize, Serialize};

/// Mixes a 64-bit value into a well-distributed 64-bit hash (SplitMix64
/// finaliser). Deterministic across platforms and runs.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash of a vertex id under hash-function seed `seed`. Different seeds give
/// (empirically) independent hash functions; seed 0 is the canonical `H(·)`
/// used by HIGGS.
#[inline]
pub fn vertex_hash(v: u64, seed: u64) -> u64 {
    splitmix64(v ^ splitmix64(seed.wrapping_mul(0xA24B_AED4_963E_E407)))
}

/// Hash of an ordered `(src, dst)` pair under `seed`. Used by sketches that
/// key buckets by whole edges (e.g. Horae's time-prefixed edge keys).
#[inline]
pub fn edge_hash(src: u64, dst: u64, seed: u64) -> u64 {
    let a = vertex_hash(src, seed);
    let b = vertex_hash(dst, seed ^ 0x5851_F42D_4C95_7F2D);
    splitmix64(a ^ b.rotate_left(23))
}

/// Seed of the shard-routing hash function. Distinct from the canonical
/// summary seed 0 so that the shard a vertex lands on is independent of its
/// in-matrix fingerprint/address decomposition (otherwise every vertex of a
/// shard would share address bits and skew its matrices).
pub const SHARD_SEED: u64 = 0x7368_6172_645F_6869;

/// The shard (in `0..num_shards`) that owns vertex `v` when a summary is
/// partitioned by source vertex. Deterministic across platforms and runs;
/// every component that routes by source — ingest, deletion, query serving —
/// must use this one function so they always agree.
#[inline]
pub fn shard_of(v: u64, num_shards: usize) -> usize {
    debug_assert!(num_shards > 0, "shard count must be positive");
    if num_shards <= 1 {
        return 0;
    }
    (vertex_hash(v, SHARD_SEED) % num_shards as u64) as usize
}

/// A vertex hash decomposed into fingerprint and address at a given layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashedVertex {
    /// Full 64-bit hash `H(v)`.
    pub hash: u64,
    /// Fingerprint `f(v)` at the layout's layer.
    pub fingerprint: u64,
    /// Row/column address `h(v)` at the layout's layer.
    pub address: u64,
}

/// The fingerprint/address bit layout of Eq. (1), parameterised by the leaf
/// fingerprint length `F1`, the leaf matrix side `d1` (power of two), and the
/// per-level fingerprint reduction `R` (so that `θ = 4^R`).
///
/// Layer 1 is the leaf layer. At layer `l`, the fingerprint keeps
/// `F_l = F1 − (l−1)·R` bits and the matrix side is `d_l = d1 · 2^{(l−1)R}`;
/// the bits removed from the fingerprint become the low bits of the address,
/// which is exactly the shift-based aggregation of Algorithm 2 / Fig. 8.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FingerprintLayout {
    /// Leaf-layer fingerprint length in bits (`F1`).
    pub f1_bits: u32,
    /// Leaf-layer matrix side (`d1`); must be a power of two.
    pub d1: u64,
    /// Number of fingerprint bits converted into address bits per level
    /// climbed (`R`).
    pub r_bits: u32,
}

impl FingerprintLayout {
    /// Creates a layout, validating that `d1` is a power of two and that the
    /// bit budget is sane.
    pub fn new(f1_bits: u32, d1: u64, r_bits: u32) -> Self {
        assert!(d1.is_power_of_two(), "d1 must be a power of two, got {d1}");
        assert!(f1_bits > 0 && f1_bits < 48, "F1 must be in (0, 48)");
        assert!((1..=8).contains(&r_bits), "R must be in [1, 8]");
        Self {
            f1_bits,
            d1,
            r_bits,
        }
    }

    /// The branching factor implied by `R`: `θ = 4^R`.
    pub fn theta(&self) -> usize {
        1usize << (2 * self.r_bits)
    }

    /// Fingerprint length at layer `l` (1-based): `F_l = F1 − (l−1)·R`,
    /// clamped at zero.
    pub fn fingerprint_bits(&self, layer: u32) -> u32 {
        self.f1_bits
            .saturating_sub(self.r_bits * layer.saturating_sub(1))
    }

    /// Matrix side at layer `l` (1-based): `d_l = d1 · 2^{(l−1)R}`.
    pub fn matrix_side(&self, layer: u32) -> u64 {
        self.d1 << (self.r_bits * layer.saturating_sub(1))
    }

    /// Maximum layer at which a non-empty fingerprint remains.
    pub fn max_layer_with_fingerprint(&self) -> u32 {
        self.f1_bits / self.r_bits + 1
    }

    /// Splits a raw 64-bit hash into `(fingerprint, address)` at layer `l`
    /// following Eq. (1) and the Algorithm-2 re-partitioning.
    pub fn split(&self, hash: u64, layer: u32) -> HashedVertex {
        let fp_bits = self.fingerprint_bits(layer);
        let side = self.matrix_side(layer);
        let fingerprint = if fp_bits == 0 {
            0
        } else {
            hash & ((1u64 << fp_bits) - 1)
        };
        let address = (hash >> fp_bits) % side;
        HashedVertex {
            hash,
            fingerprint,
            address,
        }
    }

    /// Splits a vertex id at layer `l` (hashing with the canonical seed 0).
    pub fn split_vertex(&self, v: u64, layer: u32) -> HashedVertex {
        self.split(vertex_hash(v, 0), layer)
    }

    /// Lifts a layer-`l` `(fingerprint, address)` pair one layer up,
    /// reproducing the shift operation of Algorithm 2: the top `R` bits of the
    /// fingerprint become the low bits of the address.
    ///
    /// Returns `(fingerprint_{l+1}, address_{l+1})`.
    pub fn lift(&self, fingerprint: u64, address: u64, from_layer: u32) -> (u64, u64) {
        let fp_bits = self.fingerprint_bits(from_layer);
        let shift = self.r_bits.min(fp_bits);
        let keep = fp_bits - shift;
        let high = if shift == 0 { 0 } else { fingerprint >> keep };
        let new_fp = if keep == 0 {
            0
        } else {
            fingerprint & ((1u64 << keep) - 1)
        };
        let new_addr = ((address << shift) | high) % self.matrix_side(from_layer + 1);
        (new_fp, new_addr)
    }
}

/// Linear-congruential address sequence `h_1, h_2, …, h_r` modulo a
/// power-of-two matrix side, used by Multiple Mapping Buckets (Section IV-C)
/// and GSS square hashing.
///
/// With modulus `m = 2^k`, multiplier `a ≡ 1 (mod 4)` and odd increment `c`,
/// the LCG has full period and is invertible, so index pairs recorded in
/// entries can be mapped back to base addresses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressSequence {
    side: u64,
    multiplier: u64,
    increment: u64,
}

impl AddressSequence {
    /// Multiplier used by the sequence (Hull–Dobell compliant for any
    /// power-of-two modulus).
    const A: u64 = 6_364_136_223_846_793_005; // ≡ 1 (mod 4)
    /// Increment (odd).
    const C: u64 = 1_442_695_040_888_963_407;

    /// Creates a sequence over matrix side `side` (power of two).
    pub fn new(side: u64) -> Self {
        assert!(side.is_power_of_two(), "side must be a power of two");
        Self {
            side,
            multiplier: Self::A,
            increment: Self::C,
        }
    }

    /// The `i`-th address (0-based) in the sequence starting from `base`.
    /// Index 0 is `base` itself.
    ///
    /// O(`index`) per call: fine for a one-off lookup, but probing loops that
    /// need the first `r` addresses should use [`fill_sequence`](Self::fill_sequence)
    /// or [`iter`](Self::iter), which walk the LCG iteratively (O(r) total
    /// instead of O(r²)).
    pub fn address(&self, base: u64, index: u32) -> u64 {
        let mut x = base % self.side;
        for _ in 0..index {
            x = self.step(x);
        }
        x
    }

    /// Writes the first `out.len()` addresses of the sequence starting at
    /// `base` into `out` (index 0 is `base` itself), stepping the LCG once
    /// per slot. This is the batched form used by every MMB/square-hashing
    /// probe loop: one call per operation replaces per-index
    /// [`address`](Self::address) calls.
    #[inline]
    pub fn fill_sequence(&self, base: u64, out: &mut [u64]) {
        let mut x = base % self.side;
        for slot in out.iter_mut() {
            *slot = x;
            x = self.step(x);
        }
    }

    /// An infinite iterator over the sequence starting at `base` (index 0 is
    /// `base` itself). Each `next` is one LCG step.
    pub fn iter(&self, base: u64) -> AddressIter {
        AddressIter {
            seq: *self,
            next: base % self.side,
        }
    }

    /// One LCG step modulo the side.
    #[inline]
    pub fn step(&self, x: u64) -> u64 {
        (x.wrapping_mul(self.multiplier).wrapping_add(self.increment)) % self.side
    }

    /// Inverse of [`step`](Self::step) modulo the power-of-two side.
    pub fn step_back(&self, y: u64) -> u64 {
        // Modular inverse of an odd multiplier modulo 2^64 via Newton
        // iteration, then reduce modulo side.
        let inv = mod_inverse_pow2(self.multiplier);
        (y.wrapping_sub(self.increment).wrapping_mul(inv)) % self.side
    }

    /// Recovers the base address given the stored address and the recorded
    /// sequence index (inverts `index` steps).
    pub fn base_of(&self, stored: u64, index: u32) -> u64 {
        let mut x = stored % self.side;
        for _ in 0..index {
            x = self.step_back(x);
        }
        x
    }

    /// The first `count` addresses starting at `base` (index 0..count).
    pub fn sequence(&self, base: u64, count: u32) -> Vec<u64> {
        let mut out = vec![0u64; count as usize];
        self.fill_sequence(base, &mut out);
        out
    }
}

/// Infinite iterator over an LCG address sequence; see
/// [`AddressSequence::iter`].
#[derive(Clone, Copy, Debug)]
pub struct AddressIter {
    seq: AddressSequence,
    next: u64,
}

impl Iterator for AddressIter {
    type Item = u64;

    #[inline]
    fn next(&mut self) -> Option<u64> {
        let current = self.next;
        self.next = self.seq.step(current);
        Some(current)
    }
}

/// Convenience wrapper: the first `count` LCG addresses for `base` over a
/// power-of-two `side`.
pub fn lcg_sequence(base: u64, side: u64, count: u32) -> Vec<u64> {
    AddressSequence::new(side).sequence(base, count)
}

/// Modular inverse of an odd `a` modulo 2^64 (Newton / Hensel lifting).
fn mod_inverse_pow2(a: u64) -> u64 {
    debug_assert!(a % 2 == 1);
    let mut x: u64 = a; // correct to 3 bits
    for _ in 0..5 {
        x = x.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(x)));
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        // Adjacent inputs should differ in many bits.
        let diff = (splitmix64(100) ^ splitmix64(101)).count_ones();
        assert!(diff > 16, "poor avalanche: {diff} differing bits");
    }

    #[test]
    fn vertex_hash_seed_independence() {
        let h0 = vertex_hash(42, 0);
        let h1 = vertex_hash(42, 1);
        assert_ne!(h0, h1);
        assert_eq!(vertex_hash(42, 0), h0);
    }

    #[test]
    fn edge_hash_is_order_sensitive() {
        assert_ne!(edge_hash(1, 2, 0), edge_hash(2, 1, 0));
    }

    #[test]
    fn shard_of_is_stable_in_range_and_balanced() {
        for v in 0..1_000u64 {
            assert_eq!(shard_of(v, 1), 0);
            for shards in [2usize, 4, 8] {
                let s = shard_of(v, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(v, shards), "routing must be deterministic");
            }
        }
        // Rough balance over a contiguous id range: no shard may be starved.
        let mut counts = [0usize; 4];
        for v in 0..4_000u64 {
            counts[shard_of(v, 4)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (700..=1_300).contains(&c),
                "shard {s} holds {c} of 4000 vertices"
            );
        }
    }

    #[test]
    fn shard_routing_is_independent_of_addressing_hash() {
        // The shard id must not be a function of the layer-1 address bits:
        // vertices sharing an address must still spread over shards.
        let layout = FingerprintLayout::new(19, 16, 1);
        let mut shards_seen = std::collections::HashSet::new();
        for v in 0..4_000u64 {
            if layout.split_vertex(v, 1).address == 3 {
                shards_seen.insert(shard_of(v, 4));
            }
        }
        assert_eq!(shards_seen.len(), 4);
    }

    #[test]
    fn layout_split_matches_formula_1() {
        let layout = FingerprintLayout::new(19, 16, 1);
        let h = vertex_hash(7, 0);
        let sv = layout.split(h, 1);
        assert_eq!(sv.fingerprint, h & ((1 << 19) - 1));
        assert_eq!(sv.address, (h >> 19) % 16);
    }

    #[test]
    fn layout_layer_progression() {
        let layout = FingerprintLayout::new(19, 16, 1);
        assert_eq!(layout.theta(), 4);
        assert_eq!(layout.fingerprint_bits(1), 19);
        assert_eq!(layout.fingerprint_bits(2), 18);
        assert_eq!(layout.fingerprint_bits(5), 15);
        assert_eq!(layout.matrix_side(1), 16);
        assert_eq!(layout.matrix_side(2), 32);
        assert_eq!(layout.matrix_side(3), 64);
    }

    #[test]
    fn lift_matches_direct_split() {
        // Lifting the layer-l decomposition must equal the direct layer-(l+1)
        // decomposition of the same hash — this is what makes Algorithm 2
        // error-free.
        let layout = FingerprintLayout::new(19, 16, 1);
        for v in 0..2000u64 {
            let h = vertex_hash(v, 0);
            for layer in 1..6u32 {
                let cur = layout.split(h, layer);
                let (fp, addr) = layout.lift(cur.fingerprint, cur.address, layer);
                let up = layout.split(h, layer + 1);
                assert_eq!(fp, up.fingerprint, "fingerprint mismatch v={v} l={layer}");
                assert_eq!(addr, up.address, "address mismatch v={v} l={layer}");
            }
        }
    }

    #[test]
    fn lift_paper_example_figure_8() {
        // Fig. 8: d1 = 2, F1 = 3, R = 1. Vertex bits 0101 → address 0,
        // fingerprint 101. After aggregation address 01, fingerprint 01.
        let layout = FingerprintLayout::new(3, 2, 1);
        let (fp, addr) = layout.lift(0b101, 0b0, 1);
        assert_eq!(addr, 0b01);
        assert_eq!(fp, 0b01);
        let (fp2, addr2) = layout.lift(0b110, 0b0, 1);
        assert_eq!(addr2, 0b01);
        assert_eq!(fp2, 0b10);
    }

    #[test]
    fn lcg_full_period_small_modulus() {
        let seq = AddressSequence::new(16);
        let visited: std::collections::HashSet<u64> = seq.sequence(3, 16).into_iter().collect();
        assert_eq!(visited.len(), 16, "LCG must have full period mod 16");
    }

    #[test]
    fn lcg_is_invertible() {
        let seq = AddressSequence::new(64);
        for base in 0..64u64 {
            for idx in 0..8u32 {
                let stored = seq.address(base, idx);
                assert_eq!(seq.base_of(stored, idx), base);
            }
        }
    }

    #[test]
    fn fill_sequence_matches_per_index_address() {
        let seq = AddressSequence::new(32);
        for base in [0u64, 5, 31, 1000] {
            let mut buf = [0u64; 12];
            seq.fill_sequence(base, &mut buf);
            for (i, &addr) in buf.iter().enumerate() {
                assert_eq!(addr, seq.address(base, i as u32), "base {base} index {i}");
            }
        }
    }

    #[test]
    fn iterator_matches_per_index_address() {
        let seq = AddressSequence::new(16);
        for (i, addr) in seq.iter(7).take(20).enumerate() {
            assert_eq!(addr, seq.address(7, i as u32));
        }
    }

    #[test]
    fn fill_sequence_reduces_base_modulo_side() {
        let seq = AddressSequence::new(8);
        let mut a = [0u64; 4];
        let mut b = [0u64; 4];
        seq.fill_sequence(3, &mut a);
        seq.fill_sequence(3 + 8 * 5, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn lcg_sequences_differ_for_different_bases() {
        let a = lcg_sequence(1, 16, 4);
        let b = lcg_sequence(2, 16, 4);
        assert_ne!(a, b);
        assert_eq!(a[0], 1);
        assert_eq!(b[0], 2);
    }

    #[test]
    fn mod_inverse_is_correct() {
        for a in [1u64, 3, 5, 6_364_136_223_846_793_005, u64::MAX] {
            if a % 2 == 1 {
                assert_eq!(a.wrapping_mul(mod_inverse_pow2(a)), 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn layout_rejects_non_power_of_two_side() {
        let _ = FingerprintLayout::new(19, 12, 1);
    }
}
