//! `higgs-lint`: a from-scratch static-analysis pass for this workspace.
//!
//! The build environment has no registry access, so the usual ecosystem
//! tooling (`syn`-based lints, Miri, loom, cargo-geiger) is unavailable; this
//! crate implements the conventions the codebase relies on as a small,
//! self-contained scanner in the same spirit as `crates/shims/`. Run it with:
//!
//! ```text
//! cargo run -p xtask -- lint [--json <path>]
//! ```
//!
//! # Static analysis
//!
//! The `lint` subcommand walks every `.rs` file in the workspace (excluding
//! `target/` and the lint's own fixture corpus) and enforces seven rules:
//!
//! | rule | meaning |
//! |------|---------|
//! | `unsafe-safety-comment` | every `unsafe` block/fn/impl is immediately preceded by a non-empty `// SAFETY:` rationale (an `unsafe fn`'s doc `# Safety` section also counts) |
//! | `atomic-ordering-comment` | every `Ordering::*` use outside `crates/shims/` carries an `// ORDERING:` justification on or directly above the line, or matches a config allowlist entry |
//! | `hot-path-panic` | `unwrap()` / `expect(` / `panic!` / `unreachable!` / `todo!` / `unimplemented!` / slice-indexing `x[..]` are forbidden in the declared hot-path modules outside `#[cfg(test)]` code and `debug_assert!` spans |
//! | `feature-gate-pairing` | every `#[cfg(feature = "X")]`-gated item in library code has a `not(feature = "X")` twin (or `cfg!(feature = "X")` runtime dispatch) in the same file, so a default build never loses a symbol |
//! | `bench-baseline-sync` | every Criterion bench id covered by the CI perf gate appears in its committed `BENCH_*.json` baseline and vice versa, and every committed baseline is wired into CI |
//! | `error-variant-coverage` | every variant of the configured error enums is constructed somewhere outside its definition (and outside its `impl ... for` blocks) and named in at least one test |
//! | `durability-io-panic` | `unwrap()` / `expect(` on non-lock calls are forbidden in the declared durability modules (journal/snapshot I/O) outside `#[cfg(test)]` code — a disk fault must surface as a typed error, not a dead writer thread |
//!
//! Diagnostics are reported as `file:line: [rule] message`, and `--json`
//! additionally writes a machine-readable report for CI annotation.
//!
//! # Suppression policy
//!
//! A finding is suppressed per-site with a justification tag:
//!
//! ```text
//! // LINT-ALLOW(<rule>): <reason>
//! ```
//!
//! * trailing on the offending line — suppresses that line;
//! * on its own line directly above a statement — suppresses that statement's
//!   line;
//! * on its own line directly above an `fn` item — suppresses the whole
//!   function body (intended for tight kernel loops where one documented
//!   invariant covers every access).
//!
//! A tag with an unknown rule name, an empty reason, or no statement beneath
//! it is itself a diagnostic (rule `lint-allow`), so suppressions can never
//! rot silently. Prefer line-level tags; use function-level tags only where
//! the invariant genuinely covers the whole body, and state that invariant in
//! the reason.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod rules;
pub mod scan;

use scan::SourceFile;

/// The rules the lint pass knows about (used to validate `LINT-ALLOW` tags).
pub const KNOWN_RULES: &[&str] = &[
    rules::safety::RULE,
    rules::ordering::RULE,
    rules::panic_free::RULE,
    rules::feature_gate::RULE,
    rules::bench_baseline::RULE,
    rules::error_coverage::RULE,
    rules::io_unwrap::RULE,
    RULE_LINT_ALLOW,
];

/// Pseudo-rule for malformed `LINT-ALLOW` tags.
pub const RULE_LINT_ALLOW: &str = "lint-allow";

/// One finding, pointing at a 1-based line of a workspace-relative file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier (one of [`KNOWN_RULES`]).
    pub rule: &'static str,
    /// Path relative to the lint root, `/`-separated.
    pub file: String,
    /// 1-based line number (0 when the finding is file-level).
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Render as `file:line: [rule] message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// What the lint pass checks and where. Tests point this at fixture trees;
/// [`LintConfig::workspace_default`] describes the real workspace.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Directory the relative paths below resolve against.
    pub root: PathBuf,
    /// Rel-path suffixes of the hot-path modules for `hot-path-panic`.
    pub hot_paths: Vec<String>,
    /// `(rel-path suffix, line substring)` pairs exempt from
    /// `atomic-ordering-comment`; each entry documents *why* inline here.
    pub ordering_allowlist: Vec<(String, String)>,
    /// Rel-path prefixes whose files are exempt from the ordering rule
    /// (the shims implement the atomics API itself).
    pub ordering_exempt: Vec<String>,
    /// `(rel file, enum name)` pairs for `error-variant-coverage`.
    pub error_enums: Vec<(String, String)>,
    /// Rel-path suffixes of the durability modules for `durability-io-panic`.
    pub durability_paths: Vec<String>,
    /// Rel path of the CI workflow for `bench-baseline-sync` (None disables).
    pub ci_file: Option<String>,
    /// Rel dir containing Criterion bench sources.
    pub bench_dir: String,
    /// Rel dir containing the committed `BENCH_*.json` baselines.
    pub baseline_dir: String,
    /// Rel-path prefixes to skip entirely when walking.
    pub skip: Vec<String>,
}

impl LintConfig {
    /// The configuration for this repository.
    pub fn workspace_default(root: &Path) -> LintConfig {
        LintConfig {
            root: root.to_path_buf(),
            hot_paths: vec![
                "crates/higgs/src/matrix.rs".into(),
                "crates/higgs/src/query.rs".into(),
                "crates/higgs/src/overflow.rs".into(),
                "crates/common/src/simd.rs".into(),
                "crates/sketch/src/gss.rs".into(),
            ],
            ordering_allowlist: vec![
                // LIVE_WRITERS is a test-support diagnostic counter; its
                // SeqCst sites are self-describing and carry a module-level
                // rationale in shard.rs.
                ("crates/higgs/src/shard.rs".into(), "LIVE_WRITERS".into()),
            ],
            ordering_exempt: vec!["crates/shims/".into(), "crates/xtask/".into()],
            error_enums: vec![
                (
                    "crates/higgs/src/snapshot.rs".into(),
                    "SnapshotError".into(),
                ),
                ("crates/higgs/src/config.rs".into(), "ConfigError".into()),
                ("crates/higgs/src/shard.rs".into(), "IngestError".into()),
                ("crates/higgs/src/serving.rs".into(), "ServiceError".into()),
                ("crates/higgs/src/journal.rs".into(), "JournalError".into()),
                ("crates/higgs/src/reshard.rs".into(), "ReshardError".into()),
                ("crates/higgs/src/replica.rs".into(), "ReplicaError".into()),
            ],
            durability_paths: vec![
                "crates/higgs/src/journal.rs".into(),
                "crates/higgs/src/snapshot.rs".into(),
                "crates/higgs/src/history.rs".into(),
                "crates/higgs/src/reshard.rs".into(),
                "crates/higgs/src/replica.rs".into(),
            ],
            ci_file: Some(".github/workflows/ci.yml".into()),
            bench_dir: "crates/bench/benches".into(),
            baseline_dir: String::new(),
            skip: vec![
                "target".into(),
                ".git".into(),
                "crates/xtask/fixtures".into(),
            ],
        }
    }
}

/// Per-file suppression spans, keyed by rule name.
#[derive(Debug, Default)]
pub struct Suppressions {
    spans: BTreeMap<String, Vec<(usize, usize)>>,
}

impl Suppressions {
    /// Is `line` (0-based) suppressed for `rule`?
    pub fn allows(&self, rule: &str, line: usize) -> bool {
        self.spans
            .get(rule)
            .is_some_and(|v| v.iter().any(|&(s, e)| s <= line && line <= e))
    }
}

/// Parse all `LINT-ALLOW` tags in `sf`, resolving each to a suppression span.
/// Malformed tags are reported into `diags` under [`RULE_LINT_ALLOW`].
pub fn collect_suppressions(sf: &SourceFile, diags: &mut Vec<Diagnostic>) -> Suppressions {
    let mut sup = Suppressions::default();
    for i in 0..sf.len() {
        let Some(comment) = &sf.lines[i].comment else {
            continue;
        };
        // A tag is a plain `//` comment that *begins* with LINT-ALLOW; doc
        // comments and prose that merely mention the marker are not tags.
        if sf.lines[i].is_doc || !comment.trim_start().starts_with("LINT-ALLOW") {
            continue;
        }
        let pos = comment.find("LINT-ALLOW").unwrap_or(0);
        let rest = &comment[pos + "LINT-ALLOW".len()..];
        let bad = |msg: &str, diags: &mut Vec<Diagnostic>| {
            diags.push(Diagnostic {
                rule: RULE_LINT_ALLOW,
                file: sf.rel.clone(),
                line: i + 1,
                message: msg.to_string(),
            });
        };
        let Some(stripped) = rest.strip_prefix('(') else {
            bad(
                "malformed LINT-ALLOW tag: expected `LINT-ALLOW(<rule>): <reason>`",
                diags,
            );
            continue;
        };
        let Some(close) = stripped.find(')') else {
            bad("malformed LINT-ALLOW tag: missing `)`", diags);
            continue;
        };
        let rule = stripped[..close].trim().to_string();
        let after = &stripped[close + 1..];
        if !KNOWN_RULES.contains(&rule.as_str()) {
            bad(&format!("LINT-ALLOW names unknown rule `{rule}`"), diags);
            continue;
        }
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if !after.starts_with(':') || reason.is_empty() {
            bad(
                &format!("LINT-ALLOW({rule}) has no reason; write `LINT-ALLOW({rule}): <why>`"),
                diags,
            );
            continue;
        }
        // Resolve the span the tag covers.
        let span = if !sf.lines[i].code.trim().is_empty() {
            Some((i, i)) // trailing tag: this line only
        } else {
            resolve_standalone_span(sf, i)
        };
        match span {
            Some(s) => sup.spans.entry(rule).or_default().push(s),
            None => bad("LINT-ALLOW tag has no statement beneath it", diags),
        }
    }
    sup
}

/// A standalone tag at line `i` covers the next code line; if that line
/// begins an `fn` item, it covers the whole function body.
fn resolve_standalone_span(sf: &SourceFile, i: usize) -> Option<(usize, usize)> {
    let mut j = i + 1;
    while j < sf.len() {
        let line = &sf.lines[j];
        let code = line.code.trim();
        if code.is_empty() && line.comment.is_some() {
            j += 1; // rest of the comment block
            continue;
        }
        if code.starts_with("#[") {
            j += 1; // attributes between the tag and the item
            continue;
        }
        if code.is_empty() {
            return None; // blank line breaks attachment
        }
        // Found the target line.
        if !scan::word_positions(code, "fn").is_empty() {
            let end = sf.matching_close(j, 0).unwrap_or(j);
            return Some((j, end));
        }
        return Some((j, j));
    }
    None
}

/// Walk `cfg.root` for `.rs` files, honouring `cfg.skip`. Paths are returned
/// relative to the root, sorted, `/`-separated.
pub fn walk_rs_files(cfg: &LintConfig) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![cfg.root.clone()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let rel = rel_path(&cfg.root, &path);
            if cfg
                .skip
                .iter()
                .any(|s| rel == *s || rel.starts_with(&format!("{s}/")))
            {
                continue;
            }
            if path.is_dir() {
                stack.push(path);
            } else if rel.ends_with(".rs") {
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Run the full lint pass over the configured tree.
pub fn run_lint(cfg: &LintConfig) -> io::Result<Vec<Diagnostic>> {
    let rels = walk_rs_files(cfg)?;
    let mut files = Vec::with_capacity(rels.len());
    for rel in &rels {
        let text = fs::read_to_string(cfg.root.join(rel))?;
        files.push(SourceFile::parse(rel, &text));
    }

    let mut tag_diags = Vec::new();
    let mut sups = Vec::with_capacity(files.len());
    for sf in &files {
        sups.push(collect_suppressions(sf, &mut tag_diags));
    }

    let mut raw = Vec::new();
    for sf in &files {
        rules::safety::check(sf, &mut raw);
        rules::ordering::check(cfg, sf, &mut raw);
        rules::panic_free::check(cfg, sf, &mut raw);
        rules::feature_gate::check(sf, &mut raw);
        rules::io_unwrap::check(cfg, sf, &mut raw);
    }
    rules::bench_baseline::check(cfg, &mut raw)?;
    rules::error_coverage::check(cfg, &files, &mut raw);

    // Apply suppressions (line numbers in diagnostics are 1-based).
    let index: BTreeMap<&str, usize> = files
        .iter()
        .enumerate()
        .map(|(i, f)| (f.rel.as_str(), i))
        .collect();
    let mut out = tag_diags;
    for d in raw {
        let suppressed = d.line > 0
            && index
                .get(d.file.as_str())
                .is_some_and(|&i| sups[i].allows(d.rule, d.line - 1));
        if !suppressed {
            out.push(d);
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(out)
}

/// Run only the per-file rules (1–4 and 7) plus suppression handling on one
/// file. Fixture tests use this to exercise a rule in isolation.
pub fn lint_single(cfg: &LintConfig, rel: &str, text: &str) -> Vec<Diagnostic> {
    let sf = SourceFile::parse(rel, text);
    let mut tag_diags = Vec::new();
    let sup = collect_suppressions(&sf, &mut tag_diags);
    let mut raw = Vec::new();
    rules::safety::check(&sf, &mut raw);
    rules::ordering::check(cfg, &sf, &mut raw);
    rules::panic_free::check(cfg, &sf, &mut raw);
    rules::feature_gate::check(&sf, &mut raw);
    rules::io_unwrap::check(cfg, &sf, &mut raw);
    let mut out = tag_diags;
    for d in raw {
        if d.line == 0 || !sup.allows(d.rule, d.line - 1) {
            out.push(d);
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

/// Serialise diagnostics as a small JSON document for CI annotation.
pub fn diagnostics_to_json(diags: &[Diagnostic]) -> String {
    let mut s = String::from("{\"diagnostics\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"rule\":{},\"file\":{},\"line\":{},\"message\":{}}}",
            json_str(d.rule),
            json_str(&d.file),
            d.line,
            json_str(&d.message)
        ));
    }
    s.push_str(&format!("],\"count\":{}}}", diags.len()));
    s
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
