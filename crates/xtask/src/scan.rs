//! Lightweight line-oriented Rust source model for the lint pass.
//!
//! This is deliberately *not* a parser. It is a character-level state machine
//! that, per line, produces:
//!
//! * `code` — the source text with comments removed and the *contents* of
//!   string/char literals blanked out (quotes kept), so that braces, brackets
//!   and keywords inside literals or comments can never confuse a rule;
//! * `code_raw` — the source text with comments removed but string literals
//!   kept verbatim, for rules that need literal values (bench ids);
//! * `comment` — the text of any `//` comment on the line (doc or plain);
//! * `depth` — the brace depth at the *start* of the line;
//! * `in_test` / `in_debug_assert` — whether the line falls inside a
//!   `#[cfg(test)]`-gated item / `#[test]` function, or inside the argument
//!   span of a `debug_assert*!` invocation.
//!
//! The model is an approximation of real Rust syntax; the approximations are
//! chosen so that they fail *loud* (a spurious diagnostic that gets a
//! `LINT-ALLOW` with a reason) rather than silent (a missed finding).

/// One analysed source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// Code with comments stripped and literal contents blanked.
    pub code: String,
    /// Code with comments stripped but string literals preserved.
    pub code_raw: String,
    /// Text of a `//`-style comment on this line (slashes stripped), if any.
    pub comment: Option<String>,
    /// True when the comment is a doc comment (`///` or `//!`).
    pub is_doc: bool,
}

/// A fully analysed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the lint root, with `/` separators.
    pub rel: String,
    /// Per-line analysis results.
    pub lines: Vec<Line>,
    /// Brace depth at the start of each line.
    pub depth: Vec<u32>,
    /// Whether each line is inside `#[cfg(test)]` / `#[test]` code.
    pub in_test: Vec<bool>,
    /// Whether each line is inside a `debug_assert*!(...)` argument span.
    pub in_debug_assert: Vec<bool>,
}

/// Lexer state carried across characters.
enum State {
    Normal,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

impl SourceFile {
    /// Analyse `text` (the contents of the file at `rel`).
    pub fn parse(rel: &str, text: &str) -> SourceFile {
        let mut lines = Vec::new();
        let mut state = State::Normal;
        for raw in text.lines() {
            lines.push(lex_line(raw, &mut state));
        }
        let depth = compute_depths(&lines);
        let in_test = mark_test_regions(&lines, &depth);
        let in_debug_assert = mark_macro_spans(&lines, "debug_assert");
        SourceFile {
            rel: rel.to_string(),
            lines,
            depth,
            in_test,
            in_debug_assert,
        }
    }

    /// Number of lines in the file.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True when the file has no lines.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Walk upward from `line` (exclusive), skipping attribute lines, and
    /// collect the contiguous block of `//` comment lines immediately above.
    /// Returns the concatenated comment text (top to bottom), or `None` if a
    /// code or blank line intervenes before any comment is found.
    pub fn preceding_comment_block(&self, line: usize) -> Option<String> {
        let mut i = line;
        // Skip attribute lines (and their continuation lines) directly above.
        while i > 0 {
            let prev = &self.lines[i - 1];
            let code = prev.code.trim();
            if code.starts_with("#[") || code.starts_with("#![") {
                i -= 1;
                continue;
            }
            break;
        }
        let mut block: Vec<&str> = Vec::new();
        while i > 0 {
            let prev = &self.lines[i - 1];
            if prev.code.trim().is_empty() {
                if let Some(c) = &prev.comment {
                    block.push(c);
                    i -= 1;
                    continue;
                }
            }
            break;
        }
        if block.is_empty() {
            None
        } else {
            block.reverse();
            Some(block.join("\n"))
        }
    }

    /// The comment attached to `line`: its trailing comment, if any, else the
    /// comment block immediately above (skipping attributes).
    pub fn attached_comment(&self, line: usize) -> Option<String> {
        match &self.lines[line].comment {
            Some(c) => Some(c.clone()),
            None => self.preceding_comment_block(line),
        }
    }

    /// Find the line of the closing brace that matches the first `{` at or
    /// after `(line, col)`. Returns `None` when no opening brace is found or
    /// the file ends first.
    pub fn matching_close(&self, line: usize, col: usize) -> Option<usize> {
        let mut depth = 0u32;
        let mut seen_open = false;
        // Bracket/paren nesting, so a `;` inside `[u64; N]` or a default
        // argument never terminates the item early.
        let mut nest = 0u32;
        for (i, l) in self.lines.iter().enumerate().skip(line) {
            let code = if i == line {
                &l.code[col.min(l.code.len())..]
            } else {
                &l.code[..]
            };
            for ch in code.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        seen_open = true;
                    }
                    '}' if seen_open => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            return Some(i);
                        }
                    }
                    '(' | '[' => nest += 1,
                    ')' | ']' => nest = nest.saturating_sub(1),
                    // A top-level `;` before any `{` terminates the item
                    // (it was a declaration, not a definition).
                    ';' if !seen_open && nest == 0 => return Some(i),
                    _ => {}
                }
            }
        }
        None
    }
}

/// Lex one line, updating the cross-line `state`.
fn lex_line(raw: &str, state: &mut State) -> Line {
    let mut code = String::with_capacity(raw.len());
    let mut code_raw = String::with_capacity(raw.len());
    let mut comment: Option<String> = None;
    let mut is_doc = false;
    let chars: Vec<char> = raw.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match state {
            State::BlockComment(n) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    if *n == 1 {
                        *state = State::Normal;
                    } else {
                        *state = State::BlockComment(*n - 1);
                    }
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    *state = State::BlockComment(*n + 1);
                    i += 2;
                } else {
                    i += 1;
                }
                continue;
            }
            State::Str => {
                code_raw.push(c);
                match c {
                    '\\' => {
                        // Keep escapes opaque; blank both chars.
                        code.push(' ');
                        if let Some(&n) = chars.get(i + 1) {
                            code.push(' ');
                            code_raw.push(n);
                            i += 2;
                        } else {
                            i += 1;
                        }
                    }
                    '"' => {
                        code.push('"');
                        *state = State::Normal;
                        i += 1;
                    }
                    _ => {
                        code.push(' ');
                        i += 1;
                    }
                }
                continue;
            }
            State::RawStr(hashes) => {
                code_raw.push(c);
                if c == '"' {
                    let h = *hashes as usize;
                    let closes = (1..=h).all(|k| chars.get(i + k) == Some(&'#'));
                    if closes {
                        code.push('"');
                        for _ in 0..h {
                            code.push('#');
                        }
                        for k in 1..=h {
                            code_raw.push(chars[i + k]);
                        }
                        *state = State::Normal;
                        i += 1 + h;
                        continue;
                    }
                }
                code.push(' ');
                i += 1;
                continue;
            }
            State::Normal => {}
        }
        // Normal state.
        match c {
            '/' if chars.get(i + 1) == Some(&'/') => {
                // Line comment to EOL.
                let mut j = i + 2;
                is_doc = matches!(chars.get(j), Some('/') | Some('!'));
                if is_doc {
                    j += 1;
                }
                let text: String = chars[j..].iter().collect();
                comment = Some(text.trim().to_string());
                break;
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                *state = State::BlockComment(1);
                i += 2;
            }
            '"' => {
                code.push('"');
                code_raw.push('"');
                *state = State::Str;
                i += 1;
            }
            'r' | 'b' => {
                // Possible raw string r", r#", br", b".
                let mut j = i + 1;
                if c == 'b' && chars.get(j) == Some(&'r') {
                    j += 1;
                }
                let mut hashes = 0u32;
                while chars.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                let prev_ident = i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
                if !prev_ident && chars.get(j) == Some(&'"') && (c == 'r' || j > i + 1) {
                    for &ch in &chars[i..=j] {
                        code.push(ch);
                        code_raw.push(ch);
                    }
                    *state = if hashes == 0 {
                        State::Str
                    } else {
                        State::RawStr(hashes)
                    };
                    // `r"` with zero hashes behaves like a plain string for
                    // our purposes (no escapes matter once blanked).
                    if hashes == 0 {
                        *state = State::Str;
                    }
                    i = j + 1;
                } else if !prev_ident && c == 'b' && chars.get(i + 1) == Some(&'\'') {
                    // Byte char literal b'x'.
                    code.push('b');
                    code_raw.push('b');
                    i += 1;
                    consume_char_literal(&chars, &mut i, &mut code, &mut code_raw);
                } else {
                    code.push(c);
                    code_raw.push(c);
                    i += 1;
                }
            }
            '\'' => {
                consume_char_literal(&chars, &mut i, &mut code, &mut code_raw);
            }
            _ => {
                code.push(c);
                code_raw.push(c);
                i += 1;
            }
        }
    }
    Line {
        code,
        code_raw,
        comment,
        is_doc,
    }
}

/// Consume a `'` at `chars[*i]`: either a char literal (blank its contents)
/// or a lifetime (copy through).
fn consume_char_literal(chars: &[char], i: &mut usize, code: &mut String, code_raw: &mut String) {
    // Lifetime heuristic: 'ident not followed by a closing quote.
    let a = chars.get(*i + 1).copied();
    let b = chars.get(*i + 2).copied();
    let is_lifetime = match a {
        Some(ch) if ch.is_alphabetic() || ch == '_' => b != Some('\''),
        _ => false,
    };
    if is_lifetime {
        code.push('\'');
        code_raw.push('\'');
        *i += 1;
        return;
    }
    // Char literal: copy quotes, blank the contents.
    code.push('\'');
    code_raw.push('\'');
    *i += 1;
    if chars.get(*i) == Some(&'\\') {
        code.push(' ');
        code.push(' ');
        code_raw.push(' ');
        code_raw.push(' ');
        *i += 2;
        // Skip to closing quote (covers \u{..} forms).
        while let Some(&ch) = chars.get(*i) {
            if ch == '\'' {
                break;
            }
            code.push(' ');
            code_raw.push(' ');
            *i += 1;
        }
    } else if chars.get(*i).is_some() {
        code.push(' ');
        code_raw.push(' ');
        *i += 1;
    }
    if chars.get(*i) == Some(&'\'') {
        code.push('\'');
        code_raw.push('\'');
        *i += 1;
    }
}

/// Brace depth at the start of each line.
fn compute_depths(lines: &[Line]) -> Vec<u32> {
    let mut depth = 0i64;
    let mut out = Vec::with_capacity(lines.len());
    for line in lines {
        out.push(depth.max(0) as u32);
        for ch in line.code.chars() {
            match ch {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
    }
    out
}

/// Mark lines covered by `#[cfg(test)]` / `#[cfg(all(test, ...))]` / `#[test]`
/// gated items: from the attribute through the end of the following item.
fn mark_test_regions(lines: &[Line], _depth: &[u32]) -> Vec<bool> {
    let mut marked = vec![false; lines.len()];
    for (i, line) in lines.iter().enumerate() {
        let code = line.code.trim();
        if !(code.starts_with("#[")) {
            continue;
        }
        // Collect the attribute text (may span lines until brackets balance).
        let mut attr = String::new();
        let mut bal = 0i64;
        let mut end = i;
        'outer: for (j, l) in lines.iter().enumerate().skip(i) {
            for ch in l.code.chars() {
                attr.push(ch);
                match ch {
                    '[' => bal += 1,
                    ']' => {
                        bal -= 1;
                        if bal == 0 {
                            end = j;
                            break 'outer;
                        }
                    }
                    _ => {}
                }
            }
            attr.push('\n');
        }
        if !attr_is_test(&attr) {
            continue;
        }
        // Find where the gated item ends: scan forward from the attribute end
        // for the first `{` (or `;`), then its matching close.
        let mut brace = 0i64;
        let mut seen_open = false;
        let mut region_end = end;
        'scan: for (j, l) in lines.iter().enumerate().skip(end) {
            let code = if j == end {
                // Skip past the attribute's closing bracket on its own line.
                l.code.as_str()
            } else {
                l.code.as_str()
            };
            for ch in code.chars() {
                match ch {
                    '{' => {
                        brace += 1;
                        seen_open = true;
                    }
                    '}' => {
                        brace -= 1;
                        if seen_open && brace <= 0 {
                            region_end = j;
                            break 'scan;
                        }
                    }
                    ';' if !seen_open && j > end => {
                        region_end = j;
                        break 'scan;
                    }
                    _ => {}
                }
            }
            region_end = j;
        }
        for m in marked.iter_mut().take(region_end + 1).skip(i) {
            *m = true;
        }
    }
    marked
}

/// Does an attribute text like `#[cfg(all(test, feature = "x"))]` gate on the
/// `test` cfg predicate?
fn attr_is_test(attr: &str) -> bool {
    if !attr.starts_with("#[") {
        return false;
    }
    let inner = &attr[2..];
    if inner.trim_end().trim_end_matches(']').trim() == "test" {
        return true; // #[test]
    }
    if !inner.trim_start().starts_with("cfg") {
        return false;
    }
    // Word-boundary search for `test` inside the cfg predicate, ignoring a
    // leading `not(` scope (cfg(not(test)) does NOT gate test code).
    for (pos, _) in inner.match_indices("test") {
        let before = inner[..pos].chars().next_back();
        let after = inner[pos + 4..].chars().next();
        let word_start = !matches!(before, Some(c) if c.is_alphanumeric() || c == '_');
        let word_end = !matches!(after, Some(c) if c.is_alphanumeric() || c == '_');
        if word_start && word_end && !in_not_scope(inner, pos) {
            return true;
        }
    }
    false
}

/// Is byte offset `pos` inside a `not(...)` scope of `text`?
pub fn in_not_scope(text: &str, pos: usize) -> bool {
    let mut stack: Vec<bool> = Vec::new();
    let bytes = text.as_bytes();
    let mut word_start = 0usize;
    let mut last_word = String::new();
    for (i, &b) in bytes.iter().enumerate() {
        if i >= pos {
            break;
        }
        let c = b as char;
        if c.is_alphanumeric() || c == '_' {
            if last_word.is_empty() {
                word_start = i;
            }
            let _ = word_start;
            last_word.push(c);
        } else {
            match c {
                '(' => {
                    stack.push(last_word == "not");
                    last_word.clear();
                }
                ')' => {
                    stack.pop();
                    last_word.clear();
                }
                _ => last_word.clear(),
            }
        }
    }
    stack.iter().any(|&n| n)
}

/// Mark the argument spans of `name*!(...)` macro invocations (used for
/// `debug_assert`, `debug_assert_eq`, `debug_assert_ne`).
fn mark_macro_spans(lines: &[Line], name: &str) -> Vec<bool> {
    let mut marked = vec![false; lines.len()];
    for i in 0..lines.len() {
        let code = &lines[i].code;
        for (pos, _) in code.match_indices(name) {
            let before = code[..pos].chars().next_back();
            if matches!(before, Some(c) if c.is_alphanumeric() || c == '_') {
                continue;
            }
            // Require `name[ident-chars]*!` shape.
            let rest = &code[pos + name.len()..];
            let bang = rest.find('!');
            let Some(bpos) = bang else { continue };
            if !rest[..bpos]
                .chars()
                .all(|c| c.is_alphanumeric() || c == '_')
            {
                continue;
            }
            // Walk to the closing delimiter of the macro invocation.
            let mut depth = 0i64;
            let mut seen_open = false;
            let mut end = i;
            'walk: for (j, l) in lines.iter().enumerate().skip(i) {
                let text = if j == i { &l.code[pos..] } else { &l.code[..] };
                for ch in text.chars() {
                    match ch {
                        '(' | '[' | '{' => {
                            depth += 1;
                            seen_open = true;
                        }
                        ')' | ']' | '}' if seen_open => {
                            depth -= 1;
                            if depth <= 0 {
                                end = j;
                                break 'walk;
                            }
                        }
                        _ => {}
                    }
                }
                end = j;
            }
            for m in marked.iter_mut().take(end + 1).skip(i) {
                *m = true;
            }
        }
    }
    marked
}

/// Find word-boundary occurrences of `word` in `code`; returns byte offsets.
pub fn word_positions(code: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    for (pos, _) in code.match_indices(word) {
        let before = code[..pos].chars().next_back();
        let after = code[pos + word.len()..].chars().next();
        let ws = !matches!(before, Some(c) if c.is_alphanumeric() || c == '_');
        let we = !matches!(after, Some(c) if c.is_alphanumeric() || c == '_');
        if ws && we {
            out.push(pos);
        }
    }
    out
}
