//! Rule 4: feature-gate pairing. Every `#[cfg(feature = "X")]`-gated item in
//! library code must have a `not(feature = "X")` twin — or a
//! `cfg!(feature = "X")` runtime-dispatch site — in the same file, so that a
//! default (feature-less) build can never lose a symbol and silently fall off
//! the API surface the rest of the workspace compiles against.

use crate::scan::{in_not_scope, SourceFile};
use crate::Diagnostic;
use std::collections::BTreeMap;

/// Rule identifier.
pub const RULE: &str = "feature-gate-pairing";

/// Scan `sf` for positively feature-gated items lacking a negative twin.
pub fn check(sf: &SourceFile, out: &mut Vec<Diagnostic>) {
    // Only library code: crate sources, not benches/tests/examples.
    let lib = sf.rel.starts_with("crates/") && sf.rel.contains("/src/");
    if !lib {
        return;
    }
    // feature name -> (first positive line, has negative, has runtime use)
    let mut feats: BTreeMap<String, (usize, bool, bool)> = BTreeMap::new();
    for i in 0..sf.len() {
        let code = sf.lines[i].code.trim();
        if code.starts_with("#[") || code.starts_with("#![") {
            let (attr, _end) = collect_attr(sf, i);
            if !attr.contains("cfg") {
                continue;
            }
            for (name, pos) in feature_names(&attr) {
                let negative = in_not_scope(&attr, pos);
                let entry = feats.entry(name).or_insert((i, false, false));
                if negative {
                    entry.1 = true;
                } else if !entry.1 && entry.0 > i {
                    entry.0 = i;
                }
            }
        }
        // Runtime dispatch: cfg!(feature = "X") compiles both branches.
        if let Some(p) = sf.lines[i].code_raw.find("cfg!(") {
            for (name, _) in feature_names(&sf.lines[i].code_raw[p..]) {
                feats.entry(name).or_insert((i, false, false)).2 = true;
            }
        }
    }
    for (name, (line, has_neg, has_runtime)) in feats {
        // `positive` tracking: entry exists because a cfg named the feature;
        // an entry that only ever saw negatives reports has_neg = true.
        if has_neg || has_runtime {
            continue;
        }
        out.push(Diagnostic {
            rule: RULE,
            file: sf.rel.clone(),
            line: line + 1,
            message: format!(
                "#[cfg(feature = \"{name}\")] item has no `not(feature = \"{name}\")` twin \
                 or `cfg!(feature = \"{name}\")` dispatch in this file; a default build \
                 would lose the symbol"
            ),
        });
    }
}

/// Collect a (possibly multi-line) attribute starting at `i`. Returns the
/// raw text (strings preserved) and the last line consumed.
fn collect_attr(sf: &SourceFile, i: usize) -> (String, usize) {
    let mut attr = String::new();
    let mut bal = 0i64;
    for (j, l) in sf.lines.iter().enumerate().skip(i) {
        for ch in l.code_raw.chars() {
            attr.push(ch);
            match ch {
                '[' => bal += 1,
                ']' => {
                    bal -= 1;
                    if bal == 0 {
                        return (attr, j);
                    }
                }
                _ => {}
            }
        }
        attr.push('\n');
    }
    (attr, sf.len().saturating_sub(1))
}

/// Extract `feature = "name"` occurrences from attribute/macro text,
/// returning `(name, byte offset of the occurrence)`.
fn feature_names(text: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (pos, _) in text.match_indices("feature") {
        let before = text[..pos].chars().next_back();
        if matches!(before, Some(c) if c.is_alphanumeric() || c == '_') {
            continue;
        }
        let rest = text[pos + "feature".len()..].trim_start();
        let Some(rest) = rest.strip_prefix('=') else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('"') else {
            continue;
        };
        let Some(end) = rest.find('"') else { continue };
        out.push((rest[..end].to_string(), pos));
    }
    out
}
