//! Rule 1: every `unsafe` block/fn/impl is immediately preceded by a
//! non-empty `// SAFETY:` rationale. For `unsafe fn` items (and unsafe trait
//! impls), a doc-comment `# Safety` section with content also satisfies the
//! rule — that is where rustdoc renders the caller contract.

use crate::scan::{word_positions, SourceFile};
use crate::Diagnostic;

/// Rule identifier.
pub const RULE: &str = "unsafe-safety-comment";

/// Scan `sf` for `unsafe` keywords lacking an attached safety rationale.
pub fn check(sf: &SourceFile, out: &mut Vec<Diagnostic>) {
    for i in 0..sf.len() {
        let code = &sf.lines[i].code;
        for pos in word_positions(code, "unsafe") {
            let kind = classify(sf, i, pos + "unsafe".len());
            let attached = sf.attached_comment(i);
            if satisfied(attached.as_deref(), kind) {
                continue;
            }
            out.push(Diagnostic {
                rule: RULE,
                file: sf.rel.clone(),
                line: i + 1,
                message: format!(
                    "`unsafe` {} without an immediately preceding `// SAFETY:` rationale{}",
                    kind.describe(),
                    if matches!(kind, Kind::Fn) {
                        " (a doc `# Safety` section with content also counts)"
                    } else {
                        ""
                    }
                ),
            });
        }
    }
}

/// What the `unsafe` keyword introduces.
#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Block,
    Fn,
    ImplOrTrait,
}

impl Kind {
    fn describe(self) -> &'static str {
        match self {
            Kind::Block => "block",
            Kind::Fn => "fn",
            Kind::ImplOrTrait => "impl/trait",
        }
    }
}

/// Look at the tokens following the `unsafe` keyword (possibly on later
/// lines) to decide what it introduces.
fn classify(sf: &SourceFile, line: usize, col: usize) -> Kind {
    let mut tokens = Vec::new();
    'outer: for (j, l) in sf.lines.iter().enumerate().skip(line) {
        let text = if j == line {
            &l.code[col.min(l.code.len())..]
        } else {
            &l.code[..]
        };
        for tok in text.split(|c: char| c.is_whitespace()) {
            if tok.is_empty() {
                continue;
            }
            tokens.push(tok.to_string());
            if tokens.len() >= 3 || tok.contains('{') {
                break 'outer;
            }
        }
    }
    for tok in &tokens {
        let head: String = tok
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        match head.as_str() {
            "fn" => return Kind::Fn,
            "impl" | "trait" => return Kind::ImplOrTrait,
            "extern" => continue, // `unsafe extern "C" fn ...`
            _ => {}
        }
        if tok.starts_with('{') {
            return Kind::Block;
        }
    }
    Kind::Block
}

/// Does the attached comment text justify the unsafe site?
fn satisfied(comment: Option<&str>, kind: Kind) -> bool {
    let Some(text) = comment else { return false };
    if let Some(pos) = text.find("SAFETY:") {
        if !text[pos + "SAFETY:".len()..].trim().is_empty() {
            return true;
        }
    }
    if matches!(kind, Kind::Fn | Kind::ImplOrTrait) {
        if let Some(pos) = text.find("# Safety") {
            if !text[pos + "# Safety".len()..].trim().is_empty() {
                return true;
            }
        }
    }
    false
}
