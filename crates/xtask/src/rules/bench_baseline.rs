//! Rule 5: bench-baseline hygiene. The CI perf gate compares smoke-run
//! timings against committed `BENCH_*.json` baselines; an id registered in a
//! bench but absent from its baseline (or vice versa) surfaces only as a
//! confusing gate failure at bench time. This rule cross-checks, statically:
//!
//! * every committed `BENCH_*.json` is wired into the CI workflow;
//! * for every `(BENCH_JSON=..., --bench <name> [-- --test <filter>])` pair in
//!   CI, every *literal* bench id registered in the bench source and matching
//!   the filter appears in the baseline;
//! * every baseline id is explained by a literal registration, a literal
//!   `BenchmarkId::new("prefix", param)` family, or a dynamically-named
//!   registration in the same group.
//!
//! Registrations whose id expression is not a string literal (e.g.
//! `kind.label()`) mark their group *dynamic*: the rule cannot enumerate the
//! ids, so it only checks group membership for those baselines.

use crate::scan::SourceFile;
use crate::{Diagnostic, LintConfig};
use std::collections::BTreeSet;
use std::fs;
use std::io;

/// Rule identifier.
pub const RULE: &str = "bench-baseline-sync";

/// Cross-check CI gate mappings, bench registrations and baselines.
pub fn check(cfg: &LintConfig, out: &mut Vec<Diagnostic>) -> io::Result<()> {
    let Some(ci_rel) = &cfg.ci_file else {
        return Ok(());
    };
    let ci_path = cfg.root.join(ci_rel);
    if !ci_path.is_file() {
        out.push(file_diag(
            ci_rel,
            format!("CI workflow `{ci_rel}` not found"),
        ));
        return Ok(());
    }
    let ci_text = fs::read_to_string(&ci_path)?;
    let joined = join_continuations(&ci_text);
    let mappings = parse_mappings(&joined);

    // (a) every committed baseline is referenced by CI.
    let baseline_dir = if cfg.baseline_dir.is_empty() {
        cfg.root.clone()
    } else {
        cfg.root.join(&cfg.baseline_dir)
    };
    let mut baseline_names = BTreeSet::new();
    for entry in fs::read_dir(&baseline_dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("BENCH_") && name.ends_with(".json") && entry.path().is_file() {
            let stem = name["BENCH_".len()..name.len() - ".json".len()].to_string();
            if !ci_text.contains(&name) {
                out.push(file_diag(
                    &name,
                    format!("baseline `{name}` is not referenced by {ci_rel}"),
                ));
            }
            if !mappings.iter().any(|m| m.name == stem) {
                out.push(file_diag(
                    &name,
                    format!("baseline `{name}` has no BENCH_JSON smoke-run mapping in {ci_rel}"),
                ));
            }
            baseline_names.insert(stem);
        }
    }

    // (b)+(c) per CI mapping: registrations vs baseline ids.
    for m in &mappings {
        let baseline_file = format!("BENCH_{}.json", m.name);
        let baseline_path = baseline_dir.join(&baseline_file);
        if !baseline_path.is_file() {
            out.push(file_diag(
                ci_rel,
                format!(
                    "CI maps BENCH_JSON to `{baseline_file}` but no such baseline is committed"
                ),
            ));
            continue;
        }
        let ids = parse_baseline_ids(&fs::read_to_string(&baseline_path)?);
        let bench_rel = format!("{}/{}.rs", cfg.bench_dir, m.bench);
        let bench_path = cfg.root.join(&bench_rel);
        if !bench_path.is_file() {
            out.push(file_diag(
                ci_rel,
                format!(
                    "CI runs `--bench {}` but `{bench_rel}` does not exist",
                    m.bench
                ),
            ));
            continue;
        }
        let sf = SourceFile::parse(&bench_rel, &fs::read_to_string(&bench_path)?);
        let regs = parse_registrations(&sf);

        let filter_ok = |full: &str| m.filter.as_deref().is_none_or(|f| full.contains(f));
        for reg in &regs.literals {
            let full = format!("{}/{}", reg.group, reg.lit);
            if filter_ok(&full) && !ids.contains(&full) {
                out.push(Diagnostic {
                    rule: RULE,
                    file: bench_rel.clone(),
                    line: reg.line + 1,
                    message: format!(
                        "bench id `{full}` is registered here but missing from {baseline_file}; \
                         re-seed the baseline per the drift procedure in {ci_rel}"
                    ),
                });
            }
        }
        for reg in &regs.prefixes {
            let prefix = format!("{}/{}/", reg.group, reg.lit);
            let covered_by_filter = m.filter.as_deref().is_none_or(|f| prefix.contains(f));
            if covered_by_filter && !ids.iter().any(|id| id.starts_with(&prefix)) {
                out.push(Diagnostic {
                    rule: RULE,
                    file: bench_rel.clone(),
                    line: reg.line + 1,
                    message: format!(
                        "bench id family `{prefix}*` is registered here but has no entry \
                         in {baseline_file}; re-seed the baseline per the drift procedure"
                    ),
                });
            }
        }
        for id in &ids {
            let group = id.split('/').next().unwrap_or(id);
            if !regs.groups.contains(group) {
                out.push(file_diag(
                    &baseline_file,
                    format!("baseline id `{id}` names group `{group}` which `{bench_rel}` does not register"),
                ));
                continue;
            }
            let explained = regs
                .literals
                .iter()
                .any(|r| format!("{}/{}", r.group, r.lit) == *id)
                || regs
                    .prefixes
                    .iter()
                    .any(|r| id.starts_with(&format!("{}/{}/", r.group, r.lit)))
                || regs.dynamic_groups.contains(group);
            if !explained {
                out.push(file_diag(
                    &baseline_file,
                    format!("stale baseline id `{id}`: `{bench_rel}` no longer registers it"),
                ));
            }
        }
    }
    Ok(())
}

fn file_diag(file: &str, message: String) -> Diagnostic {
    Diagnostic {
        rule: RULE,
        file: file.to_string(),
        line: 0,
        message,
    }
}

/// Join shell `\`-continued lines so each BENCH_JSON mapping is one line.
fn join_continuations(text: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut cont = false;
    for line in text.lines() {
        let (body, continues) = match line.trim_end().strip_suffix('\\') {
            Some(b) => (b.trim_end(), true),
            None => (line.trim_end(), false),
        };
        if cont {
            let last = out.last_mut().expect("continuation follows a line");
            last.push(' ');
            last.push_str(body.trim_start());
        } else {
            out.push(body.to_string());
        }
        cont = continues;
    }
    out
}

/// One `BENCH_JSON=... cargo bench --bench <bench> [-- --test <filter>]` pair.
struct Mapping {
    name: String,
    bench: String,
    filter: Option<String>,
}

fn parse_mappings(joined: &[String]) -> Vec<Mapping> {
    let mut out = Vec::new();
    for line in joined {
        let Some(jpos) = line.find("BENCH_JSON=") else {
            continue;
        };
        let path_tok: String = line[jpos + "BENCH_JSON=".len()..]
            .chars()
            .take_while(|c| !c.is_whitespace())
            .collect();
        let base = path_tok
            .trim_matches('"')
            .rsplit('/')
            .next()
            .unwrap_or("")
            .to_string();
        let Some(stem) = base
            .strip_prefix("BENCH_")
            .and_then(|s| s.strip_suffix(".json"))
        else {
            continue;
        };
        // Strip shell-variable run suffixes like `_$run` / `_${run}`.
        let name = match stem.find('$') {
            Some(dpos) => stem[..dpos].trim_end_matches('_').to_string(),
            None => stem.to_string(),
        };
        let toks: Vec<&str> = line.split_whitespace().collect();
        let Some(bpos) = toks.iter().position(|t| *t == "--bench") else {
            continue;
        };
        let Some(bench) = toks.get(bpos + 1) else {
            continue;
        };
        let filter = toks
            .iter()
            .position(|t| *t == "--test")
            .and_then(|p| toks.get(p + 1))
            .filter(|t| !t.starts_with('-'))
            .map(|t| t.to_string());
        out.push(Mapping {
            name,
            bench: bench.to_string(),
            filter,
        });
    }
    out
}

/// Extract all `"id": "..."` values from a baseline JSON document.
fn parse_baseline_ids(text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut rest = text;
    while let Some(pos) = rest.find("\"id\"") {
        rest = &rest[pos + 4..];
        let after = rest.trim_start();
        let Some(after) = after.strip_prefix(':') else {
            continue;
        };
        let after = after.trim_start();
        let Some(after) = after.strip_prefix('"') else {
            continue;
        };
        if let Some(end) = after.find('"') {
            out.insert(after[..end].to_string());
            rest = &after[end..];
        }
    }
    out
}

/// A literal registration (`bench_function("lit")` or
/// `BenchmarkId::new("lit", param)`), attributed to its Criterion group.
struct Reg {
    group: String,
    lit: String,
    line: usize,
}

#[derive(Default)]
struct Registrations {
    groups: BTreeSet<String>,
    literals: Vec<Reg>,
    prefixes: Vec<Reg>,
    dynamic_groups: BTreeSet<String>,
}

/// Scan a bench source for Criterion groups and bench-id registrations.
fn parse_registrations(sf: &SourceFile) -> Registrations {
    // Concatenate comment-stripped source (strings preserved) with a map
    // from byte offset back to line index.
    let mut text = String::new();
    let mut line_of = Vec::new();
    for (i, l) in sf.lines.iter().enumerate() {
        for _ in l.code_raw.chars() {
            line_of.push(i);
        }
        text.push_str(&l.code_raw);
        text.push('\n');
        line_of.push(i);
    }
    let mut regs = Registrations::default();
    let mut group_at: Vec<(usize, String)> = Vec::new(); // (offset, group name)
    for (pos, _) in text.match_indices("benchmark_group(") {
        if let Some(lit) = literal_after(&text[pos + "benchmark_group(".len()..]) {
            group_at.push((pos, lit));
        }
    }
    regs.groups.extend(group_at.iter().map(|(_, g)| g.clone()));
    let group_for = |pos: usize| -> Option<String> {
        group_at
            .iter()
            .rev()
            .find(|(p, _)| *p < pos)
            .map(|(_, g)| g.clone())
    };

    for (pos, _) in text.match_indices(".bench_function(") {
        let after = &text[pos + ".bench_function(".len()..];
        let Some(group) = group_for(pos) else {
            continue;
        };
        let line = line_of[pos.min(line_of.len() - 1)];
        match literal_after(after) {
            Some(lit) => regs.literals.push(Reg { group, lit, line }),
            None => {
                // `bench_function(BenchmarkId::new(...))` is handled by the
                // BenchmarkId scan below; anything else is dynamic.
                if !after.trim_start().starts_with("BenchmarkId") {
                    regs.dynamic_groups.insert(group);
                }
            }
        }
    }
    for (pos, _) in text.match_indices("BenchmarkId::new(") {
        let after = &text[pos + "BenchmarkId::new(".len()..];
        let Some(group) = group_for(pos) else {
            continue;
        };
        let line = line_of[pos.min(line_of.len() - 1)];
        match literal_after(after) {
            Some(lit) => regs.prefixes.push(Reg { group, lit, line }),
            None => {
                regs.dynamic_groups.insert(group);
            }
        }
    }
    regs
}

/// If `text` (just past an opening paren) starts with a string literal,
/// return its contents.
fn literal_after(text: &str) -> Option<String> {
    let t = text.trim_start();
    let t = t.strip_prefix('"')?;
    let end = t.find('"')?;
    Some(t[..end].to_string())
}
