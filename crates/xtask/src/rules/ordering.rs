//! Rule 2: every `Ordering::{Relaxed,Acquire,Release,AcqRel,SeqCst}` use
//! outside the shims carries an `// ORDERING:` justification on or directly
//! above the line, or matches a configured allowlist entry. The flush clock,
//! writer counters and SIMD-dispatch cache are exactly the places where a
//! silent downgrade to `Relaxed` would corrupt read-your-writes, so the
//! choice must be written down where it is made.

use crate::scan::SourceFile;
use crate::{Diagnostic, LintConfig};

/// Rule identifier.
pub const RULE: &str = "atomic-ordering-comment";

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Scan `sf` for unjustified atomic-ordering uses.
pub fn check(cfg: &LintConfig, sf: &SourceFile, out: &mut Vec<Diagnostic>) {
    if cfg
        .ordering_exempt
        .iter()
        .any(|p| sf.rel.starts_with(p.as_str()))
    {
        return;
    }
    for i in 0..sf.len() {
        let code = &sf.lines[i].code;
        let trimmed = code.trim_start();
        if trimmed.starts_with("use ") || trimmed.starts_with("pub use ") {
            continue; // imports name orderings without choosing one
        }
        let mut named = Vec::new();
        for (pos, _) in code.match_indices("Ordering::") {
            let rest = &code[pos + "Ordering::".len()..];
            for ord in ORDERINGS {
                if let Some(tail) = rest.strip_prefix(ord) {
                    let after = tail.chars().next();
                    if !matches!(after, Some(c) if c.is_alphanumeric() || c == '_') {
                        named.push(*ord);
                    }
                }
            }
        }
        if named.is_empty() {
            continue;
        }
        let justified = sf.attached_comment(i).is_some_and(|c| {
            c.find("ORDERING:")
                .is_some_and(|p| !c[p + 9..].trim().is_empty())
        });
        let allowlisted = cfg.ordering_allowlist.iter().any(|(suffix, substr)| {
            sf.rel.ends_with(suffix.as_str()) && code.contains(substr.as_str())
        });
        if justified || allowlisted {
            continue;
        }
        named.dedup();
        out.push(Diagnostic {
            rule: RULE,
            file: sf.rel.clone(),
            line: i + 1,
            message: format!(
                "`Ordering::{}` without an `// ORDERING:` justification on or above the line",
                named.join("`/`Ordering::")
            ),
        });
    }
}
