//! Rule 7: panic-free durability I/O. In the configured durability modules
//! (the journal and snapshot code), `.unwrap()` / `.expect(` on anything
//! other than a lock acquisition are forbidden outside `#[cfg(test)]` code:
//! a panic on an I/O path turns a reportable disk fault (typed
//! `JournalError` / `SnapshotError`) into a dead writer thread and a
//! degraded shard. Poisoned-lock `expect`s — chains ending in `.read()`,
//! `.write()` or `.lock()` — are exempt: a poisoned shard lock means a
//! writer already panicked, and propagating that panic is the convention
//! throughout the workspace. Genuinely unreachable cases carry a
//! `LINT-ALLOW(durability-io-panic): <invariant>` tag instead.

use crate::scan::SourceFile;
use crate::{Diagnostic, LintConfig};

/// Rule identifier.
pub const RULE: &str = "durability-io-panic";

/// Scan `sf` (when configured as a durability module) for panicking
/// `unwrap`/`expect` calls that are not lock acquisitions.
pub fn check(cfg: &LintConfig, sf: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !cfg
        .durability_paths
        .iter()
        .any(|p| sf.rel.ends_with(p.as_str()))
    {
        return;
    }
    for i in 0..sf.len() {
        if sf.in_test[i] {
            continue;
        }
        let code = &sf.lines[i].code;
        for needle in [".unwrap()", ".expect("] {
            for (pos, _) in code.match_indices(needle) {
                if follows_lock_acquisition(&code[..pos]) {
                    continue;
                }
                out.push(Diagnostic {
                    rule: RULE,
                    file: sf.rel.clone(),
                    line: i + 1,
                    message: format!(
                        "`{needle}` on a durability I/O path (outside #[cfg(test)]); \
                         propagate a typed JournalError/SnapshotError instead, or \
                         document the invariant with LINT-ALLOW({RULE})",
                        needle = needle.trim_end_matches('('),
                    ),
                });
            }
        }
    }
}

/// Does the code before the `.unwrap()`/`.expect(` end in a lock
/// acquisition? Only the zero-argument forms count: `.read()` / `.write()`
/// with arguments are `std::io` calls, not `RwLock` ones.
fn follows_lock_acquisition(before: &str) -> bool {
    let trimmed = before.trim_end();
    [".read()", ".write()", ".lock()"]
        .iter()
        .any(|lock| trimmed.ends_with(lock))
}
