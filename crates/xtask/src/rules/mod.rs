//! The individual lint rules. Each module exposes a `RULE` identifier and a
//! `check` entry point; see the crate docs for what each rule enforces.

pub mod bench_baseline;
pub mod error_coverage;
pub mod feature_gate;
pub mod io_unwrap;
pub mod ordering;
pub mod panic_free;
pub mod safety;
