//! Rule 3: panic-freedom in the hot-path modules. `unwrap()`, `expect(`,
//! panicking macros, and slice/array indexing `x[..]` are forbidden outside
//! `#[cfg(test)]` code and `debug_assert!` spans — a hot-path panic poisons
//! shard locks and kills writer threads, and a bounds check the optimizer
//! cannot elide costs throughput. Invariant-protected indexing is allowed
//! only under an explicit `LINT-ALLOW(hot-path-panic): <invariant>` tag.

use crate::scan::{word_positions, SourceFile};
use crate::{Diagnostic, LintConfig};

/// Rule identifier.
pub const RULE: &str = "hot-path-panic";

const MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Scan `sf` (when configured as hot) for panic-capable constructs.
pub fn check(cfg: &LintConfig, sf: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !cfg.hot_paths.iter().any(|h| sf.rel.ends_with(h.as_str())) {
        return;
    }
    for i in 0..sf.len() {
        if sf.in_test[i] || sf.in_debug_assert[i] {
            continue;
        }
        let code = &sf.lines[i].code;
        let mut hits: Vec<String> = Vec::new();
        if code.contains(".unwrap()") {
            hits.push("`.unwrap()`".into());
        }
        if code.contains(".expect(") {
            hits.push("`.expect(...)`".into());
        }
        for m in MACROS {
            if word_positions(code, m)
                .iter()
                .any(|&p| code[p + m.len()..].starts_with('!'))
            {
                hits.push(format!("`{m}!`"));
            }
        }
        if has_indexing(code) {
            hits.push("slice indexing `[...]`".into());
        }
        for h in hits {
            out.push(Diagnostic {
                rule: RULE,
                file: sf.rel.clone(),
                line: i + 1,
                message: format!(
                    "{h} in hot-path module (outside #[cfg(test)]/debug_assert!); \
                     return a typed error, use a checked accessor, or document the \
                     invariant with LINT-ALLOW({RULE})"
                ),
            });
        }
    }
}

/// Postfix indexing: `[` immediately preceded by an identifier character,
/// `)` or `]`. This excludes attributes (`#[`), macro invocations (`vec![`
/// has `!` before `[`), slice types (`&[u64]`) and array literals (`[0; N]`).
fn has_indexing(code: &str) -> bool {
    let mut prev = ' ';
    for c in code.chars() {
        if c == '[' && (prev.is_alphanumeric() || prev == '_' || prev == ')' || prev == ']') {
            return true;
        }
        prev = c;
    }
    false
}
