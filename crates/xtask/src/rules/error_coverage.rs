//! Rule 6: error-enum construction coverage. Every variant of the configured
//! error enums must be (a) constructed/named somewhere outside its own
//! definition — excluding the enum's `impl ... for` blocks (`Display`,
//! `Error`), which merely format it — and (b) named in at least one test.
//! A variant nothing produces is dead API; a variant no test names is an
//! error path that has never been exercised.

use crate::scan::{word_positions, SourceFile};
use crate::{Diagnostic, LintConfig};

/// Rule identifier.
pub const RULE: &str = "error-variant-coverage";

/// Check each configured `(file, enum)` pair against the whole tree.
pub fn check(cfg: &LintConfig, files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    for (rel, name) in &cfg.error_enums {
        let Some(def) = files.iter().find(|f| &f.rel == rel) else {
            out.push(Diagnostic {
                rule: RULE,
                file: rel.clone(),
                line: 0,
                message: format!("configured error enum `{name}` file `{rel}` not found"),
            });
            continue;
        };
        let Some((enum_line, def_end)) = find_enum_span(def, name) else {
            out.push(Diagnostic {
                rule: RULE,
                file: rel.clone(),
                line: 0,
                message: format!("enum `{name}` not found in `{rel}`"),
            });
            continue;
        };
        let variants = extract_variants(def, enum_line, def_end);
        let trait_impls = trait_impl_spans(def, name);

        for (vline, variant) in &variants {
            let needle = format!("{name}::{variant}");
            let mut constructed = false;
            let mut tested = false;
            for sf in files {
                let in_def_file = &sf.rel == rel;
                let file_is_test = sf.rel.starts_with("tests/") || sf.rel.contains("/tests/");
                for i in 0..sf.len() {
                    if !occurrence_on_line(&sf.lines[i].code, &needle) {
                        continue;
                    }
                    if in_def_file
                        && ((enum_line <= i && i <= def_end)
                            || trait_impls.iter().any(|&(s, e)| s <= i && i <= e))
                    {
                        continue;
                    }
                    if file_is_test || sf.in_test[i] {
                        tested = true;
                    } else {
                        constructed = true;
                    }
                }
            }
            if !constructed {
                out.push(Diagnostic {
                    rule: RULE,
                    file: rel.clone(),
                    line: vline + 1,
                    message: format!(
                        "`{name}::{variant}` is never constructed outside its definition \
                         (Display/Error impls excluded)"
                    ),
                });
            }
            if !tested {
                out.push(Diagnostic {
                    rule: RULE,
                    file: rel.clone(),
                    line: vline + 1,
                    message: format!("`{name}::{variant}` is not named in any test"),
                });
            }
        }
    }
}

/// Locate `enum <name>` and the line of its closing brace.
fn find_enum_span(sf: &SourceFile, name: &str) -> Option<(usize, usize)> {
    for i in 0..sf.len() {
        let code = &sf.lines[i].code;
        for pos in word_positions(code, "enum") {
            let rest = code[pos + "enum".len()..].trim_start();
            if rest.starts_with(name)
                && !matches!(
                    rest[name.len()..].chars().next(),
                    Some(c) if c.is_alphanumeric() || c == '_'
                )
            {
                let end = sf.matching_close(i, pos)?;
                return Some((i, end));
            }
        }
    }
    None
}

/// Variant names: lines inside the enum body at body depth starting with an
/// uppercase identifier (attributes and nested field lines are skipped).
fn extract_variants(sf: &SourceFile, enum_line: usize, def_end: usize) -> Vec<(usize, String)> {
    let body_depth = sf.depth[enum_line] + 1;
    let mut out = Vec::new();
    for i in (enum_line + 1)..def_end {
        if sf.depth[i] != body_depth {
            continue;
        }
        let code = sf.lines[i].code.trim();
        if code.is_empty() || code.starts_with("#[") {
            continue;
        }
        let first = code.chars().next().unwrap_or(' ');
        if !first.is_uppercase() {
            continue;
        }
        let ident: String = code
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !ident.is_empty() {
            out.push((i, ident));
        }
    }
    out
}

/// Spans of `impl Display/Error for <name>` blocks in the defining file.
/// These merely *format* the enum, so naming a variant there does not count
/// as construction; other trait impls (notably `From`) are constructors and
/// are not excluded.
fn trait_impl_spans(sf: &SourceFile, name: &str) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..sf.len() {
        let code = &sf.lines[i].code;
        let Some(&impl_pos) = word_positions(code, "impl").first() else {
            continue;
        };
        let mut is_fmt_impl = false;
        for pos in word_positions(code, "for") {
            if pos < impl_pos {
                continue;
            }
            let rest = code[pos + "for".len()..].trim_start();
            if !rest.starts_with(name) {
                continue;
            }
            // Last path segment of the trait, generics stripped.
            let trait_text = code[impl_pos + "impl".len()..pos].trim();
            let last = trait_text.rsplit("::").next().unwrap_or(trait_text);
            let last = last.split('<').next().unwrap_or(last).trim();
            if last == "Display" || last == "Debug" || last == "Error" {
                is_fmt_impl = true;
            }
        }
        if is_fmt_impl {
            if let Some(end) = sf.matching_close(i, 0) {
                out.push((i, end));
            }
        }
    }
    out
}

/// Word-boundary occurrence of `needle` (a `Path::Variant` string) in `code`.
fn occurrence_on_line(code: &str, needle: &str) -> bool {
    for (pos, _) in code.match_indices(needle) {
        let before = code[..pos].chars().next_back();
        let after = code[pos + needle.len()..].chars().next();
        let ws = !matches!(before, Some(c) if c.is_alphanumeric() || c == '_' || c == ':');
        let we = !matches!(after, Some(c) if c.is_alphanumeric() || c == '_');
        if ws && we {
            return true;
        }
    }
    false
}
