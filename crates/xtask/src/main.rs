//! CLI entry point for workspace automation tasks. Currently one subcommand:
//!
//! ```text
//! cargo run -p xtask -- lint [--json <path>]
//! ```
//!
//! Exits non-zero when the lint pass reports any diagnostic; `--json` writes
//! a machine-readable report (also on success, with an empty list) for CI
//! annotation. See the `xtask` library docs for the rule suite and the
//! suppression policy.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some(other) => {
            eprintln!("unknown subcommand `{other}`; available: lint [--json <path>]");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- lint [--json <path>]");
            ExitCode::from(2)
        }
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut json_path: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                let Some(p) = args.get(i + 1) else {
                    eprintln!("--json requires a path argument");
                    return ExitCode::from(2);
                };
                json_path = Some(PathBuf::from(p));
                i += 2;
            }
            other => {
                eprintln!("unknown lint option `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let root = workspace_root();
    let cfg = xtask::LintConfig::workspace_default(&root);
    let diags = match xtask::run_lint(&cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("higgs-lint: I/O error while scanning: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &json_path {
        if let Some(parent) = path.parent() {
            let _ = fs::create_dir_all(parent);
        }
        if let Err(e) = fs::write(path, xtask::diagnostics_to_json(&diags)) {
            eprintln!("higgs-lint: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if diags.is_empty() {
        println!("higgs-lint: clean ({} rules)", xtask::KNOWN_RULES.len() - 1);
        ExitCode::SUCCESS
    } else {
        for d in &diags {
            println!("{}", d.render());
        }
        println!("higgs-lint: {} diagnostic(s)", diags.len());
        ExitCode::FAILURE
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR/../..` (this crate lives at
/// `crates/xtask/`), falling back to the current directory.
fn workspace_root() -> PathBuf {
    if let Ok(dir) = env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(dir);
        if let Some(root) = p.parent().and_then(|p| p.parent()) {
            return root.to_path_buf();
        }
    }
    PathBuf::from(".")
}
