//! Fixture: `Ordering::` uses with no attached justification; both sites
//! below must be flagged by `atomic-ordering-comment`.

use std::sync::atomic::{AtomicUsize, Ordering};

pub static COUNT: AtomicUsize = AtomicUsize::new(0);

// A comment that is not the marker does not satisfy the rule.
pub fn bump() -> usize {
    COUNT.fetch_add(1, Ordering::SeqCst)
}

// ORDERING: too far away — this sits above the fn, not the `Ordering::` use,
// so it must NOT satisfy the rule for the load inside the body.
pub fn read() -> usize {
    COUNT.load(Ordering::Acquire)
}
