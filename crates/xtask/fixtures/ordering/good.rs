//! Fixture: every `Ordering::` use carries an attached `ORDERING:`
//! justification (preceding block or trailing); the rule must stay silent.

use std::sync::atomic::{AtomicUsize, Ordering};

pub static COUNT: AtomicUsize = AtomicUsize::new(0);

pub fn bump() -> usize {
    // ORDERING: Relaxed — a monotone diagnostic counter with no dependent
    // loads; no other memory is published through it.
    COUNT.fetch_add(1, Ordering::Relaxed)
}

pub fn read() -> usize {
    COUNT.load(Ordering::Acquire) // ORDERING: pairs with the Release store in `publish`.
}

pub fn publish() {
    // ORDERING: Release — makes the writes above visible to `read`'s
    // Acquire load.
    COUNT.store(1, Ordering::Release);
}
