//! Fixture: an `Ordering::` use with no comment — clean only when the test
//! config carries an allowlist entry matching this file and line.

use std::sync::atomic::{AtomicUsize, Ordering};

pub static LIVE_COUNT: AtomicUsize = AtomicUsize::new(0);

pub fn bump() -> usize {
    LIVE_COUNT.fetch_add(1, Ordering::SeqCst)
}
