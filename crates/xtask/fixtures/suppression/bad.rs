//! Fixture: malformed suppression tags — unknown rule, missing reason, and
//! a dangling tag — each must surface as a `lint-allow` diagnostic, and the
//! underlying findings must NOT be suppressed.

pub fn unknown_rule(v: &[u64]) -> u64 {
    // LINT-ALLOW(not-a-rule): this rule name does not exist.
    v[0]
}

pub fn missing_reason(v: &[u64]) -> u64 {
    // LINT-ALLOW(hot-path-panic)
    v[0]
}

pub fn dangling() -> u64 {
    // LINT-ALLOW(hot-path-panic): nothing beneath this tag.

    0
}
