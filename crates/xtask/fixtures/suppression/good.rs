//! Fixture: all three suppression shapes — trailing, standalone statement,
//! and fn-level — each with a reason; the hot-path rule must stay silent.

pub fn trailing(v: &[u64]) -> u64 {
    v[0] // LINT-ALLOW(hot-path-panic): caller guarantees non-empty input.
}

pub fn standalone(v: &[u64]) -> u64 {
    // LINT-ALLOW(hot-path-panic): caller guarantees non-empty input.
    v[0]
}

// LINT-ALLOW(hot-path-panic): every index below is bounded by `v.len()`.
pub fn fn_level(v: &[u64]) -> u64 {
    let mut total = 0;
    for i in 0..v.len() {
        total += v[i];
    }
    total
}
