//! Fixture bench with two drift defects: `extra_unseeded` is registered but
//! missing from the baseline, and the baseline's `demo/stale_gone` and
//! `other/mystery` ids are no longer registered anywhere.

fn run(c: &mut Criterion) {
    let mut g = c.benchmark_group("demo");
    g.bench_function("probe_small", |b| b.iter(|| 1));
    g.bench_function("extra_unseeded", |b| b.iter(|| 2));
    g.finish();
}
