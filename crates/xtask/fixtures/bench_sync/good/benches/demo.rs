//! Fixture bench: every literal id matching the CI filter (`probe`) is in
//! the committed baseline; `setup_only` falls outside the filter, so it is
//! legitimately absent from the baseline.

fn run(c: &mut Criterion) {
    let mut g = c.benchmark_group("demo");
    g.bench_function("probe_small", |b| b.iter(|| 1));
    for n in [8usize, 64] {
        g.bench_function(BenchmarkId::new("probe_sweep", n), |b| b.iter(|| n));
    }
    g.bench_function("setup_only", |b| b.iter(|| 0));
    g.finish();
}
