//! Fixture: every `unsafe` below carries a rationale; the rule must stay
//! silent.

pub fn deref(ptr: *const u8) -> u8 {
    // SAFETY: the caller guarantees `ptr` is valid for reads.
    unsafe { *ptr }
}

/// Reads one byte from `ptr`.
///
/// # Safety
///
/// `ptr` must be valid for reads of one byte.
pub unsafe fn deref_raw(ptr: *const u8) -> u8 {
    // SAFETY: validity is the caller's contract (see `# Safety` above).
    unsafe { *ptr }
}

/// Marker for types whose all-zero bit pattern is a valid value.
///
/// # Safety
///
/// Implementors must be valid when zero-initialised.
pub unsafe trait Zeroable {}

// SAFETY: the all-zero bit pattern is a valid `u64`.
unsafe impl Zeroable for u64 {}
