//! Fixture: every `unsafe` below is missing its rationale and must be
//! flagged by `unsafe-safety-comment`.

pub fn deref(ptr: *const u8) -> u8 {
    unsafe { *ptr }
}

pub unsafe fn deref_raw(ptr: *const u8) -> u8 {
    unsafe { *ptr }
}

pub unsafe trait Zeroable {}

unsafe impl Zeroable for u64 {}
