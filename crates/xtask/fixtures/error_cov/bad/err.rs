//! Fixture: `Missing` is only named by the `Display` impl (formatting does
//! not count as construction) and never appears in a test; the rule must
//! report it twice (never constructed, never tested).

pub enum DemoError {
    Broken(String),
    Missing,
}

impl std::fmt::Display for DemoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DemoError::Broken(m) => write!(f, "broken: {m}"),
            DemoError::Missing => write!(f, "missing"),
        }
    }
}

pub fn fail() -> DemoError {
    DemoError::Broken("x".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_broken_only() {
        assert!(matches!(fail(), DemoError::Broken(_)));
    }
}
