//! Fixture: both variants are constructed outside the definition (a plain
//! constructor and a `From` impl) and named in tests; the rule must stay
//! silent.

pub enum DemoError {
    Broken(String),
    Missing,
}

impl std::fmt::Display for DemoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DemoError::Broken(m) => write!(f, "broken: {m}"),
            DemoError::Missing => write!(f, "missing"),
        }
    }
}

impl From<()> for DemoError {
    fn from(_: ()) -> Self {
        DemoError::Missing
    }
}

pub fn fail() -> DemoError {
    DemoError::Broken("x".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_both_variants() {
        assert!(matches!(fail(), DemoError::Broken(_)));
        assert!(matches!(DemoError::from(()), DemoError::Missing));
    }
}
