//! Fixture: positive gate resolved through `cfg!(...)` runtime dispatch
//! instead of a `not(...)` twin; the rule must stay silent.

#[cfg(feature = "simd")]
fn wide() -> u32 {
    1
}

pub fn kernel() -> u32 {
    if cfg!(feature = "simd") {
        wide()
    } else {
        0
    }
}
