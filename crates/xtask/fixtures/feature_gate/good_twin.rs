//! Fixture: positive gate paired with its `not(...)` twin; the rule must
//! stay silent.

#[cfg(feature = "simd")]
pub fn kernel() -> u32 {
    1
}

#[cfg(not(feature = "simd"))]
pub fn kernel() -> u32 {
    0
}
