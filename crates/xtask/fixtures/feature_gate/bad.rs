//! Fixture: a `feature = "simd"` positive gate with no `not(...)` twin and
//! no runtime dispatch; `feature-gate-pairing` must flag this file.

#[cfg(feature = "simd")]
pub fn kernel() -> u32 {
    1
}
