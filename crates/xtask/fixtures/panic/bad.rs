//! Fixture: hot-path panic sources outside test code; all four functions
//! below must be flagged by `hot-path-panic`.

pub fn first(v: &[u64]) -> u64 {
    v[0]
}

pub fn pick(v: &[u64], i: usize) -> u64 {
    *v.get(i).unwrap()
}

pub fn must(v: Option<u64>) -> u64 {
    v.expect("present")
}

pub fn never() -> u64 {
    panic!("boom")
}
