//! Fixture: panic-free hot-path idioms — checked accessors, documented
//! `debug_assert!` guards, and test-only panics; the rule must stay silent.

pub fn first(v: &[u64]) -> Option<u64> {
    v.first().copied()
}

pub fn checked(v: &[u64], i: usize) -> u64 {
    debug_assert!(i < v.len(), "caller upholds the length invariant");
    v.get(i).copied().unwrap_or(0)
}

pub fn guarded(v: &[u64]) -> u64 {
    debug_assert!(
        v[0] > 0,
        "indexing inside a debug_assert! span is exempt by design"
    );
    v.iter().sum()
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        let v = [1u64, 2];
        assert_eq!(v[0], 1);
        let _ = Some(3u64).unwrap();
        let _ = Some(4u64).expect("present");
    }
}
