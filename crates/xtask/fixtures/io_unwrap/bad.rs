//! Fixture: durability I/O code that panics instead of propagating errors.

use std::fs::File;
use std::io::Write;

pub fn append(path: &str, body: &[u8]) {
    // Both sites are flagged: I/O faults must surface as typed errors.
    let mut file = File::create(path).expect("create journal");
    file.write_all(body).unwrap();
}
