//! Fixture: durability I/O code on its best behaviour — typed errors on
//! I/O paths, poisoned-lock expects and test code exempt.

use std::fs::File;
use std::io::Write;
use std::sync::RwLock;

pub fn append(path: &str, body: &[u8]) -> std::io::Result<()> {
    let mut file = File::create(path)?;
    file.write_all(body)?;
    Ok(())
}

pub fn snapshot(lock: &RwLock<Vec<u8>>) -> usize {
    // Lock acquisition: a poisoned lock means a writer already panicked,
    // and propagating that panic is the workspace convention.
    let guard = lock.read().expect("shard lock poisoned");
    let held = lock.write().expect("shard lock poisoned").len();
    held + guard.len()
}

pub fn invariant(first: Option<u64>) -> u64 {
    first.expect("at least one shard") // LINT-ALLOW(durability-io-panic): config validation rejects zero shards
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        std::fs::read("missing").unwrap_err();
    }
}
