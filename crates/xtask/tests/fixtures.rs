//! Fixture-driven positive/negative tests for every lint rule and for the
//! suppression-tag machinery. Each rule has at least one committed fixture
//! that fails it and one that passes it, so a regression in either direction
//! (rule goes blind / rule over-fires) breaks this suite.

use std::path::{Path, PathBuf};
use xtask::{lint_single, run_lint, Diagnostic, LintConfig};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn fixture(rel: &str) -> String {
    let path = fixture_dir().join(rel);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

/// A config with everything disabled; tests opt into the pieces they need.
fn base_cfg() -> LintConfig {
    LintConfig {
        root: PathBuf::new(),
        hot_paths: Vec::new(),
        ordering_allowlist: Vec::new(),
        ordering_exempt: Vec::new(),
        error_enums: Vec::new(),
        durability_paths: Vec::new(),
        ci_file: None,
        bench_dir: String::new(),
        baseline_dir: String::new(),
        skip: Vec::new(),
    }
}

fn rule_count(diags: &[Diagnostic], rule: &str) -> usize {
    diags.iter().filter(|d| d.rule == rule).count()
}

fn render_all(diags: &[Diagnostic]) -> String {
    diags
        .iter()
        .map(|d| d.render())
        .collect::<Vec<_>>()
        .join("\n")
}

// --- rule 1: unsafe-safety-comment -----------------------------------------

#[test]
fn safety_rule_flags_each_unjustified_unsafe() {
    let diags = lint_single(&base_cfg(), "src/lib.rs", &fixture("safety/bad.rs"));
    // unsafe block in `deref`, `unsafe fn deref_raw` + its inner block,
    // `unsafe trait`, `unsafe impl` — five sites, all bare.
    assert_eq!(
        rule_count(&diags, "unsafe-safety-comment"),
        5,
        "{}",
        render_all(&diags)
    );
}

#[test]
fn safety_rule_accepts_safety_comments_and_doc_sections() {
    let diags = lint_single(&base_cfg(), "src/lib.rs", &fixture("safety/good.rs"));
    assert!(diags.is_empty(), "{}", render_all(&diags));
}

// --- rule 2: atomic-ordering-comment ----------------------------------------

#[test]
fn ordering_rule_flags_unjustified_and_detached_sites() {
    let diags = lint_single(&base_cfg(), "src/lib.rs", &fixture("ordering/bad.rs"));
    // The bare SeqCst site and the site whose ORDERING comment sits above
    // the fn instead of the use; the `use ...::Ordering` import is exempt.
    assert_eq!(
        rule_count(&diags, "atomic-ordering-comment"),
        2,
        "{}",
        render_all(&diags)
    );
}

#[test]
fn ordering_rule_accepts_preceding_and_trailing_justifications() {
    let diags = lint_single(&base_cfg(), "src/lib.rs", &fixture("ordering/good.rs"));
    assert!(diags.is_empty(), "{}", render_all(&diags));
}

#[test]
fn ordering_allowlist_exempts_only_matching_sites() {
    let text = fixture("ordering/allowlisted.rs");
    let rel = "crates/demo/src/lib.rs";
    let without = lint_single(&base_cfg(), rel, &text);
    assert_eq!(rule_count(&without, "atomic-ordering-comment"), 1);

    let mut cfg = base_cfg();
    cfg.ordering_allowlist = vec![("src/lib.rs".into(), "LIVE_COUNT".into())];
    let with = lint_single(&cfg, rel, &text);
    assert!(with.is_empty(), "{}", render_all(&with));
}

#[test]
fn ordering_exempt_prefix_silences_whole_subtree() {
    let mut cfg = base_cfg();
    cfg.ordering_exempt = vec!["crates/shims/".into()];
    let diags = lint_single(&cfg, "crates/shims/src/lib.rs", &fixture("ordering/bad.rs"));
    assert!(diags.is_empty(), "{}", render_all(&diags));
}

// --- rule 3: hot-path-panic --------------------------------------------------

fn hot_cfg(rel: &str) -> LintConfig {
    let mut cfg = base_cfg();
    cfg.hot_paths = vec![rel.to_string()];
    cfg
}

#[test]
fn panic_rule_flags_unwrap_expect_panic_and_indexing() {
    let rel = "crates/demo/src/hot.rs";
    let diags = lint_single(&hot_cfg(rel), rel, &fixture("panic/bad.rs"));
    assert_eq!(
        rule_count(&diags, "hot-path-panic"),
        4,
        "{}",
        render_all(&diags)
    );
}

#[test]
fn panic_rule_ignores_tests_debug_asserts_and_checked_accessors() {
    let rel = "crates/demo/src/hot.rs";
    let diags = lint_single(&hot_cfg(rel), rel, &fixture("panic/good.rs"));
    assert!(diags.is_empty(), "{}", render_all(&diags));
}

#[test]
fn panic_rule_only_applies_to_declared_hot_paths() {
    // The same panicky file is clean when it is not a declared hot path.
    let diags = lint_single(
        &base_cfg(),
        "crates/demo/src/cold.rs",
        &fixture("panic/bad.rs"),
    );
    assert!(diags.is_empty(), "{}", render_all(&diags));
}

// --- rule 4: feature-gate-pairing --------------------------------------------

#[test]
fn feature_gate_rule_flags_unpaired_positive_gate() {
    let diags = lint_single(
        &base_cfg(),
        "crates/demo/src/lib.rs",
        &fixture("feature_gate/bad.rs"),
    );
    assert_eq!(
        rule_count(&diags, "feature-gate-pairing"),
        1,
        "{}",
        render_all(&diags)
    );
}

#[test]
fn feature_gate_rule_accepts_not_twin() {
    let diags = lint_single(
        &base_cfg(),
        "crates/demo/src/lib.rs",
        &fixture("feature_gate/good_twin.rs"),
    );
    assert!(diags.is_empty(), "{}", render_all(&diags));
}

#[test]
fn feature_gate_rule_accepts_runtime_dispatch() {
    let diags = lint_single(
        &base_cfg(),
        "crates/demo/src/lib.rs",
        &fixture("feature_gate/good_runtime.rs"),
    );
    assert!(diags.is_empty(), "{}", render_all(&diags));
}

#[test]
fn feature_gate_rule_skips_non_library_files() {
    // Bench/test/fixture sources may be one-sided by design.
    let diags = lint_single(
        &base_cfg(),
        "benches/demo.rs",
        &fixture("feature_gate/bad.rs"),
    );
    assert!(diags.is_empty(), "{}", render_all(&diags));
}

// --- suppression tags --------------------------------------------------------

#[test]
fn suppression_tags_with_reasons_cover_line_statement_and_fn() {
    let rel = "crates/demo/src/hot.rs";
    let diags = lint_single(&hot_cfg(rel), rel, &fixture("suppression/good.rs"));
    assert!(diags.is_empty(), "{}", render_all(&diags));
}

#[test]
fn malformed_suppression_tags_are_diagnostics_and_do_not_suppress() {
    let rel = "crates/demo/src/hot.rs";
    let diags = lint_single(&hot_cfg(rel), rel, &fixture("suppression/bad.rs"));
    // Unknown rule, missing reason, dangling tag.
    assert_eq!(
        rule_count(&diags, "lint-allow"),
        3,
        "{}",
        render_all(&diags)
    );
    // The two `v[0]` sites under the broken tags must still be reported.
    assert_eq!(
        rule_count(&diags, "hot-path-panic"),
        2,
        "{}",
        render_all(&diags)
    );
}

// --- rule 5: bench-baseline-sync ---------------------------------------------

fn bench_cfg(tree: &str) -> LintConfig {
    let mut cfg = base_cfg();
    cfg.root = fixture_dir().join("bench_sync").join(tree);
    cfg.ci_file = Some("ci.yml".into());
    cfg.bench_dir = "benches".into();
    cfg
}

#[test]
fn bench_rule_accepts_synced_tree_and_honours_ci_filter() {
    // `setup_only` is registered but outside the CI `--test probe` filter,
    // so its absence from the baseline is legitimate.
    let diags = run_lint(&bench_cfg("good")).expect("walk good tree");
    assert!(diags.is_empty(), "{}", render_all(&diags));
}

#[test]
fn bench_rule_reports_orphan_missing_stale_and_unknown_ids() {
    let diags = run_lint(&bench_cfg("bad")).expect("walk bad tree");
    let msgs = render_all(&diags);
    assert_eq!(rule_count(&diags, "bench-baseline-sync"), 5, "{msgs}");
    for needle in [
        "BENCH_orphan.json` is not referenced",
        "BENCH_orphan.json` has no BENCH_JSON smoke-run mapping",
        "demo/extra_unseeded` is registered here but missing",
        "stale baseline id `demo/stale_gone`",
        "names group `other` which",
    ] {
        assert!(msgs.contains(needle), "missing {needle:?} in:\n{msgs}");
    }
}

// --- rule 6: error-variant-coverage ------------------------------------------

fn error_cfg(tree: &str) -> LintConfig {
    let mut cfg = base_cfg();
    cfg.root = fixture_dir().join("error_cov").join(tree);
    cfg.error_enums = vec![("err.rs".into(), "DemoError".into())];
    cfg
}

#[test]
fn error_rule_accepts_constructed_and_tested_variants() {
    // `Broken` via a plain constructor, `Missing` via a `From` impl — both
    // count as construction; the `Display` arms do not.
    let diags = run_lint(&error_cfg("good")).expect("walk good tree");
    assert!(diags.is_empty(), "{}", render_all(&diags));
}

#[test]
fn error_rule_reports_unconstructed_and_untested_variant() {
    let diags = run_lint(&error_cfg("bad")).expect("walk bad tree");
    let msgs = render_all(&diags);
    assert_eq!(rule_count(&diags, "error-variant-coverage"), 2, "{msgs}");
    assert!(
        msgs.contains("`DemoError::Missing` is never constructed"),
        "{msgs}"
    );
    assert!(
        msgs.contains("`DemoError::Missing` is not named in any test"),
        "{msgs}"
    );
}

// --- rule 7: durability-io-panic ----------------------------------------------

fn durability_cfg(rel: &str) -> LintConfig {
    let mut cfg = base_cfg();
    cfg.durability_paths = vec![rel.to_string()];
    cfg
}

#[test]
fn io_unwrap_rule_flags_panicking_io_paths() {
    let rel = "crates/demo/src/journal.rs";
    let diags = lint_single(&durability_cfg(rel), rel, &fixture("io_unwrap/bad.rs"));
    assert_eq!(
        rule_count(&diags, "durability-io-panic"),
        2,
        "{}",
        render_all(&diags)
    );
}

#[test]
fn io_unwrap_rule_exempts_locks_tests_and_tagged_invariants() {
    let rel = "crates/demo/src/journal.rs";
    let diags = lint_single(&durability_cfg(rel), rel, &fixture("io_unwrap/good.rs"));
    assert!(diags.is_empty(), "{}", render_all(&diags));
}

#[test]
fn io_unwrap_rule_only_applies_to_declared_durability_modules() {
    let diags = lint_single(
        &base_cfg(),
        "crates/demo/src/other.rs",
        &fixture("io_unwrap/bad.rs"),
    );
    assert!(diags.is_empty(), "{}", render_all(&diags));
}

// --- JSON output -------------------------------------------------------------

#[test]
fn json_report_escapes_and_counts() {
    let diags = vec![Diagnostic {
        rule: "hot-path-panic",
        file: "crates/demo/src/hot.rs".into(),
        line: 7,
        message: "slice indexing `[...]` with a \"quote\"".into(),
    }];
    let json = xtask::diagnostics_to_json(&diags);
    assert!(json.contains("\"count\":1"), "{json}");
    assert!(json.contains("\\\"quote\\\""), "{json}");
    assert!(json.contains("\"line\":7"), "{json}");
}
