//! Meta-tests against the real workspace: the tree must lint clean, and the
//! safety rule must actually be load-bearing — deleting any `// SAFETY:`
//! comment from the SIMD kernels must produce a finding.

use std::path::Path;
use xtask::{lint_single, run_lint, LintConfig};

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn live_tree_is_clean() {
    let cfg = LintConfig::workspace_default(&workspace_root());
    let diags = run_lint(&cfg).expect("lint walk succeeds");
    assert!(
        diags.is_empty(),
        "the workspace must lint clean; fix or justify each finding:\n{}",
        diags
            .iter()
            .map(|d| d.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_safety_comment_in_simd_kernels_is_load_bearing() {
    let root = workspace_root();
    let rel = "crates/common/src/simd.rs";
    let text = std::fs::read_to_string(root.join(rel)).expect("simd.rs readable");
    let cfg = LintConfig::workspace_default(&root);

    let baseline = lint_single(&cfg, rel, &text);
    assert!(
        baseline.is_empty(),
        "simd.rs must start clean:\n{}",
        baseline
            .iter()
            .map(|d| d.render())
            .collect::<Vec<_>>()
            .join("\n")
    );

    let lines: Vec<&str> = text.lines().collect();
    let safety_lines: Vec<usize> = lines
        .iter()
        .enumerate()
        .filter(|(_, l)| l.trim_start().starts_with("//") && l.contains("SAFETY:"))
        .map(|(i, _)| i)
        .collect();
    assert!(
        safety_lines.len() >= 5,
        "expected several SAFETY comments in simd.rs, found {}",
        safety_lines.len()
    );

    for &removed in &safety_lines {
        let mutated: String = lines
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != removed)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        let diags = lint_single(&cfg, rel, &mutated);
        assert!(
            diags.iter().any(|d| d.rule == "unsafe-safety-comment"),
            "deleting the SAFETY comment on line {} produced no finding",
            removed + 1
        );
    }
}
