//! Criterion bench for the plan-sharing batch executor: path and subgraph
//! workloads evaluated three ways over the same HIGGS summary —
//!
//! * `per_hop_loop` — the legacy [`SummaryExt`] composition: every hop of a
//!   path (and every edge of a subgraph) runs its own Algorithm-3 boundary
//!   search (the primitive surface bypasses the plan cache),
//! * `typed_single` — `summary.query(&q)` per query: one plan per query,
//!   shared across its hops/edges and served from the cross-batch plan
//!   cache once warm,
//! * `batched` — `summary.query_batch(&qs)`: at most one boundary search per
//!   *distinct time range* in the whole batch (zero once the cache is warm),
//!   evaluated columnar.
//!
//! The workloads model production windows: many queries share a handful of
//! sliding windows, which is where plan sharing pays.

use criterion::{criterion_group, criterion_main, Criterion};
use higgs::{HiggsConfig, HiggsSummary};
use higgs_common::generator::{DatasetPreset, ExperimentScale, WorkloadBuilder};
use higgs_common::{Query, SummaryExt, TemporalGraphSummary, TimeRange};
use std::hint::black_box;

/// Evenly spaced sliding windows over the stream span.
fn windows(span: TimeRange, count: u64) -> Vec<TimeRange> {
    let width = (span.len() / (count + 1)).max(1);
    (0..count)
        .map(|i| {
            let start = span.start + i * width;
            TimeRange::new(start, (start + width * 2 - 1).min(span.end))
        })
        .collect()
}

fn bench_query_batch(c: &mut Criterion) {
    let stream = DatasetPreset::Lkml.generate(ExperimentScale::Smoke);
    let span = stream.time_span().unwrap();
    let mut summary = HiggsSummary::new(HiggsConfig::paper_default());
    summary.insert_all(stream.edges());

    // 48 six-hop path queries over 4 shared windows (12 per window).
    let mut builder = WorkloadBuilder::new(&stream, 46);
    let path_windows = windows(span, 4);
    let paths: Vec<_> = builder
        .path_queries(48, 6, span.len() / 4)
        .into_iter()
        .enumerate()
        .map(|(i, mut q)| {
            q.range = path_windows[i % path_windows.len()];
            q
        })
        .collect();
    let path_batch: Vec<Query> = paths.iter().cloned().map(Query::Path).collect();

    // 8 subgraph queries of 150 edges over 2 shared windows.
    let sub_windows = windows(span, 2);
    let subs: Vec<_> = builder
        .subgraph_queries(8, 150, span.len() / 4)
        .into_iter()
        .enumerate()
        .map(|(i, mut q)| {
            q.range = sub_windows[i % sub_windows.len()];
            q
        })
        .collect();
    let sub_batch: Vec<Query> = subs.iter().cloned().map(Query::Subgraph).collect();

    // Sanity before any bench warms the plan cache: batching must not change
    // results, and a cold batch builds exactly one plan per distinct range.
    let mixed_check: Vec<Query> = path_batch.iter().chain(&sub_batch).cloned().collect();
    summary.reset_plan_count();
    let batched = summary.query_batch(&mixed_check);
    assert_eq!(summary.plans_built(), 6, "4 path + 2 subgraph windows");
    let looped: Vec<u64> = mixed_check.iter().map(|q| summary.query(q)).collect();
    assert_eq!(batched, looped);
    // From here on the cache is warm: re-submitted windows skip planning.
    summary.reset_plan_count();
    assert_eq!(summary.query_batch(&mixed_check), batched);
    assert_eq!(summary.plans_built(), 0, "warm batch must not re-plan");

    let mut group = c.benchmark_group("query_batch");
    group.sample_size(15);

    group.bench_function("path/per_hop_loop", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for q in &paths {
                acc += summary.path_query(q);
            }
            black_box(acc)
        })
    });
    group.bench_function("path/typed_single", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for q in &path_batch {
                acc += summary.query(q);
            }
            black_box(acc)
        })
    });
    group.bench_function("path/batched", |b| {
        b.iter(|| black_box(summary.query_batch(&path_batch)))
    });

    group.bench_function("subgraph/per_edge_loop", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for q in &subs {
                acc += summary.subgraph_query(q);
            }
            black_box(acc)
        })
    });
    group.bench_function("subgraph/typed_single", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for q in &sub_batch {
                acc += summary.query(q);
            }
            black_box(acc)
        })
    });
    group.bench_function("subgraph/batched", |b| {
        b.iter(|| black_box(summary.query_batch(&sub_batch)))
    });

    // Probe-dominated columnar sweep: a large edge+vertex batch over a
    // handful of shared windows. Plans are shared and cheap; nearly all the
    // time is the sorted, software-prefetched probe sweep over leaf and
    // aggregate slabs — the path the `columnar_prefetch` gate id tracks.
    let probe_windows = windows(span, 4);
    let mut probe_batch: Vec<Query> = builder
        .edge_queries(1024, span.len() / 4)
        .into_iter()
        .enumerate()
        .map(|(i, mut q)| {
            q.range = probe_windows[i % probe_windows.len()];
            Query::Edge(q)
        })
        .collect();
    probe_batch.extend(
        builder
            .vertex_queries(512, span.len() / 4)
            .into_iter()
            .enumerate()
            .map(|(i, mut q)| {
                q.range = probe_windows[i % probe_windows.len()];
                Query::Vertex(q)
            }),
    );
    group.bench_function("columnar_prefetch/edge_vertex_1536", |b| {
        b.iter(|| black_box(summary.query_batch(&probe_batch)))
    });

    // A mixed production-style batch: everything above in one call.
    let mixed: Vec<Query> = path_batch.iter().chain(&sub_batch).cloned().collect();
    group.bench_function("mixed/per_query_loop", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for q in &mixed {
                acc += summary.query(q);
            }
            black_box(acc)
        })
    });
    group.bench_function("mixed/batched", |b| {
        b.iter(|| black_box(summary.query_batch(&mixed)))
    });
    group.finish();
}

criterion_group!(benches, bench_query_batch);
criterion_main!(benches);
