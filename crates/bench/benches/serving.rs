//! Criterion bench for the serving front-end: 128 simulated clients sharing
//! 16 distinct sliding windows, submitted through one [`HiggsService`]
//! admission loop versus 128 independent `query()` calls on a bare
//! [`ShardedHiggs`].
//!
//! Four ids, all at 4 shards on a Smoke-scale Lkml stream:
//!
//! * `independent/128` — the pre-serving baseline: every simulated client
//!   runs its own `query()` call against the sharded summary, so each call
//!   pays its own flush check and per-shard dispatch.
//! * `coalesced/128` — the same 128 queries submitted as tickets through
//!   [`ServiceClient`]s and admitted in ticks: the admission loop shares
//!   one coalesced plan per (window, shard) across all clients and runs one
//!   columnar `query_batch` per shard per tick.
//! * `client_p50/128` / `client_p99/128` — client-observed latency
//!   percentiles inside one coalesced wave (time from wave start until each
//!   ticket's result is in hand), recorded via `iter_custom`. The p99 id is
//!   the latency gate: coalesced admission must keep the tail under control
//!   precisely where 128 independent calls pile up.
//!
//! Every wave's results are asserted bit-identical to the unserved summary
//! before any number is trusted. All ids feed `BENCH_serving.json` for the
//! CI perf-regression gate (see the `bench_gate` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use higgs::{HiggsConfig, HiggsService, ShardedHiggs};
use higgs_common::generator::{DatasetPreset, ExperimentScale};
use higgs_common::{Query, TemporalGraphSummary, TimeRange};
use std::hint::black_box;
use std::time::{Duration, Instant};

const CLIENTS: usize = 128;
const WINDOWS: u64 = 16;
const SHARDS: usize = 4;

/// The 128 simulated client queries: the replicated-dashboard shape. The
/// fleet watches 16 distinct (window, chain) screens — a 6-vertex path
/// query per sliding window — and every screen is open on 8 replicas, so
/// the 128 submissions contain only 16 distinct queries. Independent
/// `query()` calls re-evaluate every duplicate; the coalesced admission
/// path dedups them into one columnar probe set per shard.
fn client_queries(stream: &higgs_common::GraphStream) -> Vec<Query> {
    let span = stream.time_span().expect("non-empty stream");
    let window = (span.len() / (WINDOWS + 2)).max(1);
    let hot: Vec<&higgs_common::StreamEdge> = stream.iter().step_by(97).take(CLIENTS).collect();
    let screens: Vec<Query> = (0..WINDOWS)
        .map(|w| {
            let start = span.start + w * window;
            let range = TimeRange::new(start, (start + 3 * window).min(span.end));
            let e = hot[w as usize % hot.len()];
            let f = hot[(w as usize + 7) % hot.len()];
            let g = hot[(w as usize + 19) % hot.len()];
            Query::path(vec![e.src, e.dst, f.src, f.dst, g.src, g.dst], range)
        })
        .collect();
    (0..CLIENTS)
        .map(|i| screens[i % screens.len()].clone())
        .collect()
}

/// Submits every query as its own ticket (one per simulated client) and
/// waits for all of them, returning per-client latencies from wave start.
fn coalesced_wave(
    clients: &[higgs::ServiceClient],
    queries: &[Query],
) -> (Vec<u64>, Vec<Duration>) {
    let wave_start = Instant::now();
    let tickets: Vec<_> = clients
        .iter()
        .zip(queries)
        .map(|(client, q)| client.submit(q.clone()))
        .collect();
    let mut results = Vec::with_capacity(tickets.len());
    let mut latencies = Vec::with_capacity(tickets.len());
    for ticket in tickets {
        results.push(ticket.wait().expect("live service"));
        latencies.push(wave_start.elapsed());
    }
    (results, latencies)
}

fn percentile(latencies: &mut [Duration], p: f64) -> Duration {
    latencies.sort_unstable();
    let rank = ((latencies.len() as f64 - 1.0) * p).round() as usize;
    latencies[rank]
}

fn bench_serving(c: &mut Criterion) {
    let stream = DatasetPreset::Lkml.generate(ExperimentScale::Smoke);
    let queries = client_queries(&stream);

    let mut direct = ShardedHiggs::new(
        HiggsConfig::builder()
            .shards(SHARDS)
            .build()
            .expect("valid configuration"),
    );
    direct.insert_all(stream.edges());
    direct.flush();
    let expected: Vec<u64> = queries.iter().map(|q| direct.query(q)).collect();

    // A short tick lets a whole submission wave land in one coalesced
    // admission; the clients live across waves, as real replicas would.
    let config = HiggsConfig::builder()
        .shards(SHARDS)
        .admission_tick(Duration::from_micros(20))
        .build()
        .expect("valid configuration");
    let service = HiggsService::new(config);
    let clients: Vec<higgs::ServiceClient> = (0..CLIENTS).map(|_| service.client()).collect();
    clients[0].insert_all(stream.edges()).expect("live service");
    clients[0].flush();

    // Coalescing must never change answers: verify one wave bit-for-bit
    // against the unserved summary before trusting any latency number.
    let (served, _) = coalesced_wave(&clients, &queries);
    assert_eq!(
        served, expected,
        "served wave diverged from the unserved summary"
    );

    let mut group = c.benchmark_group("serving");
    group.sample_size(15);
    group.throughput(Throughput::Elements(CLIENTS as u64));

    // 128 independent query() calls: the old per-caller surface, each call
    // paying its own flush check and dispatch.
    group.bench_with_input(
        BenchmarkId::new("independent", CLIENTS),
        &queries,
        |b, queries| {
            b.iter(|| {
                let results: Vec<u64> = queries.iter().map(|q| direct.query(q)).collect();
                black_box(results)
            })
        },
    );

    // The same 128 clients through the admission loop.
    group.bench_with_input(
        BenchmarkId::new("coalesced", CLIENTS),
        &queries,
        |b, queries| b.iter(|| black_box(coalesced_wave(&clients, queries).0)),
    );

    // Client-observed latency percentiles within a coalesced wave.
    for (name, p) in [("client_p50", 0.50), ("client_p99", 0.99)] {
        group.bench_with_input(BenchmarkId::new(name, CLIENTS), &queries, |b, queries| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let (results, mut latencies) = coalesced_wave(&clients, queries);
                    black_box(results);
                    total += percentile(&mut latencies, p);
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
