//! Criterion bench for elastic resharding: what a shard-count change costs,
//! offline and online.
//!
//! Three ids over the same synthetic stream (seeded into an elastic durable
//! directory, snapshotted so the manifest carries the configuration):
//!
//! * `offline/2_to_4` — `Store::open_resharded`: read every history
//!   generation, refold at the new width, commit the snapshot, arm writers.
//! * `offline/4_to_2` — the narrowing direction (same history, fewer
//!   target pipelines).
//! * `online/2_to_4` — `ShardedHiggs::reshard` on a live service: fence the
//!   fleet, refold, commit, swap the writer set.
//!
//! Fold correctness is asserted (item census survives the refold) before
//! any number is trusted. All ids feed `BENCH_resharding.json` for the CI
//! perf-regression gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use higgs::{HiggsConfig, JournalMode, ShardedHiggs, Store, StoreOptions};
use higgs_common::{StreamEdge, TemporalGraphSummary};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const EDGES: u64 = 8_192;

fn stream() -> Vec<StreamEdge> {
    (0..EDGES)
        .map(|i| StreamEdge::new(i % 512, (i * 31) % 512, 1 + i % 5, i))
        .collect()
}

fn config(shards: usize) -> HiggsConfig {
    HiggsConfig::builder()
        .shards(shards)
        .journal_mode(JournalMode::Buffered)
        .build()
        .expect("valid elastic configuration")
}

fn fresh_dir(tag: &str, seq: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "higgs-bench-reshard-{tag}-{}-{seq}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Seeds an elastic directory at `shards` with the stream and a snapshot
/// manifest (an offline refold takes its configuration from the manifest).
fn seed(dir: &PathBuf, shards: usize, edges: &[StreamEdge]) {
    let mut service = Store::open(StoreOptions::durable(config(shards), dir).elastic(true))
        .expect("elastic durable service");
    service.insert_all(edges);
    service.flush();
    service.snapshot_to_dir(dir).expect("seed snapshot");
}

fn bench_resharding(c: &mut Criterion) {
    let edges = stream();

    let mut group = c.benchmark_group("resharding");
    group.sample_size(10);
    group.throughput(Throughput::Elements(EDGES));

    // Offline refolds: the directory is seeded once per direction; every
    // timed open folds the identical history. (A refold does not consume
    // the history, so the directory is reusable across iterations.)
    for (tag, from, to) in [("2_to_4", 2usize, 4usize), ("4_to_2", 4, 2)] {
        let dir = fresh_dir(tag, 0);
        seed(&dir, from, &edges);
        group.bench_with_input(BenchmarkId::new("offline", tag), &dir, |b, dir| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let start = Instant::now();
                    let resharded =
                        ShardedHiggs::restore_resharded(dir, to).expect("offline refold");
                    total += start.elapsed();
                    assert_eq!(
                        resharded.total_items(),
                        EDGES,
                        "the refold must carry the full stream"
                    );
                    black_box(resharded.num_shards());
                    drop(resharded);
                }
                total
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Online reshard: fence + refold + swap on a live service. The service
    // build (ingest, flush) stays outside the clock; each iteration pays
    // one full 2 -> 4 swap.
    group.bench_with_input(BenchmarkId::new("online", "2_to_4"), &edges, |b, edges| {
        let mut seq = 0u64;
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let dir = fresh_dir("online", seq);
                seq += 1;
                let mut service = Store::open(StoreOptions::durable(config(2), &dir).elastic(true))
                    .expect("elastic durable service");
                service.insert_all(edges);
                service.flush();
                let start = Instant::now();
                service.reshard(4).expect("online reshard");
                total += start.elapsed();
                assert_eq!(service.num_shards(), 4);
                assert_eq!(service.total_items(), EDGES);
                drop(service);
                let _ = std::fs::remove_dir_all(&dir);
            }
            total
        })
    });

    group.finish();
}

criterion_group!(benches, bench_resharding);
criterion_main!(benches);
