//! Criterion bench for the sharded service layer: ingest throughput and
//! batch-query latency at 1/2/4/8 shards against the single-summary and
//! [`ParallelHiggs`] baselines, all at Smoke scale on the Lkml preset.
//!
//! Three sub-groups:
//!
//! * `ingest/*` — the **ingest-path** throughput: the time the ingest caller
//!   itself spends getting the whole stream accepted. For the single summary
//!   this is the full synchronous insert (leaf insertion + inline
//!   aggregation); for `ParallelHiggs` it is insertion with aggregation
//!   handed to workers; for `ShardedHiggs` it is routing + enqueueing, with
//!   both insertion and aggregation handed to the per-shard writers — the
//!   Section IV-C idea applied twice. This is the sustainable service ingest
//!   rate when writer cores are available; instances are torn down with
//!   [`ShardedHiggs::discard_pending`] outside the timed region so backlog
//!   processing never pollutes the measurement.
//! * `ingest_complete/*` — end-to-end completion: `insert_all` **plus**
//!   `flush`, i.e. every leaf inserted and every aggregate installed. On a
//!   single-core runner this converges to total-work time regardless of
//!   sharding; on multi-core hardware it tracks the real scale-out.
//! * `query_batch/*` — serving latency of one mixed plan-sharing batch
//!   (edge/vertex/path/subgraph over a handful of windows) against fully
//!   built summaries.
//!
//! All ids feed `BENCH_sharding.json` for the CI perf-regression gate (see
//! the `bench_gate` binary).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use higgs::{HiggsConfig, HiggsSummary, ParallelHiggs};
use higgs_bench::competitors::build_sharded_higgs;
use higgs_common::generator::{DatasetPreset, ExperimentScale, WorkloadBuilder};
use higgs_common::{Query, TemporalGraphSummary};
use std::hint::black_box;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Concatenated copies of the Smoke stream in the ingest benches. A single
/// Smoke pass enqueues in ~30 µs on a sharded service — far too short to
/// gate at ±25% on a busy runner — so the ingest benches measure
/// `INGEST_PASSES` time-shifted copies back to back, keeping every timed
/// region comfortably above scheduler-noise scale.
const INGEST_PASSES: u64 = 8;

/// The Smoke stream repeated `INGEST_PASSES` times, each copy shifted past
/// the previous one so the concatenation is still a valid time-ordered
/// stream.
fn long_stream() -> Vec<higgs_common::StreamEdge> {
    let stream = DatasetPreset::Lkml.generate(ExperimentScale::Smoke);
    let span = stream.time_span().expect("non-empty stream").end + 1;
    let mut edges = Vec::with_capacity(stream.len() * INGEST_PASSES as usize);
    for pass in 0..INGEST_PASSES {
        edges.extend(stream.iter().map(|e| {
            let mut shifted = *e;
            shifted.timestamp += pass * span;
            shifted
        }));
    }
    edges
}

fn bench_ingest(c: &mut Criterion) {
    let edges = long_stream();
    let edges = edges.as_slice();
    let mut group = c.benchmark_group("sharding");
    group.sample_size(10);
    group.throughput(Throughput::Elements(edges.len() as u64));

    // Ingest-path throughput (see module docs for what is and isn't timed).
    group.bench_function("ingest/single", |b| {
        b.iter_batched(
            || HiggsSummary::new(HiggsConfig::paper_default()),
            |mut summary| {
                summary.insert_all(edges);
                summary
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("ingest/parallel/2", |b| {
        b.iter_batched(
            || ParallelHiggs::new(HiggsConfig::paper_default(), 2),
            |mut summary| {
                summary.insert_all(edges);
                summary
            },
            BatchSize::SmallInput,
        )
    });
    for shards in SHARD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("ingest/sharded", shards),
            &shards,
            |b, &shards| {
                b.iter_batched(
                    || build_sharded_higgs(shards),
                    |mut service| {
                        service.insert_all(edges);
                        // Teardown (outside the timed region) should shed the
                        // backlog instead of working it off.
                        service.discard_pending();
                        service
                    },
                    BatchSize::SmallInput,
                )
            },
        );
    }

    // End-to-end completion: everything inserted and aggregated. The single
    // summary is synchronous, so its completion time IS `ingest/single`
    // above — re-measuring it here would only add a second gate id that can
    // drift from the first through noise.
    group.bench_function("ingest_complete/parallel/2", |b| {
        b.iter_batched(
            || ParallelHiggs::new(HiggsConfig::paper_default(), 2),
            |mut summary| {
                summary.insert_all(edges);
                summary.flush();
                summary
            },
            BatchSize::SmallInput,
        )
    });
    for shards in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("ingest_complete/sharded", shards),
            &shards,
            |b, &shards| {
                b.iter_batched(
                    || build_sharded_higgs(shards),
                    |mut service| {
                        service.insert_all(edges);
                        service.flush();
                        service
                    },
                    BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

/// A production-style mixed batch: edge, vertex (both directions), path and
/// subgraph queries spread over four shared sliding windows.
fn mixed_batch(stream: &higgs_common::GraphStream) -> Vec<Query> {
    let span = stream.time_span().expect("non-empty stream");
    let mut builder = WorkloadBuilder::new(stream, 46);
    let window = (span.len() / 5).max(1);
    let windows: Vec<higgs_common::TimeRange> = (0..4u64)
        .map(|i| {
            let start = span.start + i * window;
            higgs_common::TimeRange::new(start, (start + 2 * window).min(span.end))
        })
        .collect();
    let mut batch = Vec::new();
    for (i, q) in builder.edge_queries(64, window).into_iter().enumerate() {
        let mut q = q;
        q.range = windows[i % windows.len()];
        batch.push(Query::Edge(q));
    }
    for (i, q) in builder.vertex_queries(64, window).into_iter().enumerate() {
        let mut q = q;
        q.range = windows[i % windows.len()];
        batch.push(Query::Vertex(q));
    }
    for (i, q) in builder.path_queries(16, 4, window).into_iter().enumerate() {
        let mut q = q;
        q.range = windows[i % windows.len()];
        batch.push(Query::Path(q));
    }
    for (i, q) in builder
        .subgraph_queries(8, 24, window)
        .into_iter()
        .enumerate()
    {
        let mut q = q;
        q.range = windows[i % windows.len()];
        batch.push(Query::Subgraph(q));
    }
    batch
}

fn bench_query_batch(c: &mut Criterion) {
    let stream = DatasetPreset::Lkml.generate(ExperimentScale::Smoke);
    let batch = mixed_batch(&stream);

    let mut single = HiggsSummary::new(HiggsConfig::paper_default());
    single.insert_all(stream.edges());

    let mut group = c.benchmark_group("sharding");
    group.sample_size(15);
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.bench_function("query_batch/single", |b| {
        b.iter(|| black_box(single.query_batch(&batch)))
    });
    for shards in SHARD_COUNTS {
        let mut service = build_sharded_higgs(shards);
        service.insert_all(stream.edges());
        service.flush();
        group.bench_with_input(
            BenchmarkId::new("query_batch/sharded", shards),
            &batch,
            |b, batch| b.iter(|| black_box(service.query_batch(batch))),
        );
        // Sharding must never change answers: spot-check against the single
        // summary before trusting the latency numbers.
        assert_eq!(
            service.query_batch(&batch),
            single.query_batch(&batch),
            "{shards}-shard service diverged from the single summary"
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ingest, bench_query_batch);
criterion_main!(benches);
