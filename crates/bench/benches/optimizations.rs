//! Criterion bench for Fig. 20/21: the HIGGS optimisation ablations
//! (parallel insertion, multiple mapping buckets, overflow blocks) and the
//! leaf-matrix-size parameter sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use higgs::{HiggsConfig, HiggsSummary, ParallelHiggs};
use higgs_common::generator::{DatasetPreset, ExperimentScale, WorkloadBuilder};
use higgs_common::TemporalGraphSummary;
use std::hint::black_box;

fn bench_parallel_insertion(c: &mut Criterion) {
    let stream = DatasetPreset::Lkml.generate(ExperimentScale::Smoke);
    let mut group = c.benchmark_group("fig20a_parallelisation");
    group.sample_size(10);
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut s = HiggsSummary::new(HiggsConfig::paper_default());
            s.insert_all(stream.edges());
            black_box(s.leaf_count())
        })
    });
    group.bench_function("parallel_4_workers", |b| {
        b.iter(|| {
            let mut s = ParallelHiggs::new(HiggsConfig::paper_default(), 4);
            s.insert_all(stream.edges());
            s.flush();
            black_box(s.summary().leaf_count())
        })
    });
    group.finish();
}

fn bench_mmb_and_ob(c: &mut Criterion) {
    let stream = DatasetPreset::Lkml.generate(ExperimentScale::Smoke);
    let mut group = c.benchmark_group("fig20b_ablation_insertion");
    group.sample_size(10);
    group.throughput(Throughput::Elements(stream.len() as u64));
    for (label, config) in [
        ("full", HiggsConfig::paper_default()),
        ("no_mmb", HiggsConfig::paper_default().without_mmb()),
        ("no_ob", HiggsConfig::paper_default().without_overflow_blocks()),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut s = HiggsSummary::new(config);
                s.insert_all(stream.edges());
                black_box(s.space_bytes())
            })
        });
    }
    group.finish();
}

fn bench_d1_sweep(c: &mut Criterion) {
    let stream = DatasetPreset::Lkml.generate(ExperimentScale::Smoke);
    let lq = stream.time_span().unwrap().len() / 8;
    let mut group = c.benchmark_group("fig21_d1_query_latency");
    group.sample_size(15);
    for d1 in [4u64, 16, 64] {
        let mut summary = HiggsSummary::new(HiggsConfig::paper_default().with_d1(d1));
        summary.insert_all(stream.edges());
        let mut builder = WorkloadBuilder::new(&stream, 46);
        let queries = builder.edge_queries(64, lq);
        group.bench_with_input(BenchmarkId::new("edge_query", d1), &queries, |b, qs| {
            b.iter(|| {
                let mut acc = 0u64;
                for q in qs {
                    acc += summary.edge_query(q.src, q.dst, q.range);
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_parallel_insertion,
    bench_mmb_and_ob,
    bench_d1_sweep
);
criterion_main!(benches);
