//! Criterion bench for Fig. 20/21: the HIGGS optimisation ablations
//! (parallel insertion, multiple mapping buckets, overflow blocks) and the
//! leaf-matrix-size parameter sweep, plus the `matrix_layout` group tracking
//! the raw compressed-matrix hot path (insert / edge probe / row sweep) that
//! the flat-slab storage rewrite optimises.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use higgs::{CompressedMatrix, HiggsConfig, HiggsSummary, ParallelHiggs};
use higgs_common::generator::{DatasetPreset, ExperimentScale, WorkloadBuilder};
use higgs_common::hashing::vertex_hash;
use higgs_common::TemporalGraphSummary;
use std::hint::black_box;

fn bench_parallel_insertion(c: &mut Criterion) {
    let stream = DatasetPreset::Lkml.generate(ExperimentScale::Smoke);
    let mut group = c.benchmark_group("fig20a_parallelisation");
    group.sample_size(10);
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut s = HiggsSummary::new(HiggsConfig::paper_default());
            s.insert_all(stream.edges());
            black_box(s.leaf_count())
        })
    });
    group.bench_function("parallel_4_workers", |b| {
        b.iter(|| {
            let mut s = ParallelHiggs::new(HiggsConfig::paper_default(), 4);
            s.insert_all(stream.edges());
            s.flush();
            black_box(s.summary().leaf_count())
        })
    });
    group.finish();
}

fn bench_mmb_and_ob(c: &mut Criterion) {
    let stream = DatasetPreset::Lkml.generate(ExperimentScale::Smoke);
    let mut group = c.benchmark_group("fig20b_ablation_insertion");
    group.sample_size(10);
    group.throughput(Throughput::Elements(stream.len() as u64));
    for (label, config) in [
        ("full", HiggsConfig::paper_default()),
        ("no_mmb", HiggsConfig::paper_default().without_mmb()),
        (
            "no_ob",
            HiggsConfig::paper_default().without_overflow_blocks(),
        ),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut s = HiggsSummary::new(config);
                s.insert_all(stream.edges());
                black_box(s.space_bytes())
            })
        });
    }
    group.finish();
}

fn bench_d1_sweep(c: &mut Criterion) {
    let stream = DatasetPreset::Lkml.generate(ExperimentScale::Smoke);
    let lq = stream.time_span().unwrap().len() / 8;
    let mut group = c.benchmark_group("fig21_d1_query_latency");
    group.sample_size(15);
    for d1 in [4u64, 16, 64] {
        let mut summary = HiggsSummary::new(HiggsConfig::paper_default().with_d1(d1));
        summary.insert_all(stream.edges());
        let mut builder = WorkloadBuilder::new(&stream, 46);
        let queries = builder.edge_queries(64, lq);
        group.bench_with_input(BenchmarkId::new("edge_query", d1), &queries, |b, qs| {
            b.iter(|| {
                let mut acc = 0u64;
                for q in qs {
                    acc += summary.edge_query(q.src, q.dst, q.range);
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

/// Pre-hashed operands for raw matrix operations: (addr_src, addr_dst,
/// fp_src, fp_dst), derived the same way the tree derives leaf operands so
/// the address/fingerprint distribution is realistic.
fn matrix_operands(side: u64, count: usize) -> Vec<(u64, u64, u32, u32)> {
    let fp_bits = 19u32;
    (0..count as u64)
        .map(|k| {
            let hs = vertex_hash(k % 997, 0);
            let hd = vertex_hash((k * 31 + 7) % 997, 1);
            (
                (hs >> fp_bits) % side,
                (hd >> fp_bits) % side,
                (hs & ((1 << fp_bits) - 1)) as u32,
                (hd & ((1 << fp_bits) - 1)) as u32,
            )
        })
        .collect()
}

fn bench_matrix_layout(c: &mut Criterion) {
    // Raw CompressedMatrix hot path at two sides: the leaf-scale d = 64 and
    // the aggregate-scale d = 256 (paper default b = 3, r = 4). Tracks the
    // flat-slab layout win independently of tree logic.
    let mut group = c.benchmark_group("matrix_layout");
    group.sample_size(15);
    for side in [64u64, 256] {
        let fill = (3 * side * side / 2) as usize; // ~50% utilisation
        let ops = matrix_operands(side, fill);
        group.throughput(Throughput::Elements(ops.len() as u64));
        group.bench_with_input(BenchmarkId::new("insert", side), &ops, |b, ops| {
            b.iter(|| {
                let mut m = CompressedMatrix::new(side, 1, 3, 4);
                for &(a_s, a_d, f_s, f_d) in ops {
                    black_box(m.try_insert(a_s, a_d, f_s, f_d, Some(0), 1));
                }
                black_box(m.stored())
            })
        });
        let mut filled = CompressedMatrix::new(side, 1, 3, 4);
        for &(a_s, a_d, f_s, f_d) in &ops {
            filled.try_insert(a_s, a_d, f_s, f_d, Some(0), 1);
        }
        group.bench_with_input(BenchmarkId::new("edge_weight", side), &ops, |b, ops| {
            b.iter(|| {
                let mut acc = 0u64;
                for &(a_s, a_d, f_s, f_d) in ops {
                    acc += filled.edge_weight(a_s, a_d, f_s, f_d, None);
                }
                black_box(acc)
            })
        });
        let probes: Vec<_> = ops.iter().take(1_000).cloned().collect();
        group.throughput(Throughput::Elements(probes.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("src_weight", side),
            &probes,
            |b, probes| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for &(a_s, _, f_s, _) in probes {
                        acc += filled.src_weight(a_s, f_s, None);
                    }
                    black_box(acc)
                })
            },
        );
        // Dedicated tracker for the fixed-length candidate sweep the SIMD
        // kernels accelerate: the same 1 000-probe row-sweep workload as
        // `src_weight`, pinned under its own id so the perf gate follows the
        // sweep kernel's trajectory independently of the insert-heavy ids
        // (and so its baseline history starts at the SoA/SIMD layout).
        group.bench_with_input(
            BenchmarkId::new("probe_sweep", side),
            &probes,
            |b, probes| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for &(a_s, _, f_s, _) in probes {
                        acc += filled.src_weight(a_s, f_s, None);
                    }
                    black_box(acc)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_parallel_insertion,
    bench_mmb_and_ob,
    bench_d1_sweep,
    bench_matrix_layout
);
criterion_main!(benches);
