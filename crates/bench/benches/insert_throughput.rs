//! Criterion bench for Fig. 16/17: insertion throughput and latency of every
//! competitor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use higgs_bench::competitors::CompetitorKind;
use higgs_common::generator::{DatasetPreset, ExperimentScale};
use std::hint::black_box;

fn bench_insertion(c: &mut Criterion) {
    let stream = DatasetPreset::Lkml.generate(ExperimentScale::Smoke);
    let slices = stream.time_span().unwrap().end.next_power_of_two();
    let mut group = c.benchmark_group("insertion_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(stream.len() as u64));
    for kind in CompetitorKind::all() {
        group.bench_with_input(
            BenchmarkId::new(kind.label(), stream.len()),
            stream.edges(),
            |b, edges| {
                b.iter(|| {
                    let mut summary = kind.build(edges.len(), slices);
                    summary.insert_all(edges);
                    black_box(summary.space_bytes())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_insertion);
criterion_main!(benches);
