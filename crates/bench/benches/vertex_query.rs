//! Criterion bench for Fig. 11(g–i): vertex-query latency of every
//! competitor as the query range length grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use higgs_bench::competitors::CompetitorKind;
use higgs_common::generator::{DatasetPreset, ExperimentScale, WorkloadBuilder};
use std::hint::black_box;

fn bench_vertex_queries(c: &mut Criterion) {
    let stream = DatasetPreset::Lkml.generate(ExperimentScale::Smoke);
    let slices = stream.time_span().unwrap().end.next_power_of_two();
    let mut group = c.benchmark_group("vertex_query_latency");
    group.sample_size(20);
    for kind in CompetitorKind::all() {
        let mut summary = kind.build(stream.len(), slices);
        summary.insert_all(stream.edges());
        for lq in [100u64, 1_000_000] {
            let mut builder = WorkloadBuilder::new(&stream, 43);
            let queries = builder.vertex_queries(16, lq);
            group.bench_with_input(
                BenchmarkId::new(kind.label(), lq),
                &queries,
                |b, queries| {
                    b.iter(|| {
                        let mut acc = 0u64;
                        for q in queries {
                            acc += summary.vertex_query(q.vertex, q.direction, q.range);
                        }
                        black_box(acc)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_vertex_queries);
criterion_main!(benches);
