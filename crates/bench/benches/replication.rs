//! Criterion bench for warm-follower replication: what standing up and
//! feeding a read replica costs.
//!
//! Three ids over the same synthetic stream, split half into the leader's
//! snapshot and half into the journal tail the follower has to ship:
//!
//! * `bootstrap/snapshot` — `Store::follow`: restore the snapshot pipelines
//!   and stamp the replication cursors (no journal replay).
//! * `ship/full_tail` — one `Follower::sync` shipping the entire journal
//!   tail: scan, checksum-verify, apply, flush, advance cursors.
//! * `lag/probe` — `Follower::replication_lag` over an already-synced
//!   follower: the steady-state monitoring cost (scan without applying).
//!
//! Shipping correctness is asserted (records shipped match the tail) before
//! any number is trusted. All ids feed `BENCH_replication.json` for the CI
//! perf-regression gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use higgs::{HiggsConfig, JournalMode, Store, StoreOptions};
use higgs_common::{StreamEdge, TemporalGraphSummary};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const SHARDS: usize = 2;
const EDGES: u64 = 8_192;
const TAIL: u64 = EDGES / 2;

fn stream() -> Vec<StreamEdge> {
    (0..EDGES)
        .map(|i| StreamEdge::new(i % 512, (i * 31) % 512, 1 + i % 5, i))
        .collect()
}

fn config() -> HiggsConfig {
    HiggsConfig::builder()
        .shards(SHARDS)
        .journal_mode(JournalMode::Buffered)
        .build()
        .expect("valid durable configuration")
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("higgs-bench-replica-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Seeds a leader directory: the first half of the stream lands in the
/// snapshot (the follower's bootstrap basis), the second half stays in the
/// journal tail (what `sync` ships).
fn seed(dir: &PathBuf, edges: &[StreamEdge]) {
    let mut leader = Store::open(StoreOptions::durable(config(), dir)).expect("durable leader");
    let (snapshotted, tail) = edges.split_at((EDGES - TAIL) as usize);
    leader.insert_all(snapshotted);
    leader.flush();
    leader.snapshot_to_dir(dir).expect("leader snapshot");
    // Per-edge inserts: each tail edge becomes one journal record, so the
    // shipped-record accounting below is exact.
    for e in tail {
        leader.insert(e);
    }
    leader.flush();
}

fn bench_replication(c: &mut Criterion) {
    let edges = stream();
    let dir = fresh_dir("leader");
    seed(&dir, &edges);

    let mut group = c.benchmark_group("replication");
    group.sample_size(10);
    group.throughput(Throughput::Elements(TAIL));

    // Bootstrap: snapshot restore + cursor stamping, no journal replay.
    group.bench_with_input(BenchmarkId::new("bootstrap", "snapshot"), &dir, |b, dir| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let start = Instant::now();
                let follower = Store::follow(StoreOptions::restore(dir)).expect("bootstrap");
                total += start.elapsed();
                black_box(follower.num_shards());
                drop(follower);
            }
            total
        })
    });

    // Shipping: one sync over the full journal tail. The bootstrap (cursor
    // reset) stays outside the clock.
    group.bench_with_input(BenchmarkId::new("ship", "full_tail"), &dir, |b, dir| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let mut follower = Store::follow(StoreOptions::restore(dir)).expect("bootstrap");
                let start = Instant::now();
                let progress = follower.sync().expect("ship the tail");
                total += start.elapsed();
                assert_eq!(
                    progress.records_applied, TAIL,
                    "the sync must ship the whole journal tail"
                );
                drop(follower);
            }
            total
        })
    });

    // Lag probe on a caught-up follower: the steady-state monitoring cost.
    let mut synced = Store::follow(StoreOptions::restore(&dir)).expect("bootstrap");
    synced.sync().expect("catch up");
    group.bench_with_input(BenchmarkId::new("lag", "probe"), &synced, |b, follower| {
        b.iter(|| {
            let lag = follower.replication_lag().expect("lag probe");
            assert_eq!(lag.records_behind, 0, "the follower is caught up");
            black_box(lag)
        })
    });
    drop(synced);

    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_replication);
criterion_main!(benches);
