//! Criterion bench for Fig. 12/13: path and subgraph query latency, driven
//! through the typed [`Query`] surface (HIGGS plans each query's range once
//! and reuses the plan across its hops/edges; baselines use the default
//! per-primitive loop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use higgs_bench::competitors::CompetitorKind;
use higgs_common::generator::{DatasetPreset, ExperimentScale, WorkloadBuilder};
use higgs_common::Query;
use std::hint::black_box;

fn bench_composite_queries(c: &mut Criterion) {
    let stream = DatasetPreset::Lkml.generate(ExperimentScale::Smoke);
    let slices = stream.time_span().unwrap().end.next_power_of_two();
    let lq = stream.time_span().unwrap().len() / 4;

    let mut group = c.benchmark_group("path_query_latency");
    group.sample_size(15);
    for kind in [
        CompetitorKind::Higgs,
        CompetitorKind::Horae,
        CompetitorKind::Pgss,
    ] {
        let mut summary = kind.build(stream.len(), slices);
        summary.insert_all(stream.edges());
        for hops in [2usize, 4, 6] {
            let mut builder = WorkloadBuilder::new(&stream, 44);
            let queries: Vec<Query> = builder
                .path_queries(16, hops, lq)
                .into_iter()
                .map(Query::Path)
                .collect();
            group.bench_with_input(BenchmarkId::new(kind.label(), hops), &queries, |b, qs| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for q in qs {
                        acc += summary.query(q);
                    }
                    black_box(acc)
                })
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("subgraph_query_latency");
    group.sample_size(15);
    for kind in [
        CompetitorKind::Higgs,
        CompetitorKind::Horae,
        CompetitorKind::Pgss,
    ] {
        let mut summary = kind.build(stream.len(), slices);
        summary.insert_all(stream.edges());
        for size in [50usize, 200] {
            let mut builder = WorkloadBuilder::new(&stream, 45);
            let queries: Vec<Query> = builder
                .subgraph_queries(4, size, lq)
                .into_iter()
                .map(Query::Subgraph)
                .collect();
            group.bench_with_input(BenchmarkId::new(kind.label(), size), &queries, |b, qs| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for q in qs {
                        acc += summary.query(q);
                    }
                    black_box(acc)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_composite_queries);
criterion_main!(benches);
