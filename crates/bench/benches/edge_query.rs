//! Criterion bench for Fig. 10(g–i): edge-query latency of every competitor
//! as the query range length grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use higgs_bench::competitors::CompetitorKind;
use higgs_common::generator::{DatasetPreset, ExperimentScale, WorkloadBuilder};
use std::hint::black_box;

fn bench_edge_queries(c: &mut Criterion) {
    let stream = DatasetPreset::Lkml.generate(ExperimentScale::Smoke);
    let slices = stream.time_span().unwrap().end.next_power_of_two();
    let mut group = c.benchmark_group("edge_query_latency");
    group.sample_size(20);
    for kind in CompetitorKind::all() {
        let mut summary = kind.build(stream.len(), slices);
        summary.insert_all(stream.edges());
        for lq in [100u64, 10_000, 1_000_000] {
            let mut builder = WorkloadBuilder::new(&stream, 42);
            let queries = builder.edge_queries(64, lq);
            group.bench_with_input(
                BenchmarkId::new(kind.label(), lq),
                &queries,
                |b, queries| {
                    b.iter(|| {
                        let mut acc = 0u64;
                        for q in queries {
                            acc += summary.edge_query(q.src, q.dst, q.range);
                        }
                        black_box(acc)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_edge_queries);
criterion_main!(benches);
