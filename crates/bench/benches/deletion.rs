//! Criterion bench for Fig. 18: deletion throughput of every competitor.
//!
//! Each iteration deletes a 10% prefix of the stream from a **freshly
//! loaded** summary built in the untimed `iter_batched` setup, so every
//! timed region sees the identical structure state. (The previous version
//! deleted and re-inserted on one shared instance; the structural drift
//! that accumulated across iterations made smoke-mode medians vary by up to
//! ±60% between runs — far too noisy for the CI perf gate. Rebuilding per
//! iteration brings run-to-run variance in line with the other gated
//! groups.) Teardown of the returned summary is deferred outside the timed
//! region by the harness.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use higgs_bench::competitors::CompetitorKind;
use higgs_common::generator::{DatasetPreset, ExperimentScale};

fn bench_deletion(c: &mut Criterion) {
    let stream = DatasetPreset::Lkml.generate(ExperimentScale::Smoke);
    let slices = stream.time_span().unwrap().end.next_power_of_two();
    let delete_count = stream.len() / 10;
    let mut group = c.benchmark_group("deletion_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(delete_count as u64));
    for kind in CompetitorKind::all() {
        group.bench_with_input(
            BenchmarkId::new(kind.label(), delete_count),
            &stream,
            |b, stream| {
                b.iter_batched(
                    || {
                        let mut loaded = kind.build(stream.len(), slices);
                        loaded.insert_all(stream.edges());
                        loaded
                    },
                    |mut loaded| {
                        for e in stream.edges().iter().take(delete_count) {
                            loaded.delete(e);
                        }
                        loaded
                    },
                    // Each setup value is a fully loaded summary (megabytes),
                    // so batches must stay small: LargeInput keeps the number
                    // of simultaneously live summaries bounded in a full
                    // measurement run.
                    BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_deletion);
criterion_main!(benches);
