//! Criterion bench for Fig. 18: deletion throughput of every competitor.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use higgs_bench::competitors::CompetitorKind;
use higgs_common::generator::{DatasetPreset, ExperimentScale};
use std::hint::black_box;

fn bench_deletion(c: &mut Criterion) {
    let stream = DatasetPreset::Lkml.generate(ExperimentScale::Smoke);
    let slices = stream.time_span().unwrap().end.next_power_of_two();
    let delete_count = stream.len() / 10;
    let mut group = c.benchmark_group("deletion_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(delete_count as u64));
    for kind in CompetitorKind::all() {
        let mut loaded = kind.build(stream.len(), slices);
        loaded.insert_all(stream.edges());
        group.bench_with_input(
            BenchmarkId::new(kind.label(), delete_count),
            &stream,
            |b, stream| {
                b.iter_batched(
                    || (),
                    |_| {
                        for e in stream.edges().iter().take(delete_count) {
                            loaded.delete(e);
                        }
                        // Re-insert so successive iterations stay balanced.
                        for e in stream.edges().iter().take(delete_count) {
                            loaded.insert(e);
                        }
                        black_box(())
                    },
                    BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_deletion);
criterion_main!(benches);
