//! Criterion bench for the write-ahead journal: what durability costs on
//! the ingest path, and how fast a crashed service comes back.
//!
//! Four ids, all at 2 shards over the same synthetic stream:
//!
//! * `ingest/off` — the no-journal baseline: a durable service with
//!   [`JournalMode::Off`] pays directory recovery but writes nothing.
//! * `ingest/buffered` — [`JournalMode::Buffered`]: every mutation is
//!   encoded and written through the journal's userspace buffer before it
//!   is applied, with no fsync. The delta over `ingest/off` is the steady-
//!   state journaling tax.
//! * `ingest/sync_every_64` — [`JournalMode::SyncEveryN`]: an fsync every
//!   64 appended records bounds post-crash loss at the cost of periodic
//!   device round-trips.
//! * `recover/buffered` — cold-start recovery: `Store::open` over a
//!   directory holding journal tails only (no snapshot), i.e. full replay
//!   with checksum verification plus pipeline rebuild.
//!
//! Recovery correctness is asserted (replayed item count matches the
//! ingested stream) before any number is trusted. All ids feed
//! `BENCH_journal.json` for the CI perf-regression gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use higgs::{HiggsConfig, JournalMode, Store, StoreOptions};
use higgs_common::{StreamEdge, TemporalGraphSummary};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const SHARDS: usize = 2;
const EDGES: u64 = 8_192;

fn stream() -> Vec<StreamEdge> {
    (0..EDGES)
        .map(|i| StreamEdge::new(i % 512, (i * 31) % 512, 1 + i % 5, i))
        .collect()
}

fn config(mode: JournalMode) -> HiggsConfig {
    HiggsConfig::builder()
        .shards(SHARDS)
        .journal_mode(mode)
        .build()
        .expect("valid durable configuration")
}

fn fresh_dir(tag: &str, seq: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "higgs-bench-journal-{tag}-{}-{seq}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bench_journal(c: &mut Criterion) {
    let edges = stream();

    let mut group = c.benchmark_group("journal");
    group.sample_size(10);
    group.throughput(Throughput::Elements(EDGES));

    // Ingest cost per sync policy: timed region covers enqueue, journal
    // append, apply, and the visibility flush; service construction and
    // teardown stay outside the clock.
    for (tag, mode) in [
        ("off", JournalMode::Off),
        ("buffered", JournalMode::Buffered),
        ("sync_every_64", JournalMode::SyncEveryN(64)),
    ] {
        group.bench_with_input(BenchmarkId::new("ingest", tag), &edges, |b, edges| {
            let mut seq = 0u64;
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let dir = fresh_dir(tag, seq);
                    seq += 1;
                    let mut service = Store::open(StoreOptions::durable(config(mode), &dir))
                        .expect("durable service");
                    let start = Instant::now();
                    service.insert_all(edges);
                    service.flush();
                    total += start.elapsed();
                    black_box(service.total_items());
                    drop(service);
                    let _ = std::fs::remove_dir_all(&dir);
                }
                total
            })
        });
    }

    // Recovery: replay the full journal tail (no snapshot) into fresh
    // pipelines. The directory is written once; every timed open replays
    // the same records.
    let recover_dir = fresh_dir("recover", 0);
    {
        let mut seed = Store::open(StoreOptions::durable(
            config(JournalMode::Buffered),
            &recover_dir,
        ))
        .expect("seed service");
        seed.insert_all(&edges);
        seed.flush();
    }
    group.bench_with_input(
        BenchmarkId::new("recover", "buffered"),
        &recover_dir,
        |b, dir| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let start = Instant::now();
                    let recovered =
                        Store::open(StoreOptions::durable(config(JournalMode::Buffered), dir))
                            .expect("journal replay");
                    total += start.elapsed();
                    assert_eq!(
                        recovered.total_items(),
                        EDGES,
                        "replay must rebuild the full stream"
                    );
                    drop(recovered);
                }
                total
            })
        },
    );
    let _ = std::fs::remove_dir_all(&recover_dir);
    group.finish();
}

criterion_group!(benches, bench_journal);
criterion_main!(benches);
