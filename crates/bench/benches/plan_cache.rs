//! Criterion bench for the cross-batch plan cache and the columnar batch
//! evaluator, plus the batch-grouping micro-benchmark.
//!
//! Four sub-groups, all under the `plan_cache` group id (every id feeds
//! `BENCH_plan_cache.json` for the CI perf-regression gate):
//!
//! * `repeated_windows/{cold,warm}` — the serving pattern the cache targets:
//!   a sliding-window screen (one 3-hop path query per window, many windows)
//!   re-submitted batch after batch. `cold` runs on a summary with
//!   `plan_cache_capacity(0)`, so every batch re-runs one Algorithm-3
//!   boundary search per window; `warm` runs on a cache-enabled summary
//!   after one priming submission, so **zero** boundary searches happen in
//!   the timed region (asserted). The gap between the two ids is the pure
//!   planning cost the cache removes.
//! * `shared_window/{per_query,columnar}` — columnar vs per-query
//!   evaluation at *equal* planning cost (both sides fully warm): many
//!   queries sharing one window, evaluated once through the per-query typed
//!   loop (`summary.query` per query: each walks the plan's targets
//!   independently) and once through `query_batch` (targets swept once over
//!   the deduplicated, address-sorted probe set).
//! * `grouping/{linear,hashmap}` — the per-batch range-grouping primitive:
//!   the linear small-vec grouping (`higgs_common::group_by_range`) against
//!   the `HashMap` grouping it replaced, on a production-shaped batch with
//!   a handful of distinct ranges.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use higgs::{HiggsConfig, HiggsSummary};
use higgs_common::generator::{DatasetPreset, ExperimentScale};
use higgs_common::{group_by_range, Query, TemporalGraphSummary, TimeRange};
use std::collections::HashMap;
use std::hint::black_box;

/// Stream passes concatenated back to back (time-shifted) so the tree is
/// deep enough for planning cost to be realistic.
const STREAM_PASSES: u64 = 8;

fn long_stream() -> Vec<higgs_common::StreamEdge> {
    let stream = DatasetPreset::Lkml.generate(ExperimentScale::Smoke);
    let span = stream.time_span().expect("non-empty stream").end + 1;
    let mut edges = Vec::with_capacity(stream.len() * STREAM_PASSES as usize);
    for pass in 0..STREAM_PASSES {
        edges.extend(stream.iter().map(|e| {
            let mut shifted = *e;
            shifted.timestamp += pass * span;
            shifted
        }));
    }
    edges
}

/// The repeated-window screen: `windows` narrow sliding windows over the
/// stream span, one edge query per window. Narrow windows decompose into a
/// couple of boundary leaves, so the Algorithm-3 search *is* the dominant
/// per-window cost — exactly the fixed cost the cross-batch cache removes.
fn repeated_window_batch(span: TimeRange, windows: u64) -> Vec<Query> {
    let width = (span.len() / (2 * windows + 1)).max(1);
    (0..windows)
        .map(|w| {
            let start = span.start + 2 * w * width;
            let range = TimeRange::new(start, (start + width - 1).min(span.end));
            Query::edge(w % 500, (w * 13) % 500, range)
        })
        .collect()
}

/// Many overlapping queries sharing one window: 64 sliding 6-hop chains over
/// a 48-vertex ring, so consecutive chains share 5 of their 6 hops. The
/// per-query loop walks 384 hop probes; the columnar evaluator deduplicates
/// them to the ring's 48 distinct edges and sweeps each plan target once.
fn shared_window_batch(span: TimeRange) -> Vec<Query> {
    let window = TimeRange::new(span.start + span.len() / 4, span.end - span.len() / 4);
    (0..64u64)
        .map(|k| {
            let chain: Vec<u64> = (0..7u64).map(|hop| (k + hop) % 48).collect();
            Query::path(chain, window)
        })
        .collect()
}

fn bench_plan_cache(c: &mut Criterion) {
    let edges = long_stream();
    let mut cold = HiggsSummary::new(
        HiggsConfig::builder()
            .plan_cache_capacity(0)
            .build()
            .expect("cache-disabled configuration is valid"),
    );
    cold.insert_all(&edges);
    let mut warm = HiggsSummary::new(HiggsConfig::paper_default());
    warm.insert_all(&edges);

    let span = warm.time_span().expect("non-empty summary");
    let repeated = repeated_window_batch(span, 64);
    let shared = shared_window_batch(span);

    // Prime the cache, and pin down the contract before timing anything:
    // identical results cold vs warm, zero boundary searches once warm.
    let expected = cold.query_batch(&repeated);
    assert_eq!(warm.query_batch(&repeated), expected);
    warm.reset_plan_count();
    assert_eq!(warm.query_batch(&repeated), expected);
    assert_eq!(
        warm.plans_built(),
        0,
        "fully warm repeated-window batch must build zero plans"
    );
    let shared_expected = cold.query_batch(&shared);
    assert_eq!(warm.query_batch(&shared), shared_expected);

    let mut group = c.benchmark_group("plan_cache");
    group.sample_size(15);

    // Every timed routine repeats its batch `TICKS` times: a single
    // repeated-window batch answers in tens of microseconds, far too short
    // for the ±25% CI gate's best-of-N smoke timings on a busy runner (a
    // preemption would swamp the signal). The reported per-element
    // throughput accounts for the repetition.
    const TICKS: usize = 8;

    group.throughput(Throughput::Elements((TICKS * repeated.len()) as u64));
    group.bench_function("repeated_windows/cold", |b| {
        b.iter(|| {
            for _ in 0..TICKS {
                black_box(cold.query_batch(&repeated));
            }
        })
    });
    group.bench_function("repeated_windows/warm", |b| {
        b.iter(|| {
            for _ in 0..TICKS {
                black_box(warm.query_batch(&repeated));
            }
        })
    });

    group.throughput(Throughput::Elements((TICKS * shared.len()) as u64));
    group.bench_function("shared_window/per_query", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..TICKS {
                for q in &shared {
                    acc += warm.query(q);
                }
            }
            black_box(acc)
        })
    });
    group.bench_function("shared_window/columnar", |b| {
        b.iter(|| {
            for _ in 0..TICKS {
                black_box(warm.query_batch(&shared));
            }
        })
    });

    // Grouping micro-bench: the linear small-vec grouping vs the HashMap
    // grouping it replaced. Collapse the 64 windows onto 6 ranges so the
    // batch has the few-distinct-ranges shape production batches have.
    let six_ranges: Vec<TimeRange> = repeated[..6].iter().map(Query::range).collect();
    let mixed: Vec<Query> = repeated
        .iter()
        .enumerate()
        .map(|(i, q)| match q {
            Query::Edge(e) => Query::edge(e.src, e.dst, six_ranges[i % 6]),
            _ => unreachable!("repeated batch is all edge queries"),
        })
        .collect();
    // The grouping primitive runs in hundreds of nanoseconds; repeat it
    // enough for the smoke timings to rise above timer granularity.
    const GROUP_REPEATS: usize = 256;
    group.throughput(Throughput::Elements((GROUP_REPEATS * mixed.len()) as u64));
    group.bench_function("grouping/linear", |b| {
        b.iter(|| {
            for _ in 0..GROUP_REPEATS {
                black_box(group_by_range(black_box(&mixed)));
            }
        })
    });
    group.bench_function("grouping/hashmap", |b| {
        b.iter(|| {
            for _ in 0..GROUP_REPEATS {
                let mut groups: HashMap<TimeRange, Vec<u32>> = HashMap::new();
                for (i, q) in black_box(&mixed).iter().enumerate() {
                    groups.entry(q.range()).or_default().push(i as u32);
                }
                black_box(groups);
            }
        })
    });
    group.finish();

    // Post-bench sanity: the warm summary still answers identically and
    // never re-planned during the timed runs (no mutations happened).
    warm.reset_plan_count();
    assert_eq!(warm.query_batch(&repeated), expected);
    assert_eq!(warm.plans_built(), 0);
}

criterion_group!(benches, bench_plan_cache);
criterion_main!(benches);
