//! Experiment drivers: one function per table/figure of the paper's
//! evaluation (Section VI). The `figures` binary and the Criterion benches
//! both call into this module so the numbers they report come from the same
//! code paths.

use crate::competitors::{build_parallel_higgs, CompetitorKind};
use crate::report::{fmt_metric, Report, Row};
use higgs::{HiggsConfig, HiggsSummary};
use higgs_common::generator::presets::{skewness_sweep, variance_sweep};
use higgs_common::generator::{DatasetPreset, ExperimentScale, WorkloadBuilder};
use higgs_common::metrics::{
    arrival_histogram, arrival_variance, degree_distribution, format_mib, powerlaw_exponent,
};
use higgs_common::{
    ErrorStats, ExactTemporalGraph, GraphStream, Query, TemporalGraphSummary, ThroughputStats,
};
use std::time::Instant;

/// Per-competitor accumulator used by the sweep experiments: one label plus
/// four metric columns collected across datasets.
type MethodColumns = (
    CompetitorKind,
    Vec<String>,
    Vec<String>,
    Vec<String>,
    Vec<String>,
);

/// Knobs shared by every experiment run.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Stream scale (smoke / default / paper-sized).
    pub scale: ExperimentScale,
    /// Number of edge queries per range length.
    pub edge_queries: usize,
    /// Number of vertex queries per range length.
    pub vertex_queries: usize,
    /// Query range lengths (the paper sweeps 10^1..10^7; scaled runs use a
    /// subset capped at the stream span).
    pub lq_values: Vec<u64>,
    /// Path/subgraph queries per configuration.
    pub composite_queries: usize,
    /// RNG seed for workload sampling.
    pub seed: u64,
}

impl ExperimentConfig {
    /// Configuration for a given stream scale.
    pub fn for_scale(scale: ExperimentScale) -> Self {
        match scale {
            ExperimentScale::Smoke => Self {
                scale,
                edge_queries: 50,
                vertex_queries: 20,
                lq_values: vec![10, 1_000, 100_000],
                composite_queries: 5,
                seed: 7,
            },
            ExperimentScale::Default => Self {
                scale,
                edge_queries: 300,
                vertex_queries: 60,
                lq_values: vec![10, 100, 1_000, 10_000, 100_000, 1_000_000],
                composite_queries: 20,
                seed: 7,
            },
            ExperimentScale::Paper => Self {
                scale,
                edge_queries: 2_000,
                vertex_queries: 300,
                lq_values: vec![10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000],
                composite_queries: 100,
                seed: 7,
            },
        }
    }

    fn sweep_sizes(&self) -> (usize, usize) {
        match self.scale {
            ExperimentScale::Smoke => (1_000, 8_000),
            ExperimentScale::Default => (10_000, 60_000),
            ExperimentScale::Paper => (100_000, 600_000),
        }
    }
}

/// Builds every competitor and feeds the stream through it, returning the
/// loaded summaries together with per-method insertion timings.
fn load_all(
    stream: &GraphStream,
) -> Vec<(CompetitorKind, Box<dyn TemporalGraphSummary + Send>, f64)> {
    let slices = stream
        .time_span()
        .map(|s| s.end + 1)
        .unwrap_or(1 << 16)
        .next_power_of_two();
    CompetitorKind::all()
        .into_iter()
        .map(|kind| {
            let mut summary = kind.build(stream.len(), slices);
            let start = Instant::now();
            summary.insert_all(stream.edges());
            let secs = start.elapsed().as_secs_f64();
            (kind, summary, secs)
        })
        .collect()
}

/// Runs `queries` as one batch through the summary's plan-sharing
/// [`query_batch`](TemporalGraphSummary::query_batch) executor, comparing
/// against the exact store. Returns the error statistics plus the summary's
/// mean per-query latency in microseconds (truth evaluation is untimed).
fn error_stats_for_batch(
    summary: &dyn TemporalGraphSummary,
    exact: &ExactTemporalGraph,
    queries: &[Query],
) -> (ErrorStats, f64) {
    let start = Instant::now();
    let estimates = summary.query_batch(queries);
    let us = start.elapsed().as_secs_f64() * 1e6 / queries.len().max(1) as f64;
    let truths = exact.query_batch(queries);
    let mut stats = ErrorStats::new();
    for (truth, est) in truths.into_iter().zip(estimates) {
        stats.record(truth, est);
    }
    (stats, us)
}

/// Table II: dataset summary statistics.
pub fn table2(cfg: &ExperimentConfig) -> Vec<Report> {
    let mut report = Report::new(
        "Table II — Summary of datasets (scaled presets)",
        vec!["nodes", "edges", "distinct edges", "time span"],
    );
    for preset in DatasetPreset::all() {
        let stream = preset.generate(cfg.scale);
        let stats = stream.stats();
        report.push(Row::new(
            preset.label(),
            vec![
                stats.vertices.to_string(),
                stats.edges.to_string(),
                stats.distinct_edges.to_string(),
                stats
                    .time_span
                    .map(|s| format!("{s}"))
                    .unwrap_or_else(|| "-".into()),
            ],
        ));
    }
    vec![report]
}

/// Fig. 2: skewness of vertex degrees (log-binned degree distribution and
/// fitted power-law exponent per dataset).
pub fn fig2(cfg: &ExperimentConfig) -> Vec<Report> {
    let mut reports = Vec::new();
    for preset in DatasetPreset::all() {
        let stream = preset.generate(cfg.scale);
        let dist = degree_distribution(&stream);
        let mut report = Report::new(
            format!(
                "Fig. 2 — Vertex-degree skewness ({}; fitted exponent {:.2})",
                preset.label(),
                powerlaw_exponent(&stream)
            ),
            vec!["#vertices"],
        );
        for point in dist {
            report.push(Row::new(
                format!("degree≥{}", point.degree),
                vec![point.vertices.to_string()],
            ));
        }
        reports.push(report);
    }
    reports
}

/// Fig. 3: irregularity of stream arrivals (hottest slices and variance).
pub fn fig3(cfg: &ExperimentConfig) -> Vec<Report> {
    let mut reports = Vec::new();
    for preset in DatasetPreset::all() {
        let stream = preset.generate(cfg.scale);
        let slice = (stream.time_span().map(|s| s.len()).unwrap_or(1) / 64).max(1);
        let mut hist = arrival_histogram(&stream, slice);
        hist.sort_by_key(|p| std::cmp::Reverse(p.arrivals));
        let mut report = Report::new(
            format!(
                "Fig. 3 — Arrival irregularity ({}; per-slice variance {:.1})",
                preset.label(),
                arrival_variance(&stream, slice)
            ),
            vec!["arrivals"],
        );
        for p in hist.iter().take(10) {
            report.push(Row::new(
                format!("slice {}", p.slice),
                vec![p.arrivals.to_string()],
            ));
        }
        reports.push(report);
    }
    reports
}

/// Which TRQ primitive an accuracy experiment exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryKind {
    /// Edge queries (Fig. 10).
    Edge,
    /// Vertex queries (Fig. 11).
    Vertex,
}

/// Figs. 10 & 11: AAE / ARE / latency of edge (or vertex) queries versus the
/// query range length, per dataset and method.
pub fn accuracy_experiment(cfg: &ExperimentConfig, kind: QueryKind) -> Vec<Report> {
    let fig = match kind {
        QueryKind::Edge => "Fig. 10",
        QueryKind::Vertex => "Fig. 11",
    };
    let mut reports = Vec::new();
    for preset in DatasetPreset::all() {
        let stream = preset.generate(cfg.scale);
        let exact = ExactTemporalGraph::from_edges(stream.edges());
        let loaded = load_all(&stream);
        let lq_cols: Vec<String> = cfg
            .lq_values
            .iter()
            .map(|lq| format!("Lq=1e{}", (*lq as f64).log10() as u32))
            .collect();
        let mut aae = Report::new(
            format!(
                "{fig} — {} query AAE ({})",
                kind_label(kind),
                preset.label()
            ),
            lq_cols.iter().map(String::as_str).collect(),
        );
        let mut are = Report::new(
            format!(
                "{fig} — {} query ARE ({})",
                kind_label(kind),
                preset.label()
            ),
            lq_cols.iter().map(String::as_str).collect(),
        );
        let mut latency = Report::new(
            format!(
                "{fig} — {} query latency, µs ({})",
                kind_label(kind),
                preset.label()
            ),
            lq_cols.iter().map(String::as_str).collect(),
        );
        for (knd, summary, _) in &loaded {
            let mut aae_vals = Vec::new();
            let mut are_vals = Vec::new();
            let mut lat_vals = Vec::new();
            for &lq in &cfg.lq_values {
                let mut builder = WorkloadBuilder::new(&stream, cfg.seed ^ lq);
                let queries: Vec<Query> = match kind {
                    QueryKind::Edge => builder
                        .edge_queries(cfg.edge_queries, lq)
                        .into_iter()
                        .map(Query::Edge)
                        .collect(),
                    QueryKind::Vertex => builder
                        .vertex_queries(cfg.vertex_queries, lq)
                        .into_iter()
                        .map(Query::Vertex)
                        .collect(),
                };
                let (stats, us) = error_stats_for_batch(summary.as_ref(), &exact, &queries);
                aae_vals.push(fmt_metric(stats.aae()));
                are_vals.push(fmt_metric(stats.are()));
                lat_vals.push(fmt_metric(us));
            }
            aae.push(Row::new(knd.label(), aae_vals));
            are.push(Row::new(knd.label(), are_vals));
            latency.push(Row::new(knd.label(), lat_vals));
        }
        reports.push(aae);
        reports.push(are);
        reports.push(latency);
    }
    reports
}

fn kind_label(kind: QueryKind) -> &'static str {
    match kind {
        QueryKind::Edge => "edge",
        QueryKind::Vertex => "vertex",
    }
}

/// Figs. 12 & 13: path queries versus hop count and subgraph queries versus
/// subgraph size (temporal range fixed, as in the paper).
pub fn composite_experiment(cfg: &ExperimentConfig) -> Vec<Report> {
    let preset = DatasetPreset::Lkml;
    let stream = preset.generate(cfg.scale);
    let exact = ExactTemporalGraph::from_edges(stream.edges());
    let loaded = load_all(&stream);
    let lq = stream.time_span().map(|s| s.len() / 4).unwrap_or(1_000);

    let hop_cols: Vec<String> = (1..=7).map(|h| format!("{h} hops")).collect();
    let mut path_aae = Report::new(
        format!("Fig. 12 — Path query AAE ({})", preset.label()),
        hop_cols.iter().map(String::as_str).collect(),
    );
    let mut path_lat = Report::new(
        format!("Fig. 12 — Path query latency, µs ({})", preset.label()),
        hop_cols.iter().map(String::as_str).collect(),
    );
    let size_values: Vec<usize> = (1..=7).map(|i| i * 50).collect();
    let size_cols: Vec<String> = size_values.iter().map(|s| format!("{s} edges")).collect();
    let mut sub_aae = Report::new(
        format!("Fig. 13 — Subgraph query AAE ({})", preset.label()),
        size_cols.iter().map(String::as_str).collect(),
    );
    let mut sub_lat = Report::new(
        format!("Fig. 13 — Subgraph query latency, µs ({})", preset.label()),
        size_cols.iter().map(String::as_str).collect(),
    );

    for (kind, summary, _) in &loaded {
        let mut aae_vals = Vec::new();
        let mut lat_vals = Vec::new();
        for hops in 1..=7usize {
            let mut builder = WorkloadBuilder::new(&stream, cfg.seed + hops as u64);
            let queries: Vec<Query> = builder
                .path_queries(cfg.composite_queries, hops, lq)
                .into_iter()
                .map(Query::Path)
                .collect();
            let (stats, us) = error_stats_for_batch(summary.as_ref(), &exact, &queries);
            aae_vals.push(fmt_metric(stats.aae()));
            lat_vals.push(fmt_metric(us));
        }
        path_aae.push(Row::new(kind.label(), aae_vals));
        path_lat.push(Row::new(kind.label(), lat_vals));

        let mut aae_vals = Vec::new();
        let mut lat_vals = Vec::new();
        for &size in &size_values {
            let mut builder = WorkloadBuilder::new(&stream, cfg.seed + size as u64);
            let queries: Vec<Query> = builder
                .subgraph_queries(cfg.composite_queries.max(3) / 3, size, lq)
                .into_iter()
                .map(Query::Subgraph)
                .collect();
            let (stats, us) = error_stats_for_batch(summary.as_ref(), &exact, &queries);
            aae_vals.push(fmt_metric(stats.aae()));
            lat_vals.push(fmt_metric(us));
        }
        sub_aae.push(Row::new(kind.label(), aae_vals));
        sub_lat.push(Row::new(kind.label(), lat_vals));
    }
    vec![path_aae, path_lat, sub_aae, sub_lat]
}

/// Figs. 14 & 15: vertex-query accuracy and update cost under varying degree
/// skewness and arrival variance.
pub fn irregularity_experiment(cfg: &ExperimentConfig, by_variance: bool) -> Vec<Report> {
    let (nodes, edges) = cfg.sweep_sizes();
    let datasets: Vec<(String, GraphStream)> = if by_variance {
        variance_sweep(nodes, edges)
            .into_iter()
            .map(|(level, s)| (format!("variance level {level}"), s))
            .collect()
    } else {
        skewness_sweep(nodes, edges)
            .into_iter()
            .map(|(skew, s)| (format!("skew {skew:.1}"), s))
            .collect()
    };
    let fig = if by_variance { "Fig. 15" } else { "Fig. 14" };
    let cols: Vec<String> = datasets.iter().map(|(label, _)| label.clone()).collect();
    let mut aae = Report::new(
        format!("{fig}(a) — Vertex query AAE"),
        cols.iter().map(String::as_str).collect(),
    );
    let mut lat = Report::new(
        format!("{fig}(b) — Vertex query latency, µs"),
        cols.iter().map(String::as_str).collect(),
    );
    let mut space = Report::new(
        format!("{fig}(c) — Space cost"),
        cols.iter().map(String::as_str).collect(),
    );
    let mut thr = Report::new(
        format!("{fig}(d) — Insertion throughput, Medges/s"),
        cols.iter().map(String::as_str).collect(),
    );

    let mut per_method: Vec<MethodColumns> = CompetitorKind::all()
        .into_iter()
        .map(|k| (k, Vec::new(), Vec::new(), Vec::new(), Vec::new()))
        .collect();

    for (_, stream) in &datasets {
        let exact = ExactTemporalGraph::from_edges(stream.edges());
        let loaded = load_all(stream);
        let lq = stream.time_span().map(|s| s.len() / 8).unwrap_or(1_000);
        for ((kind, summary, secs), slot) in loaded.iter().zip(per_method.iter_mut()) {
            debug_assert_eq!(*kind, slot.0);
            let mut builder = WorkloadBuilder::new(stream, cfg.seed);
            let queries: Vec<Query> = builder
                .vertex_queries(cfg.vertex_queries, lq)
                .into_iter()
                .map(Query::Vertex)
                .collect();
            let (stats, us) = error_stats_for_batch(summary.as_ref(), &exact, &queries);
            slot.1.push(fmt_metric(stats.aae()));
            slot.2.push(fmt_metric(us));
            slot.3.push(format_mib(summary.space_bytes()));
            let throughput = ThroughputStats {
                items: stream.len(),
                seconds: *secs,
            };
            slot.4.push(fmt_metric(throughput.mops()));
        }
    }
    for (kind, aae_v, lat_v, space_v, thr_v) in per_method {
        aae.push(Row::new(kind.label(), aae_v));
        lat.push(Row::new(kind.label(), lat_v));
        space.push(Row::new(kind.label(), space_v));
        thr.push(Row::new(kind.label(), thr_v));
    }
    vec![aae, lat, space, thr]
}

/// Figs. 16–19: insertion throughput, insertion latency, deletion throughput,
/// and space cost per dataset and method.
pub fn update_cost_experiment(cfg: &ExperimentConfig) -> Vec<Report> {
    let presets = DatasetPreset::all();
    let cols: Vec<String> = presets.iter().map(|p| p.label().to_string()).collect();
    let mut thr = Report::new(
        "Fig. 16 — Insertion throughput, Medges/s",
        cols.iter().map(String::as_str).collect(),
    );
    let mut lat = Report::new(
        "Fig. 17 — Insertion latency, µs/edge",
        cols.iter().map(String::as_str).collect(),
    );
    let mut del = Report::new(
        "Fig. 18 — Deletion throughput, Medges/s",
        cols.iter().map(String::as_str).collect(),
    );
    let mut space = Report::new(
        "Fig. 19 — Space cost",
        cols.iter().map(String::as_str).collect(),
    );

    let mut per_method: Vec<MethodColumns> = CompetitorKind::all()
        .into_iter()
        .map(|k| (k, Vec::new(), Vec::new(), Vec::new(), Vec::new()))
        .collect();

    for preset in presets {
        let stream = preset.generate(cfg.scale);
        let loaded = load_all(&stream);
        // Delete a sample of the stream to measure deletion throughput.
        let delete_count = (stream.len() / 5).max(1);
        for ((kind, mut summary, secs), slot) in loaded.into_iter().zip(per_method.iter_mut()) {
            debug_assert_eq!(kind, slot.0);
            let throughput = ThroughputStats {
                items: stream.len(),
                seconds: secs,
            };
            slot.1.push(fmt_metric(throughput.mops()));
            slot.2.push(fmt_metric(throughput.latency_us()));
            let start = Instant::now();
            for e in stream.edges().iter().take(delete_count) {
                summary.delete(e);
            }
            let del_thr = ThroughputStats::new(delete_count, start.elapsed());
            slot.3.push(fmt_metric(del_thr.mops()));
            slot.4.push(format_mib(summary.space_bytes()));
        }
    }
    for (kind, thr_v, lat_v, del_v, space_v) in per_method {
        thr.push(Row::new(kind.label(), thr_v));
        lat.push(Row::new(kind.label(), lat_v));
        del.push(Row::new(kind.label(), del_v));
        space.push(Row::new(kind.label(), space_v));
    }
    vec![thr, lat, del, space]
}

/// Fig. 20: effectiveness of the three optimisations (parallel insertion,
/// multiple mapping buckets, overflow blocks).
pub fn optimization_experiment(cfg: &ExperimentConfig) -> Vec<Report> {
    let mut para = Report::new(
        "Fig. 20(a) — HIGGS insertion throughput with/without parallelisation, Medges/s",
        vec!["sequential", "parallel"],
    );
    let mut ablation = Report::new(
        "Fig. 20(b) — Space & accuracy with/without MMB and OB",
        vec!["space", "vertex AAE", "leaves"],
    );

    for preset in DatasetPreset::all() {
        let stream = preset.generate(cfg.scale);
        // Parallelisation.
        let mut sequential = HiggsSummary::new(HiggsConfig::paper_default());
        let start = Instant::now();
        sequential.insert_all(stream.edges());
        let seq_thr = ThroughputStats::new(stream.len(), start.elapsed()).mops();
        let mut parallel = build_parallel_higgs(4);
        let start = Instant::now();
        parallel.insert_all(stream.edges());
        parallel.flush();
        let par_thr = ThroughputStats::new(stream.len(), start.elapsed()).mops();
        para.push(Row::new(
            preset.label(),
            vec![fmt_metric(seq_thr), fmt_metric(par_thr)],
        ));
    }

    // MMB / OB ablation on the Lkml-like preset.
    let stream = DatasetPreset::Lkml.generate(cfg.scale);
    let exact = ExactTemporalGraph::from_edges(stream.edges());
    let lq = stream.time_span().map(|s| s.len() / 8).unwrap_or(1_000);
    for (label, config) in [
        ("HIGGS", HiggsConfig::paper_default()),
        ("HIGGS w/o MMB", HiggsConfig::paper_default().without_mmb()),
        (
            "HIGGS w/o OB",
            HiggsConfig::paper_default().without_overflow_blocks(),
        ),
    ] {
        let mut summary = HiggsSummary::new(config);
        summary.insert_all(stream.edges());
        let mut builder = WorkloadBuilder::new(&stream, cfg.seed);
        let queries: Vec<Query> = builder
            .vertex_queries(cfg.vertex_queries, lq)
            .into_iter()
            .map(Query::Vertex)
            .collect();
        let (stats, _) = error_stats_for_batch(&summary, &exact, &queries);
        ablation.push(Row::new(
            label,
            vec![
                format_mib(summary.space_bytes()),
                fmt_metric(stats.aae()),
                summary.leaf_count().to_string(),
            ],
        ));
    }
    vec![para, ablation]
}

/// Fig. 21: impact of the leaf matrix side `d1` on space and query latency.
pub fn parameter_experiment(cfg: &ExperimentConfig) -> Vec<Report> {
    let stream = DatasetPreset::Stackoverflow.generate(cfg.scale);
    let lq = stream.time_span().map(|s| s.len() / 8).unwrap_or(1_000);
    let mut report = Report::new(
        "Fig. 21 — Space cost and query latency vs leaf matrix size d1 (Stackoverflow)",
        vec!["space", "edge-query latency µs", "leaves", "height"],
    );
    for d1 in [4u64, 8, 16, 32, 64] {
        let mut summary = HiggsSummary::new(
            HiggsConfig::builder()
                .d1(d1)
                .build()
                .expect("d1 sweep values are valid"),
        );
        summary.insert_all(stream.edges());
        let mut builder = WorkloadBuilder::new(&stream, cfg.seed);
        let queries: Vec<Query> = builder
            .edge_queries(cfg.edge_queries, lq)
            .into_iter()
            .map(Query::Edge)
            .collect();
        let start = Instant::now();
        let estimates = summary.query_batch(&queries);
        std::hint::black_box(estimates);
        let us = start.elapsed().as_secs_f64() * 1e6 / queries.len().max(1) as f64;
        report.push(Row::new(
            format!("d1={d1}"),
            vec![
                format_mib(summary.space_bytes()),
                fmt_metric(us),
                summary.leaf_count().to_string(),
                summary.height().to_string(),
            ],
        ));
    }
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke() -> ExperimentConfig {
        ExperimentConfig::for_scale(ExperimentScale::Smoke)
    }

    #[test]
    fn table2_lists_three_datasets() {
        let reports = table2(&smoke());
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].rows.len(), 3);
    }

    #[test]
    fn fig2_and_fig3_produce_one_report_per_dataset() {
        assert_eq!(fig2(&smoke()).len(), 3);
        assert_eq!(fig3(&smoke()).len(), 3);
    }

    #[test]
    fn parameter_experiment_sweeps_d1() {
        let reports = parameter_experiment(&ExperimentConfig {
            edge_queries: 10,
            ..smoke()
        });
        assert_eq!(reports[0].rows.len(), 5);
    }

    #[test]
    fn accuracy_experiment_covers_all_methods_smoke() {
        let cfg = ExperimentConfig {
            edge_queries: 10,
            vertex_queries: 5,
            lq_values: vec![100],
            ..smoke()
        };
        let reports = accuracy_experiment(&cfg, QueryKind::Edge);
        assert_eq!(reports.len(), 9, "3 datasets × (AAE, ARE, latency)");
        assert!(reports.iter().all(|r| r.rows.len() == 6));
    }
}
