//! Regenerates the tables and figures of the HIGGS evaluation (Section VI).
//!
//! Usage:
//!
//! ```text
//! cargo run -p higgs-bench --release --bin figures -- <experiment> [--scale smoke|default|paper]
//!
//! experiments:
//!   table2   fig2   fig3
//!   fig10    fig11  fig12  fig13   (fig12/fig13 run together as `composite`)
//!   fig14    fig15
//!   fig16 | fig17 | fig18 | fig19  (run together as `update`)
//!   fig20a | fig20b                (run together as `fig20`)
//!   fig21
//!   all
//! ```

use higgs_bench::experiments::{
    accuracy_experiment, composite_experiment, fig2, fig3, irregularity_experiment,
    optimization_experiment, parameter_experiment, table2, update_cost_experiment,
    ExperimentConfig, QueryKind,
};
use higgs_bench::report::Report;
use higgs_common::generator::ExperimentScale;

fn parse_scale(args: &[String]) -> ExperimentScale {
    if let Some(pos) = args.iter().position(|a| a == "--scale") {
        match args.get(pos + 1).map(String::as_str) {
            Some("smoke") => ExperimentScale::Smoke,
            Some("paper") => ExperimentScale::Paper,
            _ => ExperimentScale::Default,
        }
    } else {
        ExperimentScale::Default
    }
}

fn run(name: &str, cfg: &ExperimentConfig) -> Vec<Report> {
    match name {
        "table2" => table2(cfg),
        "fig2" => fig2(cfg),
        "fig3" => fig3(cfg),
        "fig10" => accuracy_experiment(cfg, QueryKind::Edge),
        "fig11" => accuracy_experiment(cfg, QueryKind::Vertex),
        "fig12" | "fig13" | "composite" => composite_experiment(cfg),
        "fig14" => irregularity_experiment(cfg, false),
        "fig15" => irregularity_experiment(cfg, true),
        "fig16" | "fig17" | "fig18" | "fig19" | "update" => update_cost_experiment(cfg),
        "fig20" | "fig20a" | "fig20b" => optimization_experiment(cfg),
        "fig21" => parameter_experiment(cfg),
        _ => Vec::new(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = parse_scale(&args);
    let cfg = ExperimentConfig::for_scale(scale);
    let skip: [&str; 4] = ["--scale", "smoke", "default", "paper"];
    let experiment = args
        .iter()
        .find(|a| !skip.contains(&a.as_str()))
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    let names: Vec<&str> = if experiment == "all" {
        vec![
            "table2",
            "fig2",
            "fig3",
            "fig10",
            "fig11",
            "composite",
            "fig14",
            "fig15",
            "update",
            "fig20",
            "fig21",
        ]
    } else {
        vec![experiment.as_str()]
    };

    for name in names {
        let reports = run(name, &cfg);
        if reports.is_empty() {
            eprintln!("unknown experiment: {name}");
            std::process::exit(2);
        }
        for r in reports {
            r.print();
        }
    }
}
