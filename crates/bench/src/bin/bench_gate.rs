//! CI perf-regression gate over the committed `BENCH_*.json` trajectory.
//!
//! Usage:
//!
//! ```text
//! cargo run -p higgs-bench --release --bin bench_gate -- \
//!     <baseline.json> <current.json> [--threshold 0.25]
//! ```
//!
//! `baseline.json` is a committed trajectory file (e.g. `BENCH_sharding.json`
//! at the repository root); `current.json` is the file a Criterion smoke run
//! just wrote via the `BENCH_JSON` environment variable:
//!
//! ```text
//! BENCH_JSON=$PWD/target/current.json \
//!     cargo bench -p higgs-bench --bench sharding -- --test
//! ```
//!
//! The gate fails (exit code 1) when any benchmark's current median exceeds
//! its baseline median by more than the threshold (default ±25%, also
//! settable via the `BENCH_GATE_THRESHOLD` environment variable), or when a
//! baseline bench id vanished from the current run. Improvements beyond the
//! threshold pass but are called out so the baseline gets refreshed — the
//! committed trajectory should always reflect the repository's best known
//! numbers for the machine that seeded it. Regenerate a baseline by re-running
//! the smoke command above with `BENCH_JSON` pointed at the baseline file.

use higgs_bench::report::{compare_bench, parse_bench_json, BenchRecord};
use std::process::ExitCode;

const DEFAULT_THRESHOLD: f64 = 0.25;

fn load(path: &str) -> Result<Vec<BenchRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let records = parse_bench_json(&text).map_err(|e| format!("cannot parse {path:?}: {e}"))?;
    if records.is_empty() {
        return Err(format!("{path:?} contains no benchmark records"));
    }
    Ok(records)
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    // A malformed override must error, not silently gate at the default.
    let mut threshold = match std::env::var("BENCH_GATE_THRESHOLD") {
        Ok(value) => value.parse::<f64>().map_err(|e| {
            format!("invalid BENCH_GATE_THRESHOLD {value:?}: {e} (use e.g. 0.25 for ±25%)")
        })?,
        Err(_) => DEFAULT_THRESHOLD,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| "--threshold requires a value".to_string())?;
                threshold = value
                    .parse::<f64>()
                    .map_err(|e| format!("invalid threshold {value:?}: {e}"))?;
                i += 2;
            }
            other => {
                paths.push(other.to_string());
                i += 1;
            }
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        return Err(
            "usage: bench_gate <baseline.json> <current.json> [--threshold 0.25]".to_string(),
        );
    };
    if !(threshold.is_finite() && threshold > 0.0) {
        return Err(format!(
            "threshold must be a positive number, got {threshold}"
        ));
    }

    let baseline = load(baseline_path)?;
    let current = load(current_path)?;
    let comparison = compare_bench(&baseline, &current, threshold);
    print!("{}", comparison.render(threshold));
    if comparison.failed() {
        println!(
            "\nFAIL: performance regressed beyond ±{:.0}% of {baseline_path} \
             (re-seed the baseline only for understood, intended changes)",
            threshold * 100.0
        );
    } else {
        println!(
            "\nPASS: within ±{:.0}% of {baseline_path}",
            threshold * 100.0
        );
    }
    Ok(comparison.failed())
}

fn main() -> ExitCode {
    match run() {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("bench_gate: {message}");
            ExitCode::FAILURE
        }
    }
}
