//! CI perf-regression gate over the committed `BENCH_*.json` trajectory.
//!
//! Usage (one or more `(baseline, current)` pairs in a single invocation):
//!
//! ```text
//! cargo run -p higgs-bench --release --bin bench_gate -- \
//!     <baseline.json> <current.json> \
//!     [<baseline2.json> <current2.json> ...] [--threshold 0.25]
//! ```
//!
//! Each `baseline.json` is a committed trajectory file (e.g.
//! `BENCH_sharding.json` at the repository root); its paired `current.json`
//! is the file a Criterion smoke run just wrote via the `BENCH_JSON`
//! environment variable:
//!
//! ```text
//! BENCH_JSON=$PWD/target/current.json \
//!     cargo bench -p higgs-bench --bench sharding -- --test
//! ```
//!
//! A `current` argument may name **several comma-separated files** (the
//! same bench smoke run repeated); the gate then takes the per-id minimum
//! median across them before comparing. One smoke run is best-of-15 timed
//! repetitions, but a noisy scheduler window can inflate a whole
//! invocation; the minimum across invocations separated in time is the
//! robust location estimate a regression gate needs — real regressions
//! slow every run, noise rarely hits the same id twice.
//!
//! Every pair's per-id verdict table is printed, followed by **one summary
//! table** with the worst current/baseline ratio per group, so a CI log
//! shows the whole gate's health at a glance. The gate fails (exit code 1)
//! when any pair has a benchmark whose current median exceeds its baseline
//! median by more than the threshold (default ±25%, also settable via the
//! `BENCH_GATE_THRESHOLD` environment variable), or when a baseline bench
//! id vanished from its current run. Improvements beyond the threshold pass
//! but are called out so the baseline gets refreshed — the committed
//! trajectory should always reflect the repository's best known numbers for
//! the machine that seeded it. Regenerate a baseline by re-running the
//! smoke command above with `BENCH_JSON` pointed at the baseline file.

use higgs_bench::report::{compare_bench, parse_bench_json, BenchRecord, Report, Row};
use std::process::ExitCode;

const DEFAULT_THRESHOLD: f64 = 0.25;

fn load(path: &str) -> Result<Vec<BenchRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let records = parse_bench_json(&text).map_err(|e| format!("cannot parse {path:?}: {e}"))?;
    if records.is_empty() {
        return Err(format!("{path:?} contains no benchmark records"));
    }
    Ok(records)
}

/// Loads one or more comma-separated current files and folds them into one
/// record set: per id, the record with the lowest median (see the crate
/// docs for why minimum-across-runs is the right estimator here). An id
/// counts as present if any of the runs measured it.
fn load_current(spec: &str) -> Result<Vec<BenchRecord>, String> {
    let mut merged: Vec<BenchRecord> = Vec::new();
    for path in spec.split(',').filter(|p| !p.is_empty()) {
        for record in load(path)? {
            match merged.iter_mut().find(|m| m.id == record.id) {
                Some(existing) => {
                    if record.median_ns < existing.median_ns {
                        *existing = record;
                    }
                }
                None => merged.push(record),
            }
        }
    }
    if merged.is_empty() {
        return Err(format!("{spec:?} contains no benchmark records"));
    }
    Ok(merged)
}

/// Strips directories and the `BENCH_` / `.json` decorations so the summary
/// table reads `sharding`, `matrix`, `deletion`, …
fn group_label(baseline_path: &str) -> String {
    let file = baseline_path
        .rsplit(['/', '\\'])
        .next()
        .unwrap_or(baseline_path);
    file.strip_prefix("BENCH_")
        .unwrap_or(file)
        .strip_suffix(".json")
        .unwrap_or(file)
        .to_string()
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    // A malformed override must error, not silently gate at the default.
    let mut threshold = match std::env::var("BENCH_GATE_THRESHOLD") {
        Ok(value) => value.parse::<f64>().map_err(|e| {
            format!("invalid BENCH_GATE_THRESHOLD {value:?}: {e} (use e.g. 0.25 for ±25%)")
        })?,
        Err(_) => DEFAULT_THRESHOLD,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| "--threshold requires a value".to_string())?;
                threshold = value
                    .parse::<f64>()
                    .map_err(|e| format!("invalid threshold {value:?}: {e}"))?;
                i += 2;
            }
            other => {
                paths.push(other.to_string());
                i += 1;
            }
        }
    }
    if paths.is_empty() || paths.len() % 2 != 0 {
        return Err("usage: bench_gate <baseline.json> <current.json> \
             [<baseline2.json> <current2.json> ...] [--threshold 0.25]"
            .to_string());
    }
    if !(threshold.is_finite() && threshold > 0.0) {
        return Err(format!(
            "threshold must be a positive number, got {threshold}"
        ));
    }

    let mut summary = Report::new(
        format!("Bench gate summary (threshold ±{:.0}%)", threshold * 100.0),
        vec!["ids", "worst ratio", "worst id", "verdict"],
    );
    let mut any_failed = false;
    for pair in paths.chunks(2) {
        let (baseline_path, current_path) = (&pair[0], &pair[1]);
        let baseline = load(baseline_path)?;
        let current = load_current(current_path)?;
        let comparison = compare_bench(&baseline, &current, threshold);
        print!("{}", comparison.render(threshold));
        println!();
        let failed = comparison.failed();
        any_failed |= failed;
        let (worst_id, worst_ratio) = match comparison.worst_ratio() {
            Some((id, ratio)) => (id.to_string(), format!("{ratio:.2}x")),
            None => ("-".to_string(), "-".to_string()),
        };
        let verdict = if failed {
            if comparison.missing_count() > 0 {
                format!("FAIL ({} missing)", comparison.missing_count())
            } else {
                "FAIL".to_string()
            }
        } else {
            "pass".to_string()
        };
        summary.push(Row::new(
            group_label(baseline_path),
            vec![
                comparison.rows.len().to_string(),
                worst_ratio,
                worst_id,
                verdict,
            ],
        ));
    }

    print!("{}", summary.render());
    if any_failed {
        println!(
            "\nFAIL: performance regressed beyond ±{:.0}% of the committed baselines \
             (re-seed a baseline only for understood, intended changes)",
            threshold * 100.0
        );
    } else {
        println!(
            "\nPASS: all {} group(s) within ±{:.0}% of their baselines",
            paths.len() / 2,
            threshold * 100.0
        );
    }
    Ok(any_failed)
}

fn main() -> ExitCode {
    match run() {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("bench_gate: {message}");
            ExitCode::FAILURE
        }
    }
}
