//! Plain-text experiment reports: each figure/table of the paper is rendered
//! as one aligned table whose rows are the series the paper plots.

use serde::{Deserialize, Serialize};

/// One row of a report: a label plus one value per column.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Row {
    /// Row label (e.g. method name or parameter value).
    pub label: String,
    /// One value per column, already formatted.
    pub values: Vec<String>,
}

impl Row {
    /// Creates a row from a label and pre-formatted values.
    pub fn new(label: impl Into<String>, values: Vec<String>) -> Self {
        Self {
            label: label.into(),
            values,
        }
    }
}

/// A rendered experiment: title, column headers, and rows.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Report {
    /// Report title (e.g. "Fig. 10a — Edge query AAE (Lkml)").
    pub title: String,
    /// Column headers (not counting the leading label column).
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Row>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(title: impl Into<String>, columns: Vec<&str>) -> Self {
        Self {
            title: title.into(),
            columns: columns.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Renders the report as an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut widths = vec![self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain(std::iter::once("method".len()))
            .max()
            .unwrap_or(8)];
        for (i, col) in self.columns.iter().enumerate() {
            let w = self
                .rows
                .iter()
                .map(|r| r.values.get(i).map(String::len).unwrap_or(0))
                .chain(std::iter::once(col.len()))
                .max()
                .unwrap_or(col.len());
            widths.push(w);
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let mut header = format!("{:<width$}", "method", width = widths[0]);
        for (i, col) in self.columns.iter().enumerate() {
            header.push_str(&format!("  {:>width$}", col, width = widths[i + 1]));
        }
        out.push_str(&header);
        out.push('\n');
        out.push_str(&"-".repeat(header.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("{:<width$}", row.label, width = widths[0]));
            for (i, v) in row.values.iter().enumerate() {
                out.push_str(&format!("  {:>width$}", v, width = widths[i + 1]));
            }
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a float with engineering-style precision suited to error metrics.
pub fn fmt_metric(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() < 0.001 || v.abs() >= 100_000.0 {
        format!("{v:.3e}")
    } else if v.abs() < 1.0 {
        format!("{v:.4}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut r = Report::new("Fig. X — demo", vec!["AAE", "ARE"]);
        r.push(Row::new("HIGGS", vec!["0".into(), "0".into()]));
        r.push(Row::new("Horae", vec!["12.5".into(), "0.33".into()]));
        let text = r.render();
        assert!(text.contains("Fig. X"));
        assert!(text.contains("HIGGS"));
        assert!(text.contains("Horae"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    fn fmt_metric_ranges() {
        assert_eq!(fmt_metric(0.0), "0");
        assert_eq!(fmt_metric(0.5), "0.5000");
        assert_eq!(fmt_metric(12.345), "12.35");
        assert!(fmt_metric(1.0e-6).contains('e'));
        assert!(fmt_metric(5.0e7).contains('e'));
    }
}
