//! Plain-text experiment reports — each figure/table of the paper rendered
//! as one aligned table — plus the machine-readable benchmark records behind
//! the CI perf-regression gate.
//!
//! The Criterion smoke runs (`cargo bench … -- --test` with `BENCH_JSON`
//! set) emit `BENCH_*.json` trajectory files: one [`BenchRecord`] per bench
//! id with the median ns/iteration and, where a throughput is configured,
//! Melem/s. [`parse_bench_json`] reads that format (the criterion shim is
//! the single writer), and [`compare_bench`] checks a current run against a
//! committed baseline with a relative threshold — the `bench_gate` binary
//! wires this into CI and fails the build on regression.

use serde::{Deserialize, Serialize};

/// One row of a report: a label plus one value per column.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Row {
    /// Row label (e.g. method name or parameter value).
    pub label: String,
    /// One value per column, already formatted.
    pub values: Vec<String>,
}

impl Row {
    /// Creates a row from a label and pre-formatted values.
    pub fn new(label: impl Into<String>, values: Vec<String>) -> Self {
        Self {
            label: label.into(),
            values,
        }
    }
}

/// A rendered experiment: title, column headers, and rows.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Report {
    /// Report title (e.g. "Fig. 10a — Edge query AAE (Lkml)").
    pub title: String,
    /// Column headers (not counting the leading label column).
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Row>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(title: impl Into<String>, columns: Vec<&str>) -> Self {
        Self {
            title: title.into(),
            columns: columns.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Renders the report as an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut widths = vec![self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain(std::iter::once("method".len()))
            .max()
            .unwrap_or(8)];
        for (i, col) in self.columns.iter().enumerate() {
            let w = self
                .rows
                .iter()
                .map(|r| r.values.get(i).map(String::len).unwrap_or(0))
                .chain(std::iter::once(col.len()))
                .max()
                .unwrap_or(col.len());
            widths.push(w);
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let mut header = format!("{:<width$}", "method", width = widths[0]);
        for (i, col) in self.columns.iter().enumerate() {
            header.push_str(&format!("  {:>width$}", col, width = widths[i + 1]));
        }
        out.push_str(&header);
        out.push('\n');
        out.push_str(&"-".repeat(header.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("{:<width$}", row.label, width = widths[0]));
            for (i, v) in row.values.iter().enumerate() {
                out.push_str(&format!("  {:>width$}", v, width = widths[i + 1]));
            }
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// One machine-readable benchmark measurement, as emitted by the criterion
/// shim into the file named by `BENCH_JSON`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Full benchmark id (`group/function[/parameter]`).
    pub id: String,
    /// Median wall-clock time per iteration in nanoseconds.
    pub median_ns: f64,
    /// Element throughput implied by the median, when the bench declares a
    /// `Throughput::Elements` annotation.
    pub melem_per_s: Option<f64>,
}

/// Parses a `BENCH_*.json` document.
///
/// A deliberately small parser for the fixed record shape above (the build
/// environment has no JSON dependency): it scans for `"id"`, `"median_ns"`
/// and `"melem_per_s"` keys inside each `{…}` object of the `records` array
/// and is insensitive to whitespace. Ids must not contain quotes or
/// backslashes, which holds for every benchmark id in this workspace.
pub fn parse_bench_json(text: &str) -> Result<Vec<BenchRecord>, String> {
    let array_start = text
        .find('[')
        .ok_or_else(|| "no records array found".to_string())?;
    let array_end = text
        .rfind(']')
        .ok_or_else(|| "unterminated records array".to_string())?;
    if array_end <= array_start {
        return Err("records array closes before it opens".to_string());
    }
    let body = &text[array_start + 1..array_end];
    let mut records = Vec::new();
    let mut rest = body;
    while let Some(open) = rest.find('{') {
        let close = rest[open..]
            .find('}')
            .ok_or_else(|| "unterminated record object".to_string())?
            + open;
        let object = &rest[open + 1..close];
        records.push(parse_record_object(object)?);
        rest = &rest[close + 1..];
    }
    Ok(records)
}

fn parse_record_object(object: &str) -> Result<BenchRecord, String> {
    let id = string_field(object, "id")?;
    let median_ns = number_field(object, "median_ns")?
        .ok_or_else(|| format!("record {id:?} has null median_ns"))?;
    let melem_per_s = number_field(object, "melem_per_s")?;
    Ok(BenchRecord {
        id,
        median_ns,
        melem_per_s,
    })
}

/// The raw text of `"key": <value>` inside `object`, trimmed.
fn field_value<'a>(object: &'a str, key: &str) -> Result<&'a str, String> {
    let marker = format!("\"{key}\"");
    let key_pos = object
        .find(&marker)
        .ok_or_else(|| format!("missing field {key:?} in {object:?}"))?;
    let after_key = &object[key_pos + marker.len()..];
    let colon = after_key
        .find(':')
        .ok_or_else(|| format!("malformed field {key:?}"))?;
    let value = after_key[colon + 1..].trim_start();
    let end = value
        .char_indices()
        .find(|&(i, c)| {
            if value.starts_with('"') {
                i > 0 && c == '"'
            } else {
                c == ',' || c == '}'
            }
        })
        .map(|(i, _)| if value.starts_with('"') { i + 1 } else { i })
        .unwrap_or(value.len());
    Ok(value[..end].trim_end())
}

fn string_field(object: &str, key: &str) -> Result<String, String> {
    let value = field_value(object, key)?;
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| format!("field {key:?} is not a string: {value:?}"))?;
    Ok(inner.to_string())
}

fn number_field(object: &str, key: &str) -> Result<Option<f64>, String> {
    let value = field_value(object, key)?;
    if value == "null" {
        return Ok(None);
    }
    value
        .parse::<f64>()
        .map(Some)
        .map_err(|e| format!("field {key:?} is not a number ({value:?}): {e}"))
}

/// Verdict for one benchmark id present in the baseline.
#[derive(Clone, Debug, PartialEq)]
pub enum BenchVerdict {
    /// Within the threshold of the baseline (ratio = current/baseline).
    Ok {
        /// current/baseline median ratio.
        ratio: f64,
    },
    /// Slower than baseline by more than the threshold — a regression.
    Regression {
        /// current/baseline median ratio (> 1 + threshold).
        ratio: f64,
    },
    /// Faster than baseline by more than the threshold; not a failure, but
    /// the committed baseline understates the trajectory and should be
    /// refreshed.
    Improvement {
        /// current/baseline median ratio (< 1 / (1 + threshold)).
        ratio: f64,
    },
    /// The id exists in the baseline but not in the current run.
    Missing,
}

/// Result of comparing a current bench run against a committed baseline.
#[derive(Clone, Debug, Default)]
pub struct BenchComparison {
    /// `(id, baseline_ns, current_ns, verdict)` for every baseline id, in
    /// baseline order.
    pub rows: Vec<(String, f64, Option<f64>, BenchVerdict)>,
    /// Ids present only in the current run (inform: baseline needs
    /// re-seeding to start tracking them).
    pub new_ids: Vec<String>,
}

impl BenchComparison {
    /// Whether the gate must fail: any regression, or a baseline id that
    /// disappeared (a silently dropped bench would otherwise hide its
    /// regressions forever).
    pub fn failed(&self) -> bool {
        self.rows.iter().any(|(_, _, _, v)| {
            matches!(v, BenchVerdict::Regression { .. } | BenchVerdict::Missing)
        })
    }

    /// The worst (highest) current/baseline ratio in this comparison,
    /// together with the id carrying it — the one number a multi-group
    /// summary reports per group. `None` when no baseline id was matched by
    /// the current run (every row `Missing`), which is itself a failure.
    pub fn worst_ratio(&self) -> Option<(&str, f64)> {
        self.rows
            .iter()
            .filter_map(|(id, _, _, verdict)| match verdict {
                BenchVerdict::Ok { ratio }
                | BenchVerdict::Regression { ratio }
                | BenchVerdict::Improvement { ratio } => Some((id.as_str(), *ratio)),
                BenchVerdict::Missing => None,
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Number of baseline ids that vanished from the current run.
    pub fn missing_count(&self) -> usize {
        self.rows
            .iter()
            .filter(|(_, _, _, v)| matches!(v, BenchVerdict::Missing))
            .count()
    }

    /// Renders an aligned human-readable verdict table.
    pub fn render(&self, threshold: f64) -> String {
        let mut report = Report::new(
            format!("Bench gate (threshold ±{:.0}%)", threshold * 100.0),
            vec!["baseline", "current", "ratio", "verdict"],
        );
        for (id, baseline_ns, current_ns, verdict) in &self.rows {
            let (ratio, label) = match verdict {
                BenchVerdict::Ok { ratio } => (Some(*ratio), "ok"),
                BenchVerdict::Regression { ratio } => (Some(*ratio), "REGRESSION"),
                BenchVerdict::Improvement { ratio } => (Some(*ratio), "improvement"),
                BenchVerdict::Missing => (None, "MISSING"),
            };
            report.push(Row::new(
                id.clone(),
                vec![
                    format!("{:.0} ns", baseline_ns),
                    current_ns.map_or("-".into(), |ns| format!("{ns:.0} ns")),
                    ratio.map_or("-".into(), |r| format!("{r:.2}x")),
                    label.to_string(),
                ],
            ));
        }
        let mut out = report.render();
        for id in &self.new_ids {
            out.push_str(&format!("new bench (not in baseline): {id}\n"));
        }
        out
    }
}

/// Compares a current run against a baseline: a benchmark regresses when its
/// current median exceeds the baseline median by more than `threshold`
/// (0.25 = +25%), and counts as an improvement when it undercuts the
/// baseline by the symmetric factor.
pub fn compare_bench(
    baseline: &[BenchRecord],
    current: &[BenchRecord],
    threshold: f64,
) -> BenchComparison {
    let mut comparison = BenchComparison::default();
    for b in baseline {
        let verdict = match current.iter().find(|c| c.id == b.id) {
            None => (None, BenchVerdict::Missing),
            Some(c) => {
                let ratio = c.median_ns / b.median_ns.max(f64::MIN_POSITIVE);
                let v = if ratio > 1.0 + threshold {
                    BenchVerdict::Regression { ratio }
                } else if ratio < 1.0 / (1.0 + threshold) {
                    BenchVerdict::Improvement { ratio }
                } else {
                    BenchVerdict::Ok { ratio }
                };
                (Some(c.median_ns), v)
            }
        };
        comparison
            .rows
            .push((b.id.clone(), b.median_ns, verdict.0, verdict.1));
    }
    for c in current {
        if !baseline.iter().any(|b| b.id == c.id) {
            comparison.new_ids.push(c.id.clone());
        }
    }
    comparison
}

/// Formats a float with engineering-style precision suited to error metrics.
pub fn fmt_metric(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() < 0.001 || v.abs() >= 100_000.0 {
        format!("{v:.3e}")
    } else if v.abs() < 1.0 {
        format!("{v:.4}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut r = Report::new("Fig. X — demo", vec!["AAE", "ARE"]);
        r.push(Row::new("HIGGS", vec!["0".into(), "0".into()]));
        r.push(Row::new("Horae", vec!["12.5".into(), "0.33".into()]));
        let text = r.render();
        assert!(text.contains("Fig. X"));
        assert!(text.contains("HIGGS"));
        assert!(text.contains("Horae"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    fn fmt_metric_ranges() {
        assert_eq!(fmt_metric(0.0), "0");
        assert_eq!(fmt_metric(0.5), "0.5000");
        assert_eq!(fmt_metric(12.345), "12.35");
        assert!(fmt_metric(1.0e-6).contains('e'));
        assert!(fmt_metric(5.0e7).contains('e'));
    }

    fn sample_records() -> Vec<BenchRecord> {
        vec![
            BenchRecord {
                id: "sharding/ingest/sharded/4".into(),
                median_ns: 123_456.789,
                melem_per_s: Some(48.6),
            },
            BenchRecord {
                id: "matrix_layout/insert/64".into(),
                median_ns: 250.0,
                melem_per_s: None,
            },
        ]
    }

    #[test]
    fn parse_accepts_the_criterion_shim_emission_verbatim() {
        // Kept in lockstep with render_json in the criterion shim: if the
        // shim's format drifts, this literal catches it.
        let text = "{\n  \"records\": [\n    {\"id\": \"sharding/ingest/single\", \
                    \"median_ns\": 2100000.000, \"melem_per_s\": 2.857143},\n    \
                    {\"id\": \"matrix_layout/src_weight/256\", \"median_ns\": 970000.000, \
                    \"melem_per_s\": null}\n  ]\n}\n";
        let parsed = parse_bench_json(text).expect("parse shim output");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].id, "sharding/ingest/single");
        assert!((parsed[0].median_ns - 2.1e6).abs() < 1e-3);
        assert!((parsed[0].melem_per_s.expect("throughput") - 2.857143).abs() < 1e-9);
        assert_eq!(parsed[1].melem_per_s, None);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(parse_bench_json("not json at all").is_err());
        // A truncated/garbled file where ']' precedes '[' must error, not
        // panic on a reversed slice.
        assert!(parse_bench_json("] garbage [").is_err());
        assert!(parse_bench_json("{\"records\": [{\"id\": \"x\"}]}").is_err());
        assert!(
            parse_bench_json(
                "{\"records\": [{\"id\": \"x\", \"median_ns\": null, \
                              \"melem_per_s\": null}]}"
            )
            .is_err(),
            "null median must be rejected"
        );
        assert_eq!(parse_bench_json("{\"records\": []}").unwrap(), vec![]);
    }

    #[test]
    fn compare_bench_classifies_regressions_improvements_and_missing() {
        let baseline = vec![
            BenchRecord {
                id: "a".into(),
                median_ns: 1_000.0,
                melem_per_s: None,
            },
            BenchRecord {
                id: "b".into(),
                median_ns: 1_000.0,
                melem_per_s: None,
            },
            BenchRecord {
                id: "c".into(),
                median_ns: 1_000.0,
                melem_per_s: None,
            },
            BenchRecord {
                id: "gone".into(),
                median_ns: 1_000.0,
                melem_per_s: None,
            },
        ];
        let current = vec![
            BenchRecord {
                id: "a".into(),
                median_ns: 1_200.0, // +20% — inside a 25% threshold
                melem_per_s: None,
            },
            BenchRecord {
                id: "b".into(),
                median_ns: 1_300.0, // +30% — regression
                melem_per_s: None,
            },
            BenchRecord {
                id: "c".into(),
                median_ns: 700.0, // −30% — improvement
                melem_per_s: None,
            },
            BenchRecord {
                id: "fresh".into(),
                median_ns: 10.0,
                melem_per_s: None,
            },
        ];
        let cmp = compare_bench(&baseline, &current, 0.25);
        assert!(matches!(cmp.rows[0].3, BenchVerdict::Ok { .. }));
        assert!(matches!(cmp.rows[1].3, BenchVerdict::Regression { .. }));
        assert!(matches!(cmp.rows[2].3, BenchVerdict::Improvement { .. }));
        assert_eq!(cmp.rows[3].3, BenchVerdict::Missing);
        assert_eq!(cmp.new_ids, vec!["fresh".to_string()]);
        assert!(cmp.failed());
        let rendered = cmp.render(0.25);
        assert!(rendered.contains("REGRESSION"));
        assert!(rendered.contains("MISSING"));
        assert!(rendered.contains("improvement"));
        assert!(rendered.contains("fresh"));
    }

    #[test]
    fn worst_ratio_reports_the_highest_current_over_baseline() {
        let baseline = sample_records();
        let mut current = sample_records();
        current[0].median_ns *= 1.18; // worst offender, inside threshold
        current[1].median_ns *= 0.95;
        let cmp = compare_bench(&baseline, &current, 0.25);
        let (id, ratio) = cmp.worst_ratio().expect("ratios exist");
        assert_eq!(id, "sharding/ingest/sharded/4");
        assert!((ratio - 1.18).abs() < 1e-9);
        assert_eq!(cmp.missing_count(), 0);
    }

    #[test]
    fn worst_ratio_is_none_when_everything_vanished() {
        let baseline = sample_records();
        let other = vec![BenchRecord {
            id: "unrelated".into(),
            median_ns: 1.0,
            melem_per_s: None,
        }];
        let cmp = compare_bench(&baseline, &other, 0.25);
        assert!(cmp.worst_ratio().is_none());
        assert_eq!(cmp.missing_count(), baseline.len());
        assert!(cmp.failed());
    }

    #[test]
    fn compare_bench_passes_when_within_threshold() {
        let baseline = sample_records();
        let mut current = sample_records();
        current[0].median_ns *= 1.1;
        current[1].median_ns *= 0.9;
        let cmp = compare_bench(&baseline, &current, 0.25);
        assert!(!cmp.failed());
        assert!(cmp.new_ids.is_empty());
    }
}
