//! The six competitors of the paper's evaluation (Section VI-A): HIGGS and
//! the five baselines, built with comparable parameters so that hash ranges
//! (and hence collision behaviour) are matched, as the paper does.

use higgs::{HiggsConfig, HiggsSummary, ParallelHiggs, ShardedHiggs};
use higgs_baselines::{AuxoTime, AuxoTimeConfig, Horae, HoraeConfig, Pgss, PgssConfig};
use higgs_common::TemporalGraphSummary;

/// Identifies one competitor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompetitorKind {
    /// HIGGS with the paper-default configuration.
    Higgs,
    /// PGSS (WWW'23).
    Pgss,
    /// Horae (ICDE'22).
    Horae,
    /// Horae-cpt (space-optimised Horae).
    HoraeCpt,
    /// AuxoTime (Auxo + Horae range decomposition).
    AuxoTime,
    /// AuxoTime-cpt.
    AuxoTimeCpt,
}

impl CompetitorKind {
    /// All competitors in the order the paper's figures list them.
    pub fn all() -> [CompetitorKind; 6] {
        [
            CompetitorKind::Higgs,
            CompetitorKind::Pgss,
            CompetitorKind::Horae,
            CompetitorKind::HoraeCpt,
            CompetitorKind::AuxoTime,
            CompetitorKind::AuxoTimeCpt,
        ]
    }

    /// Human-readable label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            CompetitorKind::Higgs => "HIGGS",
            CompetitorKind::Pgss => "PGSS",
            CompetitorKind::Horae => "Horae",
            CompetitorKind::HoraeCpt => "Horae-cpt",
            CompetitorKind::AuxoTime => "AuxoTime",
            CompetitorKind::AuxoTimeCpt => "AuxoTime-cpt",
        }
    }

    /// Builds an empty summary of this kind sized for `expected_edges` stream
    /// items over `time_slices` time slices.
    pub fn build(
        &self,
        expected_edges: usize,
        time_slices: u64,
    ) -> Box<dyn TemporalGraphSummary + Send> {
        match self {
            CompetitorKind::Higgs => Box::new(HiggsSummary::new(HiggsConfig::paper_default())),
            CompetitorKind::Pgss => Box::new(Pgss::new(PgssConfig::for_stream(
                expected_edges,
                time_slices,
            ))),
            CompetitorKind::Horae => Box::new(Horae::new(HoraeConfig::for_stream(
                expected_edges,
                time_slices,
            ))),
            CompetitorKind::HoraeCpt => Box::new(Horae::compact(HoraeConfig::for_stream(
                expected_edges,
                time_slices,
            ))),
            CompetitorKind::AuxoTime => Box::new(AuxoTime::new(AuxoTimeConfig::for_stream(
                expected_edges,
                time_slices,
            ))),
            CompetitorKind::AuxoTimeCpt => Box::new(AuxoTime::compact(AuxoTimeConfig::for_stream(
                expected_edges,
                time_slices,
            ))),
        }
    }
}

/// Builds every competitor for a stream of `expected_edges` items over
/// `time_slices` slices.
pub fn build_competitors(
    expected_edges: usize,
    time_slices: u64,
) -> Vec<Box<dyn TemporalGraphSummary + Send>> {
    CompetitorKind::all()
        .into_iter()
        .map(|k| k.build(expected_edges, time_slices))
        .collect()
}

/// Builds a HIGGS instance wrapped in the parallel insertion pipeline
/// (Fig. 20a ablation).
pub fn build_parallel_higgs(workers: usize) -> ParallelHiggs {
    ParallelHiggs::new(HiggsConfig::paper_default(), workers)
}

/// Builds a source-sharded HIGGS service with paper-default per-shard
/// parameters (the `sharding` bench group and scale-out experiments).
pub fn build_sharded_higgs(shards: usize) -> ShardedHiggs {
    ShardedHiggs::new(
        HiggsConfig::builder()
            .shards(shards)
            .build()
            .expect("paper defaults with a valid shard count"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use higgs_common::{Query, StreamEdge, TimeRange, VertexDirection};

    #[test]
    fn all_competitors_build_and_answer_queries() {
        for kind in CompetitorKind::all() {
            let mut s = kind.build(10_000, 1 << 12);
            s.insert(&StreamEdge::new(1, 2, 5, 100));
            assert_eq!(
                s.edge_query(1, 2, TimeRange::new(0, 4000)),
                5,
                "{} failed",
                kind.label()
            );
            assert_eq!(s.name(), kind.label());
            assert!(s.space_bytes() > 0);
        }
    }

    #[test]
    fn all_competitors_answer_typed_query_batches() {
        // The typed Query surface is trait-level, so every competitor —
        // HIGGS with its plan-sharing override, the baselines through the
        // default loop — must answer mixed batches identically to the
        // per-query path.
        let range = TimeRange::new(0, 4000);
        let batch = [
            Query::edge(1, 2, range),
            Query::vertex(1, VertexDirection::Out, range),
            Query::path(vec![1, 2, 3], range),
            Query::subgraph(vec![(1, 2), (2, 3)], range),
        ];
        for kind in CompetitorKind::all() {
            let mut s = kind.build(10_000, 1 << 12);
            s.insert(&StreamEdge::new(1, 2, 5, 100));
            s.insert(&StreamEdge::new(2, 3, 2, 200));
            let batched = s.query_batch(&batch);
            let looped: Vec<u64> = batch.iter().map(|q| s.query(q)).collect();
            assert_eq!(batched, looped, "{} batch mismatch", kind.label());
            assert_eq!(batched[0], 5, "{}", kind.label());
            assert_eq!(batched[2], 7, "{}", kind.label());
            assert_eq!(batched[3], 7, "{}", kind.label());
        }
    }

    #[test]
    fn build_competitors_returns_all_six() {
        let all = build_competitors(1_000, 1024);
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn parallel_higgs_builder_works() {
        let mut p = build_parallel_higgs(2);
        p.insert(&StreamEdge::new(3, 4, 1, 7));
        assert_eq!(p.edge_query(3, 4, TimeRange::all()), 1);
    }

    #[test]
    fn sharded_higgs_builder_works() {
        let mut s = build_sharded_higgs(4);
        s.insert(&StreamEdge::new(3, 4, 1, 7));
        assert_eq!(s.edge_query(3, 4, TimeRange::all()), 1);
        assert_eq!(s.name(), "HIGGS-sharded");
    }
}
