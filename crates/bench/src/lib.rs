//! # higgs-bench
//!
//! Benchmark harness regenerating the HIGGS evaluation (Section VI).
//!
//! Two entry points:
//!
//! * the `figures` binary (`cargo run -p higgs-bench --release --bin figures
//!   -- <experiment>`) prints the rows/series behind every table and figure
//!   of the paper (Table II, Fig 2–3, Fig 10–21),
//! * Criterion micro-benchmarks (`cargo bench -p higgs-bench`) cover the
//!   latency/throughput figures (edge/vertex query latency, insertion and
//!   deletion throughput, path/subgraph queries, optimisation ablations).
//!
//! The library part of the crate contains the shared experiment drivers so
//! that the binary and the Criterion benches run exactly the same code.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod competitors;
pub mod experiments;
pub mod report;

pub use competitors::{build_competitors, CompetitorKind};
pub use experiments::ExperimentConfig;
pub use report::{Report, Row};
