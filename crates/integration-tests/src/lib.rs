//! Anchor crate that exposes the repository-level `tests/` directory as cargo
//! integration tests spanning every crate in the workspace.

#![forbid(unsafe_code)]
