//! Minimal stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` — the only
//! pieces this workspace uses — as an unbounded multi-producer/multi-consumer
//! channel built on `Mutex<VecDeque>` + `Condvar`. Semantics match crossbeam
//! for the operations exposed: cloneable endpoints, `recv` blocks until a
//! message arrives or every sender is dropped, `send` fails once every
//! receiver is dropped. Lock-based rather than lock-free, which is irrelevant
//! at the message rates of the aggregation pipeline (a handful of jobs per
//! leaf-group close).

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(chan.clone()), Receiver(chan))
    }

    /// The sending half of a channel.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// The receiving half of a channel.
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent message is handed back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.0.state.lock().expect("channel poisoned");
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.0.state.lock().expect("channel poisoned");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.0.ready.wait(state).expect("channel poisoned");
            }
        }

        /// Pops a queued message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.0.state.lock().expect("channel poisoned");
            match state.queue.pop_front() {
                Some(value) => Ok(value),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().expect("channel poisoned").senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().expect("channel poisoned").receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.0.state.lock().expect("channel poisoned");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake blocked receivers so they observe the disconnect.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.state.lock().expect("channel poisoned").receivers -= 1;
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError, TryRecvError};

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_unblocks_on_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        let handle = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(tx);
        assert_eq!(handle.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn mpmc_all_messages_delivered_once() {
        let (tx, rx) = unbounded::<u64>();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        tx.send(p * 1_000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<u64> = (0..4)
            .flat_map(|p| (0..1_000).map(move |i| p * 1_000 + i))
            .collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
