//! Minimal stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::{unbounded, bounded, Sender, Receiver}` —
//! the only pieces this workspace uses — as a multi-producer/multi-consumer
//! channel built on `Mutex<VecDeque>` + two `Condvar`s. Semantics match
//! crossbeam for the operations exposed: cloneable endpoints, `recv` blocks
//! until a message arrives or every sender is dropped, `send` fails once
//! every receiver is dropped, and on a [`bounded`](channel::bounded) channel
//! `send` **blocks** while the queue is at capacity — the backpressure
//! primitive the sharded ingest path builds on. The non-blocking /
//! time-bounded variants ([`Sender::try_send`](channel::Sender::try_send),
//! [`Receiver::recv_timeout`](channel::Receiver::recv_timeout)) mirror real
//! crossbeam's signatures; the serving front-end's admission loop is built
//! on them. Lock-based rather than lock-free, which is irrelevant at the
//! message rates of the aggregation pipeline (a handful of jobs per
//! leaf-group close).

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
        /// `Some(n)` bounds the queue at `n` messages (blocking sends);
        /// `None` is unbounded.
        capacity: Option<usize>,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        /// Signalled when a message is enqueued (wakes blocked receivers) or
        /// the last sender leaves.
        ready: Condvar,
        /// Signalled when a message is dequeued (wakes senders blocked on a
        /// full bounded queue) or the last receiver leaves.
        space: Condvar,
    }

    fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
                capacity,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
        });
        (Sender(chan.clone()), Receiver(chan))
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// Creates a bounded MPMC channel holding at most `capacity` messages:
    /// once full, [`Sender::send`] blocks until a receiver makes room (or
    /// every receiver is gone, which fails the send).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero. Real crossbeam gives `bounded(0)`
    /// rendezvous semantics; nothing in this workspace uses them, and a
    /// zero-capacity queue here would simply deadlock, so it is rejected.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        assert!(capacity >= 1, "bounded channel capacity must be at least 1");
        channel(Some(capacity))
    }

    /// The sending half of a channel.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// The receiving half of a channel.
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent message is handed back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Sender::try_send`]; the unsent message is handed
    /// back in either case, matching real crossbeam.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded queue is at capacity right now.
        Full(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only if every receiver has been dropped.
        /// On a [`bounded`] channel this blocks while the queue is full, so a
        /// producer outrunning the consumer experiences backpressure instead
        /// of unbounded queue growth.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.0.state.lock().expect("channel poisoned");
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match state.capacity {
                    Some(cap) if state.queue.len() >= cap => {
                        state = self.0.space.wait(state).expect("channel poisoned");
                    }
                    _ => break,
                }
            }
            state.queue.push_back(value);
            drop(state);
            self.0.ready.notify_one();
            Ok(())
        }

        /// Enqueues `value` without blocking: a full bounded queue hands the
        /// message back as [`TrySendError::Full`] instead of waiting for
        /// room, and a channel with no receivers hands it back as
        /// [`TrySendError::Disconnected`]. On an unbounded channel this never
        /// reports `Full`.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.0.state.lock().expect("channel poisoned");
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = state.capacity {
                if state.queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            state.queue.push_back(value);
            drop(state);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.0.state.lock().expect("channel poisoned");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.0.space.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.0.ready.wait(state).expect("channel poisoned");
            }
        }

        /// Blocks until a message arrives, every sender is dropped, or
        /// `timeout` elapses — whichever happens first. Spurious condvar
        /// wakeups re-check the remaining budget, so the total wait never
        /// exceeds `timeout` by more than scheduling noise.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut state = self.0.state.lock().expect("channel poisoned");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.0.space.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let Some(remaining) = deadline.checked_duration_since(std::time::Instant::now())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, result) = self
                    .0
                    .ready
                    .wait_timeout(state, remaining)
                    .expect("channel poisoned");
                state = guard;
                if result.timed_out() && state.queue.is_empty() {
                    if state.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Pops a queued message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.0.state.lock().expect("channel poisoned");
            match state.queue.pop_front() {
                Some(value) => {
                    drop(state);
                    self.0.space.notify_one();
                    Ok(value)
                }
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().expect("channel poisoned").senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().expect("channel poisoned").receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.0.state.lock().expect("channel poisoned");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake blocked receivers so they observe the disconnect.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.0.state.lock().expect("channel poisoned");
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                // Wake senders blocked on a full bounded queue so they
                // observe the disconnect instead of waiting forever.
                self.0.space.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError, TryRecvError};

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_unblocks_on_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        let handle = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(tx);
        assert_eq!(handle.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn mpmc_all_messages_delivered_once() {
        let (tx, rx) = unbounded::<u64>();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        tx.send(p * 1_000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<u64> = (0..4)
            .flat_map(|p| (0..1_000).map(move |i| p * 1_000 + i))
            .collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn bounded_send_blocks_until_capacity_frees() {
        let (tx, rx) = super::channel::bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let blocked = std::thread::spawn(move || {
            tx.send(3).unwrap(); // queue is full: must block here
            tx
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(
            !blocked.is_finished(),
            "send on a full bounded channel must block"
        );
        assert_eq!(rx.recv(), Ok(1)); // frees a slot, unblocking the sender
        let tx = blocked.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_blocked_send_fails_when_receivers_vanish() {
        let (tx, rx) = super::channel::bounded::<u32>(1);
        tx.send(1).unwrap();
        let blocked = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(std::time::Duration::from_millis(30));
        drop(rx); // must wake the blocked sender with an error
        assert!(blocked.join().unwrap().is_err());
    }

    #[test]
    fn bounded_mpmc_delivers_everything_under_backpressure() {
        let (tx, rx) = super::channel::bounded::<u64>(4);
        let producers: Vec<_> = (0..3)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        tx.send(p * 500 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut all: Vec<u64> = Vec::new();
        while let Ok(v) = rx.recv() {
            all.push(v);
        }
        for p in producers {
            p.join().unwrap();
        }
        all.sort_unstable();
        assert_eq!(all, (0..1_500).collect::<Vec<u64>>());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_is_rejected() {
        let _ = super::channel::bounded::<u32>(0);
    }

    #[test]
    fn try_send_reports_full_and_recovers() {
        let (tx, rx) = super::channel::bounded::<u32>(2);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Ok(()));
        assert_eq!(tx.try_send(3), Err(super::channel::TrySendError::Full(3)));
        assert_eq!(rx.recv(), Ok(1)); // frees a slot
        assert_eq!(tx.try_send(3), Ok(()));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn try_send_reports_disconnected_and_returns_the_value() {
        let (tx, rx) = super::channel::unbounded::<String>();
        drop(rx);
        assert_eq!(
            tx.try_send("orphan".to_string()),
            Err(super::channel::TrySendError::Disconnected(
                "orphan".to_string()
            ))
        );
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        let t0 = std::time::Instant::now();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(20)),
            Err(super::channel::RecvTimeoutError::Timeout)
        );
        assert!(t0.elapsed() >= std::time::Duration::from_millis(20));
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(20)), Ok(7));
    }

    #[test]
    fn recv_timeout_wakes_on_late_arrival_and_disconnect() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        let feeder = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(15));
            tx.send(42).unwrap();
            // dropping tx here disconnects the channel
        });
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(5)), Ok(42));
        feeder.join().unwrap();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(5)),
            Err(super::channel::RecvTimeoutError::Disconnected)
        );
    }
}
