//! Minimal stand-in for the `rand` crate.
//!
//! Implements exactly the surface this workspace uses: the [`Rng`] trait with
//! `gen_range` over half-open and inclusive integer ranges and half-open
//! float ranges, [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`] backed
//! by a SplitMix64 counter generator. Deterministic across platforms, which
//! is all the synthetic-workload generators need; statistical quality is that
//! of SplitMix64 (passes BigCrush), far beyond what the generators require.

/// Types that can produce uniformly distributed raw 64-bit values.
pub trait Rng {
    /// Returns the next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Draws a value uniformly from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange {
    /// The value type produced by the range.
    type Output;
    /// Draws one value uniformly from the range using `rng`.
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for ::std::ops::Range<$t> {
            type Output = $t;
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }
        impl SampleRange for ::std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let width = (end - start) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (width + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for ::std::ops::Range<f64> {
    type Output = f64;
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        // 53 uniform mantissa bits give a value in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// RNGs that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard RNG: a SplitMix64 counter generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = self.state;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let v = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn integer_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {c}");
        }
    }
}
