//! No-op stand-in for the `serde` crate.
//!
//! The workspace annotates its data types with
//! `#[derive(Serialize, Deserialize)]` so that a real serializer can be
//! plugged in later, but nothing actually serialises today and the build
//! environment has no access to crates.io. These derive macros therefore
//! expand to nothing: the attribute positions stay valid, no code is
//! generated, and swapping in the real `serde` later is a one-line
//! `Cargo.toml` change.

use proc_macro::TokenStream;

/// Expands to nothing; placeholder for `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; placeholder for `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
