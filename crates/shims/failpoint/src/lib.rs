//! Deterministic fault-injection failpoints (workspace shim for the `fail`
//! crate's core idea, self-contained — the build environment has no registry
//! access).
//!
//! A *failpoint* is a named hook compiled into production code paths
//! (journal appends, snapshot writes, writer applies). In a normal build the
//! hooks are compiled out entirely; under the consumer's fault-injection
//! feature each hook calls [`eval`] with its name, and a test can
//! [`configure`] that name to trigger an [`Action`] on the **Nth** hit:
//! return an error message, panic, or delay. Because triggering is counted
//! and single-shot, a crash-recovery test can kill a writer at exactly the
//! third append, recover, and replay the same workload deterministically —
//! no timing races, no flaky kills.
//!
//! ```
//! use std::time::Duration;
//!
//! fail::reset();
//! fail::configure("demo::step", 2, fail::Action::Error("injected".into()));
//! assert_eq!(fail::eval("demo::step"), None); // first hit: pass through
//! assert_eq!(fail::eval("demo::step"), Some("injected".into())); // second: fire
//! assert_eq!(fail::eval("demo::step"), None); // single-shot: disarmed
//! fail::reset();
//! # let _ = Duration::ZERO;
//! ```
//!
//! The registry is process-global and mutex-guarded; tests that program
//! failpoints must serialise on their own (the consumers here run chaos
//! tests in dedicated integration binaries).

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// What a triggered failpoint does.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Panic with a message naming the failpoint (simulates a crash of the
    /// thread executing the instrumented path).
    Panic,
    /// Make the instrumented operation fail with this message (the consumer
    /// maps it into its typed error).
    Error(String),
    /// Stall the instrumented path for the given duration, then continue
    /// normally (simulates a slow disk or a scheduling hiccup).
    Delay(Duration),
}

/// One armed failpoint: fires its action on the `on_hit`-th evaluation,
/// exactly once.
#[derive(Debug)]
struct FailPoint {
    on_hit: u64,
    action: Action,
    hits: u64,
    fired: bool,
}

fn registry() -> &'static Mutex<HashMap<String, FailPoint>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, FailPoint>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Arms failpoint `name` to fire `action` on its `on_hit`-th evaluation
/// (1-based; `1` fires on the next hit). Re-configuring a name replaces the
/// previous arming and resets its hit counter. Firing is **single-shot**:
/// after triggering once the failpoint counts hits but stays silent until
/// re-configured, so a recovery replay passing the same code path does not
/// re-trigger the same fault.
///
/// # Panics
///
/// Panics if `on_hit` is zero (a failpoint that never fires is a test bug).
pub fn configure(name: &str, on_hit: u64, action: Action) {
    assert!(on_hit > 0, "failpoint {name:?}: on_hit is 1-based");
    let mut map = registry().lock().expect("failpoint registry poisoned");
    map.insert(
        name.to_string(),
        FailPoint {
            on_hit,
            action,
            hits: 0,
            fired: false,
        },
    );
}

/// Disarms failpoint `name` (no-op when not configured).
pub fn remove(name: &str) {
    let mut map = registry().lock().expect("failpoint registry poisoned");
    map.remove(name);
}

/// Disarms every failpoint and clears all hit counters.
pub fn reset() {
    let mut map = registry().lock().expect("failpoint registry poisoned");
    map.clear();
}

/// Number of times failpoint `name` has been evaluated since it was last
/// configured (zero when not configured). Lets tests assert an instrumented
/// path was actually reached.
pub fn hits(name: &str) -> u64 {
    let map = registry().lock().expect("failpoint registry poisoned");
    map.get(name).map_or(0, |fp| fp.hits)
}

/// Evaluates failpoint `name`: counts the hit and, when the armed threshold
/// is reached for the first time, performs the configured [`Action`] —
/// panicking for [`Action::Panic`], sleeping for [`Action::Delay`] (then
/// returning `None`), or returning `Some(message)` for [`Action::Error`] so
/// the caller can surface its typed error. Unconfigured names return `None`
/// without any bookkeeping beyond one map lookup.
pub fn eval(name: &str) -> Option<String> {
    let action = {
        let mut map = registry().lock().expect("failpoint registry poisoned");
        let fp = map.get_mut(name)?;
        fp.hits += 1;
        if fp.fired || fp.hits != fp.on_hit {
            return None;
        }
        fp.fired = true;
        fp.action.clone()
        // Lock released here: a panic or delay must not hold the registry.
    };
    match action {
        Action::Panic => panic!("failpoint {name:?} triggered panic"),
        Action::Delay(d) => {
            std::thread::sleep(d);
            None
        }
        Action::Error(msg) => Some(msg),
    }
}

/// Macro form mirroring the upstream `fail` crate's idiom: evaluates the
/// named failpoint, mapping an injected error message through `$map` into an
/// early `return Err(..)` — or, in the unit form, ignoring error injections
/// (only `Panic`/`Delay` actions are meaningful there).
#[macro_export]
macro_rules! point {
    ($name:expr) => {
        let _ = $crate::eval($name);
    };
    ($name:expr, $map:expr) => {
        if let Some(msg) = $crate::eval($name) {
            #[allow(clippy::redundant_closure_call)]
            return Err(($map)(msg));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    // The registry is process-global, so every test uses its own names and
    // cleans up after itself; `cargo test` threads never share a name.

    #[test]
    fn unconfigured_points_are_silent() {
        assert_eq!(eval("tests::never_configured"), None);
        assert_eq!(hits("tests::never_configured"), 0);
    }

    #[test]
    fn error_fires_on_nth_hit_exactly_once() {
        configure("tests::nth", 3, Action::Error("boom".into()));
        assert_eq!(eval("tests::nth"), None);
        assert_eq!(eval("tests::nth"), None);
        assert_eq!(eval("tests::nth"), Some("boom".into()));
        // Single-shot: later hits (including a recovery replay crossing the
        // same path) pass through.
        assert_eq!(eval("tests::nth"), None);
        assert_eq!(hits("tests::nth"), 4);
        remove("tests::nth");
    }

    #[test]
    fn reconfigure_resets_the_counter() {
        configure("tests::reconf", 1, Action::Error("first".into()));
        assert_eq!(eval("tests::reconf"), Some("first".into()));
        configure("tests::reconf", 2, Action::Error("second".into()));
        assert_eq!(hits("tests::reconf"), 0);
        assert_eq!(eval("tests::reconf"), None);
        assert_eq!(eval("tests::reconf"), Some("second".into()));
        remove("tests::reconf");
    }

    #[test]
    fn panic_action_panics_with_the_point_name() {
        configure("tests::boom", 1, Action::Panic);
        let caught = std::panic::catch_unwind(|| eval("tests::boom"));
        let err = caught.expect_err("panic action must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("tests::boom"), "panic names the point: {msg}");
        // The registry lock is released before panicking: still usable.
        assert_eq!(eval("tests::boom"), None);
        remove("tests::boom");
    }

    #[test]
    fn delay_action_stalls_then_continues() {
        configure("tests::slow", 1, Action::Delay(Duration::from_millis(30)));
        let start = Instant::now();
        assert_eq!(eval("tests::slow"), None);
        assert!(start.elapsed() >= Duration::from_millis(30));
        remove("tests::slow");
    }

    #[test]
    fn point_macro_maps_injected_errors() {
        fn guarded() -> Result<u32, String> {
            crate::point!("tests::macro", |msg: String| format!("mapped: {msg}"));
            Ok(7)
        }
        configure("tests::macro", 1, Action::Error("inj".into()));
        assert_eq!(guarded(), Err("mapped: inj".into()));
        assert_eq!(guarded(), Ok(7));
        remove("tests::macro");
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn configure_rejects_zero_threshold() {
        configure("tests::zero", 0, Action::Panic);
    }
}
