//! Minimal stand-in for the `criterion` crate.
//!
//! Implements the benchmark-definition API this workspace's benches use
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `sample_size`,
//! `throughput`, `iter`, `iter_batched`, `iter_custom`, `criterion_group!`,
//! `criterion_main!`) on top of plain `std::time::Instant` measurement:
//! a short warm-up sizes the per-sample iteration count towards a target
//! sample time, then `sample_size` samples are collected and the median,
//! min and max per-iteration times (plus throughput, when configured) are
//! printed. No statistical regression analysis, plots, or saved baselines —
//! numbers are for relative comparison within one run.
//!
//! Command-line flags understood (matching the criterion CLI surface that
//! CI and scripts use): `--test` runs every benchmark exactly once as a
//! smoke test; `--bench` is accepted and ignored; any other bare argument is
//! a substring filter on benchmark ids.
//!
//! Two deliberate fidelity points with the real crate:
//!
//! * [`Bencher::iter_batched`] collects the routine's outputs and drops them
//!   **outside** the timed region, like real criterion — so a routine that
//!   returns a structure with expensive teardown (e.g. a service whose drop
//!   joins worker threads) is timed on its own work only. Batched iteration
//!   counts are capped because every input and output of a batch is alive at
//!   once.
//! * When the `BENCH_JSON` environment variable names a file, every measured
//!   benchmark (including `--test` smoke runs, which are then timed over
//!   [`SMOKE_TIMED_RUNS`] repetitions) appends a machine-readable record —
//!   id, median ns/iteration, Melem/s when a throughput is configured — and
//!   the file is rewritten as a complete JSON document. This is what the CI
//!   perf-regression gate consumes (see `higgs-bench`'s `bench_gate` binary).

use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box` (benches import it from
/// `std::hint` directly, but the classic path is kept working).
pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost; the shim runs every batch with
/// batch size 1, which is exact for the `SmallInput` usage in this workspace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs: setup cost is excluded from timing.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Throughput annotation: when set, per-second rates are reported.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// The measured routine processes this many logical elements.
    Elements(u64),
    /// The measured routine processes this many bytes.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { name: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { name }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher<'a> {
    mode: Mode,
    samples: &'a mut Vec<Duration>,
    iters_per_sample: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Run the routine once to verify it works (`--test`).
    Smoke,
    /// Calibration pass: run once, record the duration.
    Calibrate,
    /// Measurement pass: run `iters_per_sample` times, record the total.
    Measure,
}

/// Cap on iterations per sample in [`Bencher::iter_batched`]: inputs are
/// pre-generated and outputs deferred for the whole batch, so all of them
/// are alive simultaneously (which is also why real criterion sizes batches
/// instead of reusing the plain iteration count).
const MAX_BATCHED_ITERS: u64 = 64;

impl Bencher<'_> {
    /// Times `routine`, running it in a loop per sample. The routine's
    /// output is dropped inside the timed region (matching real criterion's
    /// `iter`; use [`iter_batched`](Self::iter_batched) to exclude teardown).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match self.mode {
            Mode::Smoke => {
                let start = Instant::now();
                black_box(routine());
                self.samples.push(start.elapsed());
            }
            Mode::Calibrate => {
                let start = Instant::now();
                black_box(routine());
                self.samples.push(start.elapsed());
            }
            Mode::Measure => {
                let start = Instant::now();
                for _ in 0..self.iters_per_sample {
                    black_box(routine());
                }
                self.samples
                    .push(start.elapsed() / self.iters_per_sample as u32);
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`. Setup time is excluded,
    /// and — like real criterion — the routine's outputs are collected and
    /// dropped **after** the timed region, so expensive drops (joining
    /// worker threads, draining queues) do not pollute the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        match self.mode {
            Mode::Smoke | Mode::Calibrate => {
                let input = setup();
                let start = Instant::now();
                let output = routine(input);
                self.samples.push(start.elapsed());
                drop(black_box(output));
            }
            Mode::Measure => {
                let iters = self.iters_per_sample.min(MAX_BATCHED_ITERS);
                // Report the effective count in the output line.
                self.iters_per_sample = iters;
                let mut outputs: Vec<O> = Vec::with_capacity(iters as usize);
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let input = setup();
                    let start = Instant::now();
                    let output = routine(input);
                    total += start.elapsed();
                    outputs.push(output);
                }
                self.samples.push(total / iters as u32);
                drop(black_box(outputs));
            }
        }
    }

    /// Hands full control of timing to the routine, matching real
    /// criterion's `iter_custom`: the closure receives an iteration count
    /// and returns the total elapsed [`Duration`] for exactly that many
    /// iterations. This is the escape hatch for measurements the harness
    /// cannot time from outside — per-client latency percentiles across a
    /// concurrent wave, time spent inside a lock, and so on.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut routine: F) {
        match self.mode {
            Mode::Smoke | Mode::Calibrate => {
                self.samples.push(routine(1));
            }
            Mode::Measure => {
                let total = routine(self.iters_per_sample);
                self.samples.push(total / self.iters_per_sample as u32);
            }
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

/// Target wall-clock spent measuring one benchmark (split across samples).
const TARGET_MEASURE_TIME: Duration = Duration::from_millis(1_500);

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measures `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.name, &mut |b| f(b));
        self
    }

    /// Measures `f` under `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.name, &mut |b| f(b, input));
        self
    }

    /// Finishes the group (kept for API compatibility; output is streamed).
    pub fn finish(&mut self) {}

    fn run(&self, bench_name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full_name = format!("{}/{}", self.name, bench_name);
        if !self.criterion.matches(&full_name) {
            return;
        }
        if self.criterion.test_mode {
            let mut samples = Vec::new();
            let runs = if json_sink_enabled() {
                SMOKE_TIMED_RUNS
            } else {
                1
            };
            for _ in 0..runs {
                let mut bencher = Bencher {
                    mode: Mode::Smoke,
                    samples: &mut samples,
                    iters_per_sample: 1,
                };
                f(&mut bencher);
            }
            // Best-of-N: single-run smoke timings carry additive scheduling
            // noise (a preemption can span several consecutive runs), and the
            // minimum is the robust location estimator a regression gate
            // needs — the true cost is the floor, never the spikes.
            if let Some(&best) = samples.iter().min() {
                record_json(&full_name, best, self.throughput);
            }
            println!("{full_name}: test passed");
            return;
        }

        // Calibration: one untimed-loop run to size the measurement loop.
        let mut calibration = Vec::new();
        let mut bencher = Bencher {
            mode: Mode::Calibrate,
            samples: &mut calibration,
            iters_per_sample: 1,
        };
        f(&mut bencher);
        let per_iter = calibration.first().copied().unwrap_or(Duration::ZERO);
        let per_sample_budget = TARGET_MEASURE_TIME / self.sample_size as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1_000
        } else {
            (per_sample_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        let mut samples = Vec::with_capacity(self.sample_size);
        let mut bencher = Bencher {
            mode: Mode::Measure,
            samples: &mut samples,
            iters_per_sample,
        };
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        // iter_batched may cap the per-sample count; report the effective one.
        let iters_per_sample = bencher.iters_per_sample;
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = samples[samples.len() - 1];
        record_json(&full_name, median, self.throughput);
        let mut line = format!(
            "{full_name}: median {} (min {}, max {}, {} samples x {} iters)",
            fmt_duration(median),
            fmt_duration(min),
            fmt_duration(max),
            samples.len(),
            iters_per_sample,
        );
        if let Some(throughput) = self.throughput {
            let secs = median.as_secs_f64();
            if secs > 0.0 {
                match throughput {
                    Throughput::Elements(n) => {
                        line.push_str(&format!(" | {:.3} Melem/s", n as f64 / secs / 1e6));
                    }
                    Throughput::Bytes(n) => {
                        line.push_str(&format!(
                            " | {:.3} MiB/s",
                            n as f64 / secs / (1 << 20) as f64
                        ));
                    }
                }
            }
        }
        println!("{line}");
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Criterion {
    /// Builds a harness from the process's command-line arguments.
    pub fn from_args() -> Self {
        let mut harness = Self::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => harness.test_mode = true,
                // Flags cargo-bench or scripts may pass; timing flags are
                // irrelevant because the shim uses a fixed time budget.
                "--bench" | "--noplot" | "--quiet" | "-q" => {}
                other if other.starts_with('-') => {}
                other => harness.filter = Some(other.to_string()),
            }
        }
        harness
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    fn matches(&self, full_name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_name.contains(f))
    }
}

/// Timed repetitions per benchmark in `--test` mode when `BENCH_JSON` is
/// set: the best (minimum) of these runs is what the CI perf gate compares —
/// a single smoke run is too noisy for a ±25% threshold.
pub const SMOKE_TIMED_RUNS: usize = 15;

/// One emitted benchmark record: id, representative per-iteration time
/// (`median_ns` holds the sample median for full measure runs and the
/// best-of-[`SMOKE_TIMED_RUNS`] for `--test` smoke runs), and the element
/// throughput implied by the group's [`Throughput`] (if any).
#[derive(Clone, Debug, PartialEq)]
struct JsonRecord {
    id: String,
    median_ns: f64,
    melem_per_s: Option<f64>,
}

fn json_records() -> &'static Mutex<Vec<JsonRecord>> {
    static RECORDS: OnceLock<Mutex<Vec<JsonRecord>>> = OnceLock::new();
    RECORDS.get_or_init(|| Mutex::new(Vec::new()))
}

fn json_sink_enabled() -> bool {
    std::env::var_os("BENCH_JSON").is_some()
}

/// Renders the accumulated records as the JSON document the bench gate
/// parses: `{"records": [{"id": …, "median_ns": …, "melem_per_s": …}]}`.
/// `higgs-bench`'s `report` module mirrors this format exactly.
fn render_json(records: &[JsonRecord]) -> String {
    let mut out = String::from("{\n  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        let melem = match r.melem_per_s {
            Some(v) => format!("{v:.6}"),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"median_ns\": {:.3}, \"melem_per_s\": {}}}{}\n",
            r.id,
            r.median_ns,
            melem,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Records one benchmark result and rewrites the `BENCH_JSON` file (no-op
/// when the variable is unset). Benchmark ids contain only `[A-Za-z0-9_/-]`
/// in this workspace, so no JSON string escaping is required.
fn record_json(id: &str, median: Duration, throughput: Option<Throughput>) {
    let Some(path) = std::env::var_os("BENCH_JSON") else {
        return;
    };
    let median_ns = median.as_secs_f64() * 1e9;
    let melem_per_s = match throughput {
        Some(Throughput::Elements(n)) if median_ns > 0.0 => {
            Some(n as f64 / median.as_secs_f64() / 1e6)
        }
        _ => None,
    };
    let mut records = json_records().lock().expect("bench record lock poisoned");
    let record = JsonRecord {
        id: id.to_string(),
        median_ns,
        melem_per_s,
    };
    match records.iter_mut().find(|r| r.id == id) {
        Some(existing) => *existing = record,
        None => records.push(record),
    }
    if let Err(err) = std::fs::write(&path, render_json(&records)) {
        eprintln!("warning: could not write BENCH_JSON file {path:?}: {err}");
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_each_bench_once() {
        let mut criterion = Criterion {
            test_mode: true,
            filter: None,
        };
        let mut runs = 0;
        let mut group = criterion.benchmark_group("g");
        group.bench_function("one", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn measurement_collects_samples() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.sample_size(3);
        // A sub-microsecond routine: the run must finish quickly despite the
        // default time budget because iteration counts are clamped.
        group.bench_function("fast", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut criterion = Criterion {
            test_mode: true,
            filter: Some("nomatch".into()),
        };
        let mut runs = 0;
        let mut group = criterion.benchmark_group("g");
        group.bench_function("one", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 0);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("edge_query", 64);
        assert_eq!(id, BenchmarkId::from("edge_query/64"));
    }

    #[test]
    fn iter_batched_smoke() {
        let mut criterion = Criterion {
            test_mode: true,
            filter: None,
        };
        let mut group = criterion.benchmark_group("g");
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn iter_batched_defers_output_drops_out_of_the_timed_region() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Tracked;
        impl Drop for Tracked {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }

        let mut samples = Vec::new();
        let mut bencher = Bencher {
            mode: Mode::Measure,
            samples: &mut samples,
            iters_per_sample: 10,
        };
        let mut live_at_routine_end = Vec::new();
        bencher.iter_batched(
            || (),
            |()| {
                // While the routine runs, no output of an earlier iteration
                // in this batch may have been dropped yet.
                live_at_routine_end.push(DROPS.load(Ordering::SeqCst));
                Tracked
            },
            BatchSize::SmallInput,
        );
        assert_eq!(samples.len(), 1);
        assert_eq!(DROPS.load(Ordering::SeqCst), 10, "all outputs dropped");
        assert!(
            live_at_routine_end.iter().all(|&d| d == 0),
            "outputs must outlive the timed batch: {live_at_routine_end:?}"
        );
    }

    #[test]
    fn iter_batched_caps_iterations_per_sample() {
        let mut samples = Vec::new();
        let mut bencher = Bencher {
            mode: Mode::Measure,
            samples: &mut samples,
            iters_per_sample: 1_000_000,
        };
        let mut runs = 0u64;
        bencher.iter_batched(|| (), |()| runs += 1, BatchSize::SmallInput);
        assert_eq!(runs, MAX_BATCHED_ITERS);
    }

    #[test]
    fn smoke_mode_records_a_timing_sample() {
        let mut samples = Vec::new();
        let mut bencher = Bencher {
            mode: Mode::Smoke,
            samples: &mut samples,
            iters_per_sample: 1,
        };
        bencher.iter(|| std::hint::black_box(3 * 7));
        assert_eq!(samples.len(), 1);
    }

    #[test]
    fn render_json_matches_the_gate_format() {
        let records = vec![
            JsonRecord {
                id: "sharding/ingest/sharded/4".into(),
                median_ns: 123_456.789,
                melem_per_s: Some(48.6),
            },
            JsonRecord {
                id: "matrix_layout/insert/64".into(),
                median_ns: 250.0,
                melem_per_s: None,
            },
        ];
        let json = render_json(&records);
        assert!(json.starts_with("{\n  \"records\": [\n"));
        assert!(json.contains(
            "{\"id\": \"sharding/ingest/sharded/4\", \"median_ns\": 123456.789, \"melem_per_s\": 48.600000},"
        ));
        assert!(json.contains(
            "{\"id\": \"matrix_layout/insert/64\", \"median_ns\": 250.000, \"melem_per_s\": null}"
        ));
        assert!(json.ends_with("  ]\n}\n"));
    }
}
