//! Minimal executor/reactor primitives for building blocking "reply future"
//! pipelines without an async runtime.
//!
//! The serving front-end in the `higgs` crate hands every admitted request a
//! completion channel and evaluates it on a small pool of long-lived worker
//! threads. This crate provides exactly those two building blocks, in the
//! same self-contained style as the other `crates/shims/` stand-ins:
//!
//! * [`oneshot`] — single-value completion channels ([`oneshot::completion`])
//!   built on `Mutex` + `Condvar`. The [`oneshot::Completer`] is consumed by
//!   delivering the value; dropping it unfulfilled wakes the paired
//!   [`oneshot::Waiter`] with [`oneshot::Canceled`], so a waiter can never
//!   hang on a producer that died or shut down.
//! * [`Executor`] — a joinable set of named worker threads. Spawning is just
//!   `std::thread::spawn` with a name; the value added is deterministic
//!   teardown: [`Executor::join_all`] (also run on drop) joins every thread,
//!   so an owner that closes its work channels first gets a guaranteed-quiet
//!   pool afterwards.
//!
//! No futures, no polling, no registry access — everything blocks on OS
//! primitives, which matches the synchronous-ingest design of the rest of
//! the workspace.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Single-value completion channels ("reply futures" for blocking code).
pub mod oneshot {
    use std::sync::{Arc, Condvar, Mutex};

    /// The waited-on producer vanished without delivering a value (its
    /// [`Completer`] was dropped unfulfilled).
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Canceled;

    impl std::fmt::Display for Canceled {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "oneshot completer dropped without delivering a value")
        }
    }

    impl std::error::Error for Canceled {}

    enum Slot<T> {
        Pending,
        Value(T),
        Canceled,
    }

    struct Inner<T> {
        slot: Mutex<Slot<T>>,
        ready: Condvar,
    }

    /// Creates a completion pair: the [`Completer`] delivers exactly one
    /// value, the [`Waiter`] blocks until it arrives (or the completer is
    /// dropped).
    pub fn completion<T>() -> (Completer<T>, Waiter<T>) {
        let inner = Arc::new(Inner {
            slot: Mutex::new(Slot::Pending),
            ready: Condvar::new(),
        });
        (Completer(Some(inner.clone())), Waiter(inner))
    }

    /// The producing half: consumed by [`complete`](Self::complete).
    /// Dropping it unfulfilled cancels the paired [`Waiter`].
    pub struct Completer<T>(Option<Arc<Inner<T>>>);

    impl<T> Completer<T> {
        /// Delivers the value, waking the paired waiter.
        pub fn complete(mut self, value: T) {
            let inner = self.0.take().expect("completer used exactly once");
            *inner.slot.lock().expect("oneshot poisoned") = Slot::Value(value);
            inner.ready.notify_all();
        }
    }

    impl<T> Drop for Completer<T> {
        fn drop(&mut self) {
            if let Some(inner) = self.0.take() {
                let mut slot = inner.slot.lock().expect("oneshot poisoned");
                if matches!(*slot, Slot::Pending) {
                    *slot = Slot::Canceled;
                    inner.ready.notify_all();
                }
            }
        }
    }

    /// The consuming half: blocks until the value (or cancellation) arrives.
    pub struct Waiter<T>(Arc<Inner<T>>);

    impl<T> Waiter<T> {
        /// Blocks until the paired completer delivers a value or is dropped.
        pub fn wait(self) -> Result<T, Canceled> {
            let mut slot = self.0.slot.lock().expect("oneshot poisoned");
            loop {
                match std::mem::replace(&mut *slot, Slot::Pending) {
                    Slot::Value(value) => return Ok(value),
                    Slot::Canceled => return Err(Canceled),
                    Slot::Pending => {
                        slot = self.0.ready.wait(slot).expect("oneshot poisoned");
                    }
                }
            }
        }

        /// Returns the value if it already arrived, without blocking:
        /// `Ok(None)` while the completer is still pending.
        pub fn try_wait(&self) -> Result<Option<T>, Canceled> {
            let mut slot = self.0.slot.lock().expect("oneshot poisoned");
            match std::mem::replace(&mut *slot, Slot::Pending) {
                Slot::Value(value) => Ok(Some(value)),
                Slot::Canceled => {
                    *slot = Slot::Canceled;
                    Err(Canceled)
                }
                Slot::Pending => Ok(None),
            }
        }
    }
}

/// A joinable set of named worker threads with deterministic teardown.
///
/// The owner spawns long-lived loops (each typically draining a channel),
/// later closes those channels, and then calls [`join_all`](Self::join_all)
/// — or simply drops the executor — to wait for every loop to exit. A
/// panicking worker does not poison the executor; the panic is surfaced by
/// the join as a labelled panic of its own.
pub struct Executor {
    label: String,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Executor {
    /// Creates an empty executor; `label` prefixes every thread name.
    pub fn new(label: &str) -> Self {
        Executor {
            label: label.to_string(),
            threads: Vec::new(),
        }
    }

    /// Spawns a named worker thread running `f` to completion.
    pub fn spawn<F: FnOnce() + Send + 'static>(&mut self, name: &str, f: F) {
        let thread = std::thread::Builder::new()
            .name(format!("{}-{name}", self.label))
            .spawn(f)
            .expect("failed to spawn executor thread");
        self.threads.push(thread);
    }

    /// Number of worker threads not yet joined.
    pub fn len(&self) -> usize {
        self.threads.len()
    }

    /// Whether every worker has been joined (or none was spawned).
    pub fn is_empty(&self) -> bool {
        self.threads.is_empty()
    }

    /// Joins every spawned thread, propagating the first worker panic.
    pub fn join_all(&mut self) {
        for thread in self.threads.drain(..) {
            if thread.join().is_err() {
                panic!("executor `{}` worker panicked", self.label);
            }
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        // Avoid a double panic (abort) when dropped during unwinding; the
        // worker panic has already been reported in that case.
        if std::thread::panicking() {
            for thread in self.threads.drain(..) {
                let _ = thread.join();
            }
        } else {
            self.join_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_delivers_across_threads() {
        let (tx, rx) = oneshot::completion::<u64>();
        let producer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            tx.complete(42);
        });
        assert_eq!(rx.wait(), Ok(42));
        producer.join().unwrap();
    }

    #[test]
    fn dropping_the_completer_cancels_the_waiter() {
        let (tx, rx) = oneshot::completion::<u64>();
        drop(tx);
        assert_eq!(rx.wait(), Err(oneshot::Canceled));
    }

    #[test]
    fn try_wait_observes_pending_then_value() {
        let (tx, rx) = oneshot::completion::<&'static str>();
        assert_eq!(rx.try_wait(), Ok(None));
        tx.complete("done");
        assert_eq!(rx.try_wait(), Ok(Some("done")));
    }

    #[test]
    fn try_wait_reports_cancellation_repeatedly() {
        let (tx, rx) = oneshot::completion::<u64>();
        drop(tx);
        assert_eq!(rx.try_wait(), Err(oneshot::Canceled));
        assert_eq!(rx.try_wait(), Err(oneshot::Canceled));
    }

    #[test]
    fn executor_runs_and_joins_every_worker() {
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut pool = Executor::new("test");
        for i in 0..4 {
            let counter = counter.clone();
            pool.spawn(&format!("w{i}"), move || {
                counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            });
        }
        assert_eq!(pool.len(), 4);
        pool.join_all();
        assert!(pool.is_empty());
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 4);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn executor_surfaces_worker_panics_on_join() {
        let mut pool = Executor::new("boom");
        pool.spawn("bad", || panic!("inner failure"));
        pool.join_all();
    }
}
