//! Minimal stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range and tuple strategies,
//! `prop::collection::vec`, the [`proptest!`] macro (with
//! `#![proptest_config(...)]` support), and `prop_assert!` /
//! `prop_assert_eq!`. Inputs are generated from a deterministic SplitMix64
//! stream seeded per test name and case index, so failures are reproducible
//! run-to-run. There is no shrinking: a failing case reports its inputs via
//! `Debug` instead.

use std::fmt;

/// Deterministic RNG driving input generation (SplitMix64 counter).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Seed derived from a test name and case index (stable across runs).
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::from_seed(h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.state;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for ::std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }
        impl Strategy for ::std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let width = (end - start) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (width + 1)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

/// A strategy producing a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (`prop::collection` in real proptest).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: ::std::ops::Range<usize>,
    }

    /// Generates vectors whose length is drawn from `len` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, len: ::std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let width = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % width) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Run-time configuration of a `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Failure raised by `prop_assert!` / `prop_assert_eq!` inside a property.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::collection as prop_collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };

    /// Mirror of proptest's `prop` module path (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares property tests over random inputs.
///
/// Supports the same shape as real proptest:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn my_property(x in 0u64..100, v in prop::collection::vec(0u32..9, 1..50)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strategy:expr ),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                    let inputs = format!(
                        concat!("" $(, "\n  ", stringify!($arg), " = {:?}")*),
                        $(&$arg),*
                    );
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(err) = result {
                        panic!(
                            "property {} failed at case {}/{}: {}\ninputs:{}",
                            stringify!($name),
                            case,
                            config.cases,
                            err,
                            inputs,
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property, reporting failure with the case's
/// inputs instead of panicking immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1_000 {
            let v = (0u64..10).generate(&mut rng);
            assert!(v < 10);
            let (a, b) = (0u32..4, 10usize..=12).generate(&mut rng);
            assert!(a < 4 && (10..=12).contains(&b));
            let vec = prop::collection::vec(0u8..5, 1..8).generate(&mut rng);
            assert!(!vec.is_empty() && vec.len() < 8);
            assert!(vec.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::from_seed(2);
        let doubled = (1u64..5).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = doubled.generate(&mut rng);
            assert!(v % 2 == 0 && (2..10).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_asserts(x in 0u64..50, v in prop::collection::vec(0u64..9, 1..20)) {
            prop_assert!(x < 50);
            prop_assert!(v.len() < 20);
            prop_assert_eq!(v.len(), v.len());
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u64..10) {
                prop_assert!(false, "forced failure");
            }
        }
        always_fails();
    }
}
