//! Anchor crate that exposes the repository-level `examples/` directory as
//! runnable cargo binaries. See the `examples/` directory for the actual
//! example sources.

#![forbid(unsafe_code)]
