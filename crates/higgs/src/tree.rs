//! The HIGGS hierarchical summary: an aggregated B-tree of compressed
//! matrices built bottom-up in stream order (Section IV-A/IV-B, Algorithm 1).
//!
//! Leaves are created append-only as the current leaf fills up; every time a
//! group of θ nodes at some layer completes, their matrices are aggregated
//! into a parent node one layer up (Algorithm 2). Aggregation can run inline
//! (the default) or be deferred to background workers (see
//! [`ParallelHiggs`](crate::ParallelHiggs)); queries fall back to a node's
//! children whenever its aggregate has not materialised yet, so results are
//! identical either way.

use crate::aggregate::aggregate_leaves_to_layer;
use crate::config::{ConfigError, HiggsConfig};
use crate::matrix::CompressedMatrix;
use crate::node::{InternalNode, LeafNode};
use crate::overflow::OverflowChain;
use crate::plan_cache::PlanCache;
use higgs_common::hashing::FingerprintLayout;
use higgs_common::{StreamEdge, TimeRange, Timestamp};
use std::sync::atomic::{AtomicU64, Ordering};

/// A deferred aggregation job: internal level (0 = the layer right above the
/// leaves) and node index within that level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PendingAggregation {
    /// Index into the internal-levels vector (level 0 is tree layer 2).
    pub level: usize,
    /// Node index within the level.
    pub index: usize,
}

/// The HIGGS summary structure.
#[derive(Clone, Debug)]
pub struct HiggsSummary {
    pub(crate) config: HiggsConfig,
    pub(crate) layout: FingerprintLayout,
    pub(crate) leaves: Vec<LeafNode>,
    /// `internals[l]` holds the complete nodes of tree layer `l + 2`.
    pub(crate) internals: Vec<Vec<InternalNode>>,
    pub(crate) total_items: u64,
    pub(crate) defer_aggregation: bool,
    pub(crate) pending: Vec<PendingAggregation>,
    /// Number of query plans built so far (Algorithm-3 boundary searches).
    /// Interior-mutable so `&self` queries can count; used by tests and
    /// diagnostics to assert plan sharing in the batch executor. Plans served
    /// from the [`PlanCache`] do not count — only actual boundary searches.
    pub(crate) plans_built: PlanCounter,
    /// Monotonically increasing mutation counter: bumped by every insert,
    /// delete, and aggregate materialisation. Cached query plans record the
    /// epoch they were built at and are invalidated on mismatch (see
    /// [`plan_cache`](crate::plan_cache)).
    pub(crate) epoch: u64,
    /// Cross-batch query-plan cache consulted by the typed query surface.
    pub(crate) plan_cache: PlanCache,
}

/// Relaxed atomic plan counter: interior-mutable through `&self` without
/// costing the summary its `Sync` auto trait (read-only queries must remain
/// shareable across serving threads). Cloning snapshots the current value.
#[derive(Debug, Default)]
pub(crate) struct PlanCounter(AtomicU64);

impl Clone for PlanCounter {
    fn clone(&self) -> Self {
        Self(AtomicU64::new(self.get()))
    }
}

impl PlanCounter {
    pub(crate) fn increment(&self) {
        // ORDERING: Relaxed throughout this impl — a monotone diagnostic
        // counter (plan-build tallies for tests and stats); no other data is
        // published through it, so only the count itself matters.
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn get(&self) -> u64 {
        // ORDERING: Relaxed — see `increment`.
        self.0.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        // ORDERING: Relaxed — see `increment`.
        self.0.store(0, Ordering::Relaxed);
    }
}

impl HiggsSummary {
    /// Creates an empty summary with inline (synchronous) aggregation.
    ///
    /// Panics on an invalid configuration; use [`Self::try_new`] (or
    /// [`HiggsConfig::builder`]) for fallible construction.
    pub fn new(config: HiggsConfig) -> Self {
        Self::try_new(config).expect("invalid HiggsConfig")
    }

    /// Creates an empty summary with inline (synchronous) aggregation,
    /// returning the violated constraint instead of panicking when the
    /// configuration is invalid.
    pub fn try_new(config: HiggsConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let plan_cache = PlanCache::new(config.plan_cache_capacity);
        Ok(Self {
            layout: config.layout(),
            config,
            leaves: Vec::new(),
            internals: Vec::new(),
            total_items: 0,
            defer_aggregation: false,
            pending: Vec::new(),
            plans_built: PlanCounter::default(),
            epoch: 0,
            plan_cache,
        })
    }

    /// Creates an empty summary whose aggregations are deferred: completed
    /// groups are recorded in [`take_pending_aggregations`](Self::take_pending_aggregations)
    /// instead of being aggregated inline. Used by the parallel pipeline.
    pub fn with_deferred_aggregation(config: HiggsConfig) -> Self {
        let mut s = Self::new(config);
        s.defer_aggregation = true;
        s
    }

    /// Rebuilds a summary from persisted state (snapshot restore, see
    /// [`snapshot`](crate::snapshot)): the validated configuration plus the
    /// exact tree structure, stream counters, and mutation epoch the snapshot
    /// recorded. Runtime-only state — the plan cache and the plan counter —
    /// starts fresh; the restored epoch keeps monotonically increasing from
    /// the persisted value, so any plan cached before the snapshot could
    /// never be confused with a post-restore one anyway.
    pub(crate) fn from_restored_parts(
        config: HiggsConfig,
        leaves: Vec<LeafNode>,
        internals: Vec<Vec<InternalNode>>,
        total_items: u64,
        defer_aggregation: bool,
        pending: Vec<PendingAggregation>,
        epoch: u64,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        let plan_cache = PlanCache::new(config.plan_cache_capacity);
        Ok(Self {
            layout: config.layout(),
            config,
            leaves,
            internals,
            total_items,
            defer_aggregation,
            pending,
            plans_built: PlanCounter::default(),
            epoch,
            plan_cache,
        })
    }

    /// Whether this summary records completed groups as pending jobs instead
    /// of aggregating inline (see
    /// [`with_deferred_aggregation`](Self::with_deferred_aggregation)).
    pub fn defers_aggregation(&self) -> bool {
        self.defer_aggregation
    }

    /// Number of query plans built over the summary's lifetime (each is one
    /// Algorithm-3 boundary search). The plan-sharing batch executor builds
    /// at most one plan per distinct [`TimeRange`] in a batch — and, through
    /// the cross-batch [`plan_cache`](crate::plan_cache), **zero** for ranges
    /// whose cached plan is still fresh. This hook lets tests and monitoring
    /// assert both properties.
    pub fn plans_built(&self) -> u64 {
        self.plans_built.get()
    }

    /// Resets the plan counter to zero (diagnostic hook).
    pub fn reset_plan_count(&self) {
        self.plans_built.reset();
    }

    /// The summary's mutation epoch: a monotonically increasing counter
    /// bumped by every insert, delete, and aggregate materialisation. Cached
    /// query plans are validated against it (see
    /// [`cached_plan`](Self::cached_plan)).
    pub fn mutation_epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of typed-surface plan lookups served from the cross-batch plan
    /// cache over the summary's lifetime.
    pub fn plan_cache_hits(&self) -> u64 {
        self.plan_cache.hits()
    }

    /// Number of plans currently held by the cross-batch plan cache.
    pub fn plan_cache_len(&self) -> usize {
        self.plan_cache.len()
    }

    /// Drops every cached plan (diagnostic hook; epoch validation already
    /// prevents stale plans from being served).
    pub fn clear_plan_cache(&self) {
        self.plan_cache.clear();
    }

    /// Records one mutation: bumps the epoch so cached plans built against
    /// the previous state can no longer be served.
    fn bump_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
    }

    /// The configuration this summary was built with.
    pub fn config(&self) -> &HiggsConfig {
        &self.config
    }

    /// The fingerprint/address layout shared by all layers.
    pub fn layout(&self) -> &FingerprintLayout {
        &self.layout
    }

    /// Number of leaf nodes.
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Number of tree layers (leaf layer included). An empty summary has
    /// height 0.
    pub fn height(&self) -> usize {
        if self.leaves.is_empty() {
            0
        } else {
            1 + self.internals.len()
        }
    }

    /// Total number of stream items inserted (minus deletions).
    pub fn total_items(&self) -> u64 {
        self.total_items
    }

    /// The full time span covered by the summary, if any edge was inserted.
    pub fn time_span(&self) -> Option<TimeRange> {
        let first = self.leaves.first()?;
        let last = self.leaves.last()?;
        Some(TimeRange::new(first.start_time, last.end_time))
    }

    /// Sum of matrix utilisation over all leaves (diagnostic, Section V-A).
    pub fn average_leaf_utilization(&self) -> f64 {
        if self.leaves.is_empty() {
            return 0.0;
        }
        self.leaves
            .iter()
            .map(|l| l.matrix.utilization())
            .sum::<f64>()
            / self.leaves.len() as f64
    }

    fn new_leaf(&self, start_time: Timestamp) -> LeafNode {
        LeafNode::new(
            CompressedMatrix::new(
                self.config.d1,
                1,
                self.config.bucket_entries,
                self.config.mapping_addresses,
            ),
            // Overflow blocks keep the leaf side so their base addresses lift
            // exactly like leaf entries during aggregation, but hold a single
            // entry per bucket to stay small.
            OverflowChain::new(self.config.d1, 1, self.config.mapping_addresses),
            start_time,
        )
    }

    /// Inserts one stream item (Algorithm 1).
    pub fn insert_edge(&mut self, edge: &StreamEdge) {
        self.bump_epoch();
        let hs = self.layout.split_vertex(edge.src, 1);
        let hd = self.layout.split_vertex(edge.dst, 1);
        let (fs, fd) = (hs.fingerprint as u32, hd.fingerprint as u32);
        let weight = edge.weight as i64;

        if self.leaves.is_empty() {
            self.leaves.push(self.new_leaf(edge.timestamp));
        }
        let leaf = self.leaves.last_mut().expect("at least one leaf exists");
        // Streams are time-ordered; guard against minor reordering by
        // clamping to the leaf's start so offsets stay non-negative.
        let t = edge.timestamp.max(leaf.start_time);
        let offset = leaf.offset_of(t);
        if leaf
            .matrix
            .try_insert(hs.address, hd.address, fs, fd, Some(offset), weight)
        {
            leaf.end_time = leaf.end_time.max(t);
            leaf.items += 1;
            self.total_items += 1;
            return;
        }

        // Insertion failed: either chain an overflow block (same timestamp as
        // the previous edge — a new leaf key would be ambiguous) or open a
        // new leaf and propagate the timestamp upward.
        if self.config.overflow_blocks && t == leaf.end_time {
            leaf.overflow
                .insert(hs.address, hd.address, fs, fd, offset, weight);
            leaf.items += 1;
            self.total_items += 1;
            return;
        }

        self.leaves.push(self.new_leaf(t));
        let leaf = self.leaves.last_mut().expect("just pushed");
        let inserted = leaf
            .matrix
            .try_insert(hs.address, hd.address, fs, fd, Some(0), weight);
        debug_assert!(inserted, "insertion into an empty leaf matrix cannot fail");
        leaf.end_time = t;
        leaf.items = 1;
        self.total_items += 1;
        self.on_leaf_closed();
    }

    /// Called after a leaf closes (a new leaf was appended): creates every
    /// internal node whose child group has just completed (the upward
    /// propagation loop of Algorithm 1, lines 7–12).
    fn on_leaf_closed(&mut self) {
        let theta = self.config.theta();
        let mut level = 0usize;
        loop {
            let children_closed = if level == 0 {
                // All leaves except the freshly opened one are closed.
                self.leaves.len() - 1
            } else {
                self.internals[level - 1].len()
            };
            if children_closed == 0 || children_closed % theta != 0 {
                break;
            }
            let group_idx = children_closed / theta - 1;
            if self.internals.len() <= level {
                self.internals.push(Vec::new());
            }
            // Nodes are created exactly when their child group completes, and
            // group completions are strictly ordered by the append-only leaf
            // stream, so the node for `group_idx` cannot exist yet.
            debug_assert!(
                self.internals[level].len() <= group_idx,
                "internal node (level {level}, group {group_idx}) created twice"
            );
            self.create_internal(level, group_idx);
            level += 1;
        }
    }

    /// Creates the internal node at `(level, group_idx)`; aggregates inline
    /// unless aggregation is deferred.
    fn create_internal(&mut self, level: usize, group_idx: usize) {
        let (first_leaf, last_leaf) = self.leaf_span(level, group_idx);
        let start_time = self.leaves[first_leaf].start_time;
        let end_time = self.leaves[last_leaf].end_time;
        let matrix = if self.defer_aggregation {
            self.pending.push(PendingAggregation {
                level,
                index: group_idx,
            });
            None
        } else {
            Some(self.compute_aggregation(level, group_idx))
        };
        debug_assert_eq!(self.internals[level].len(), group_idx);
        self.internals[level].push(InternalNode {
            matrix,
            start_time,
            end_time,
        });
    }

    /// Leaf index range `[first, last]` covered by internal node
    /// `(level, group_idx)`.
    pub(crate) fn leaf_span(&self, level: usize, group_idx: usize) -> (usize, usize) {
        let theta = self.config.theta();
        let span = theta.pow(level as u32 + 1);
        let first = group_idx * span;
        let last = ((group_idx + 1) * span - 1).min(self.leaves.len().saturating_sub(1));
        (first, last)
    }

    /// Computes the aggregated matrix of internal node `(level, group_idx)`
    /// directly from the leaf matrices (and overflow blocks) it covers.
    pub fn compute_aggregation(&self, level: usize, group_idx: usize) -> CompressedMatrix {
        let (first, last) = self.leaf_span(level, group_idx);
        let mut sources: Vec<&CompressedMatrix> = Vec::new();
        for leaf in &self.leaves[first..=last] {
            sources.push(&leaf.matrix);
            sources.extend(leaf.overflow.blocks());
        }
        aggregate_leaves_to_layer(&self.layout, &self.config, &sources, level as u32 + 2)
    }

    /// Drains the list of deferred aggregation jobs (deferred mode only).
    pub fn take_pending_aggregations(&mut self) -> Vec<PendingAggregation> {
        std::mem::take(&mut self.pending)
    }

    /// Installs an externally computed aggregate for node `(level, index)`.
    ///
    /// Bumps the mutation epoch: a fresh boundary search now targets the
    /// aggregate matrix where a plan built earlier descended to the leaves,
    /// so cached plans from before the installation must not be served.
    pub fn install_aggregation(&mut self, level: usize, index: usize, matrix: CompressedMatrix) {
        if let Some(node) = self
            .internals
            .get_mut(level)
            .and_then(|nodes| nodes.get_mut(index))
        {
            node.matrix = Some(matrix);
            self.bump_epoch();
        }
    }

    /// Runs every outstanding deferred aggregation inline (used when a
    /// deferred-mode summary must become fully aggregated without worker
    /// threads).
    pub fn finalize_aggregations(&mut self) {
        let jobs = self.take_pending_aggregations();
        for job in jobs {
            let matrix = self.compute_aggregation(job.level, job.index);
            self.install_aggregation(job.level, job.index, matrix);
        }
    }

    /// Recomputes and installs the aggregate of every internal node whose
    /// matrix has not materialised, regardless of whether a pending job was
    /// recorded for it.
    ///
    /// This is the recovery path of
    /// [`ParallelHiggs::flush`](crate::ParallelHiggs::flush): if the worker
    /// pool disappears with results still in flight, the in-flight jobs can
    /// no longer be received, so the missing aggregates are rebuilt inline
    /// from the leaves.
    pub fn materialize_missing_aggregations(&mut self) {
        let missing: Vec<(usize, usize)> = self
            .internals
            .iter()
            .enumerate()
            .flat_map(|(level, nodes)| {
                nodes
                    .iter()
                    .enumerate()
                    .filter(|(_, n)| n.matrix.is_none())
                    .map(move |(index, _)| (level, index))
            })
            .collect();
        for (level, index) in missing {
            let matrix = self.compute_aggregation(level, index);
            self.install_aggregation(level, index, matrix);
        }
        self.pending.clear();
    }

    /// Deletes (reverses) one previously inserted stream item: decrements the
    /// leaf entry covering the edge's timestamp and every aggregated ancestor
    /// covering that leaf.
    pub fn delete_edge(&mut self, edge: &StreamEdge) {
        self.bump_epoch();
        if self.leaves.is_empty() {
            return;
        }
        let hs1 = self.layout.split_vertex(edge.src, 1);
        let hd1 = self.layout.split_vertex(edge.dst, 1);
        let weight = edge.weight as i64;

        // Locate the leaf whose range contains the timestamp: last leaf whose
        // start_time <= t (ranges are non-decreasing in stream order).
        let t = edge.timestamp;
        let pos = self
            .leaves
            .partition_point(|l| l.start_time <= t)
            .saturating_sub(1);
        let mut deleted_leaf = None;
        for idx in [pos, pos.saturating_sub(1)] {
            let leaf = &mut self.leaves[idx];
            let filter = leaf.offset_filter(TimeRange::instant(t));
            let Some(filter) = filter else { continue };
            if leaf.matrix.try_delete(
                hs1.address,
                hd1.address,
                hs1.fingerprint as u32,
                hd1.fingerprint as u32,
                Some(filter),
                weight,
            ) || leaf.overflow.delete(
                hs1.address,
                hd1.address,
                hs1.fingerprint as u32,
                hd1.fingerprint as u32,
                Some(filter),
                weight,
            ) {
                deleted_leaf = Some(idx);
                break;
            }
        }
        let Some(leaf_idx) = deleted_leaf else { return };
        self.total_items = self.total_items.saturating_sub(1);

        // Decrement every aggregated ancestor that covers this leaf.
        let theta = self.config.theta();
        for level in 0..self.internals.len() {
            let span = theta.pow(level as u32 + 1);
            let node_idx = leaf_idx / span;
            if let Some(node) = self.internals[level].get_mut(node_idx) {
                if let Some(matrix) = node.matrix.as_mut() {
                    let layer = level as u32 + 2;
                    let hs = self.layout.split_vertex(edge.src, layer);
                    let hd = self.layout.split_vertex(edge.dst, layer);
                    matrix.try_delete(
                        hs.address,
                        hd.address,
                        hs.fingerprint as u32,
                        hd.fingerprint as u32,
                        None,
                        weight,
                    );
                }
            }
        }
    }

    /// Memory footprint in bytes.
    pub fn space(&self) -> usize {
        let leaves: usize = self.leaves.iter().map(LeafNode::space_bytes).sum();
        let internals: usize = self
            .internals
            .iter()
            .flat_map(|lvl| lvl.iter())
            .map(InternalNode::space_bytes)
            .sum();
        leaves + internals + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use higgs_common::{SummaryExt, TemporalGraphSummary, VertexDirection};

    fn tiny_config() -> HiggsConfig {
        // Small matrices so the tree grows quickly in tests.
        HiggsConfig {
            d1: 4,
            f1_bits: 12,
            r_bits: 1,
            bucket_entries: 2,
            mapping_addresses: 2,
            overflow_blocks: true,
            shards: 1,
            plan_cache_capacity: 8,
            ingest_queue_cap: None,
            pin_workers: false,
            admission_tick: std::time::Duration::ZERO,
            service_queue_depth: None,
            journal_mode: crate::config::JournalMode::Off,
        }
    }

    #[test]
    fn empty_summary_has_no_height() {
        let s = HiggsSummary::new(HiggsConfig::default());
        assert_eq!(s.height(), 0);
        assert_eq!(s.leaf_count(), 0);
        assert!(s.time_span().is_none());
        assert_eq!(s.total_items(), 0);
    }

    #[test]
    fn single_insert_creates_one_leaf() {
        let mut s = HiggsSummary::new(tiny_config());
        s.insert_edge(&StreamEdge::new(1, 2, 3, 100));
        assert_eq!(s.leaf_count(), 1);
        assert_eq!(s.height(), 1);
        assert_eq!(s.total_items(), 1);
        assert_eq!(s.time_span(), Some(TimeRange::new(100, 100)));
    }

    #[test]
    fn tree_grows_leaves_and_internal_layers() {
        let mut s = HiggsSummary::new(tiny_config());
        for i in 0..4_000u64 {
            s.insert_edge(&StreamEdge::new(i % 500, (i * 7) % 500, 1, i));
        }
        assert!(s.leaf_count() > 4, "expected multiple leaves");
        assert!(s.height() > 1, "expected internal layers");
        // Every complete group of θ leaves has an aggregated node.
        let theta = s.config().theta();
        assert_eq!(s.internals[0].len(), (s.leaf_count() - 1) / theta.max(1));
        assert!(s.internals[0].iter().all(|n| n.matrix.is_some()));
    }

    #[test]
    fn internal_levels_have_exact_node_counts_past_three_layers() {
        // Regression test for the upward-propagation loop of Algorithm 1:
        // grow the tree well past three layers and verify after every insert
        // that each internal level holds exactly one node per *complete*
        // group of θ^(level+1) closed leaves — i.e. the loop creates every
        // node exactly once and never stops early or double-creates (the
        // condition the `debug_assert!` in `on_leaf_closed` guards).
        let mut s = HiggsSummary::new(tiny_config());
        let theta = s.config().theta();
        for i in 0..30_000u64 {
            s.insert_edge(&StreamEdge::new(i % 700, (i * 13) % 700, 1, i));
            let closed = s.leaf_count() - 1;
            for (level, nodes) in s.internals.iter().enumerate() {
                let group = theta.pow(level as u32 + 1);
                assert_eq!(
                    nodes.len(),
                    closed / group,
                    "level {level} after {} leaves",
                    s.leaf_count()
                );
            }
        }
        assert!(
            s.height() > 4,
            "stream too small to exercise deep propagation: height {}",
            s.height()
        );
        // Every created node carries a materialised aggregate (inline mode).
        assert!(s.internals.iter().flatten().all(|n| n.matrix.is_some()));
    }

    #[test]
    fn leaf_time_ranges_are_ordered() {
        let mut s = HiggsSummary::new(tiny_config());
        for i in 0..2_000u64 {
            s.insert_edge(&StreamEdge::new(i % 100, (i + 1) % 100, 1, i / 2));
        }
        for w in s.leaves.windows(2) {
            assert!(w[0].start_time <= w[1].start_time);
            assert!(w[0].end_time <= w[1].end_time);
        }
    }

    #[test]
    fn overflow_blocks_absorb_same_timestamp_bursts() {
        let mut s = HiggsSummary::new(tiny_config());
        // Far more same-timestamp edges than one tiny leaf can hold.
        for i in 0..500u64 {
            s.insert_edge(&StreamEdge::new(i, i + 1000, 1, 42));
        }
        assert_eq!(
            s.leaf_count(),
            1,
            "same-timestamp burst must not open new leaves when OB is enabled"
        );
        assert!(!s.leaves[0].overflow.is_empty());
        assert_eq!(s.total_items(), 500);
    }

    #[test]
    fn without_overflow_blocks_bursts_open_new_leaves() {
        let mut s = HiggsSummary::new(tiny_config().without_overflow_blocks());
        for i in 0..500u64 {
            s.insert_edge(&StreamEdge::new(i, i + 1000, 1, 42));
        }
        assert!(s.leaf_count() > 1);
    }

    #[test]
    fn deferred_mode_records_pending_jobs_and_finalize_installs_them() {
        let mut s = HiggsSummary::with_deferred_aggregation(tiny_config());
        for i in 0..3_000u64 {
            s.insert_edge(&StreamEdge::new(i % 300, (i * 3) % 300, 1, i));
        }
        assert!(s.internals.iter().flatten().any(|n| n.matrix.is_none()));
        // Queries are still correct before aggregation materialises.
        let q = s.edge_query(10, 30, TimeRange::all());
        s.finalize_aggregations();
        assert!(s.internals.iter().flatten().all(|n| n.matrix.is_some()));
        assert_eq!(s.edge_query(10, 30, TimeRange::all()), q);
        assert!(s.take_pending_aggregations().is_empty());
    }

    #[test]
    fn delete_reverses_insert_everywhere() {
        let mut s = HiggsSummary::new(tiny_config());
        let edges: Vec<StreamEdge> = (0..2_000u64)
            .map(|i| StreamEdge::new(i % 200, (i * 11) % 200, 1, i))
            .collect();
        for e in &edges {
            s.insert_edge(e);
        }
        let before = s.edge_query(edges[7].src, edges[7].dst, TimeRange::all());
        s.delete_edge(&edges[7]);
        let after = s.edge_query(edges[7].src, edges[7].dst, TimeRange::all());
        assert_eq!(after, before - 1);
        assert_eq!(s.total_items(), edges.len() as u64 - 1);
    }

    #[test]
    fn utilization_and_space_are_reported() {
        let mut s = HiggsSummary::new(tiny_config());
        for i in 0..1_000u64 {
            s.insert_edge(&StreamEdge::new(i % 100, (i + 3) % 100, 1, i));
        }
        assert!(s.average_leaf_utilization() > 0.0);
        assert!(s.space() > 0);
        assert!(s.space_bytes() >= s.space() - 16);
    }

    #[test]
    fn trait_composition_path_query_works() {
        let mut s = HiggsSummary::new(tiny_config());
        s.insert_edge(&StreamEdge::new(1, 2, 5, 10));
        s.insert_edge(&StreamEdge::new(2, 3, 7, 11));
        let q = higgs_common::PathQuery::new(vec![1, 2, 3], TimeRange::new(0, 20));
        assert_eq!(s.path_query(&q), 12);
        assert_eq!(s.query(&higgs_common::Query::Path(q)), 12);
        assert_eq!(s.vertex_query(1, VertexDirection::Out, TimeRange::all()), 5);
    }

    #[test]
    fn summary_serves_concurrent_readonly_queries() {
        // The plan counter must not cost the summary its `Sync` auto trait:
        // a loaded summary is shared read-only across serving threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HiggsSummary>();

        let mut s = HiggsSummary::new(tiny_config());
        for i in 0..2_000u64 {
            s.insert_edge(&StreamEdge::new(i % 100, (i * 7) % 100, 1, i));
        }
        let shared = &s;
        let totals: Vec<u64> = std::thread::scope(|scope| {
            (0..4u64)
                .map(|t| {
                    scope.spawn(move || {
                        shared.edge_query(t, (t * 7) % 100, TimeRange::all())
                            + shared.vertex_query(t, VertexDirection::Out, TimeRange::new(0, 999))
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("query thread panicked"))
                .collect()
        });
        for (t, total) in totals.iter().enumerate() {
            assert_eq!(
                *total,
                s.edge_query(t as u64, (t as u64 * 7) % 100, TimeRange::all())
                    + s.vertex_query(t as u64, VertexDirection::Out, TimeRange::new(0, 999))
            );
        }
        assert!(s.plans_built() > 0);
    }
}
