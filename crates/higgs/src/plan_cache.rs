//! Cross-batch query-plan caching: a bounded, epoch-versioned LRU of
//! [`QueryPlan`]s keyed by [`TimeRange`].
//!
//! The Algorithm-3 boundary search is the dominant *fixed* cost of a HIGGS
//! query: it depends only on the queried range and the tree shape, not on the
//! queried vertices. The batch executor of the typed query surface already
//! shares one plan across every query of a batch that uses the same range —
//! but a serving workload of sliding windows re-submits the *same ranges*
//! batch after batch, rebuilding identical plans every tick. [`PlanCache`]
//! closes that gap: plans built by
//! [`HiggsSummary::cached_plan`] are retained across batches and returned
//! without a boundary search as long as the summary has not mutated since.
//!
//! # Invalidation
//!
//! Every cached plan records the summary's **mutation epoch**
//! ([`HiggsSummary::mutation_epoch`]) at build time. The epoch is a
//! monotonically increasing counter bumped by every mutation that can change
//! what a fresh boundary search would produce:
//!
//! * inserting an edge (may open leaves, complete groups, shift leaf spans),
//! * deleting an edge (changes stored weights),
//! * materialising an aggregate (a fresh plan would target the aggregate
//!   matrix where the stale plan descended to the leaves).
//!
//! A lookup whose entry carries a stale epoch drops the entry and reports a
//! miss, so a cached plan is only ever served when it is *bit-identical* to
//! what [`HiggsSummary::plan`] would build right now. Results through the
//! cache are therefore exactly the results of the uncached path.
//!
//! # Concurrency
//!
//! The cache is interior-mutable behind a [`Mutex`] so read-only queries
//! (`&self`) can populate it from any number of serving threads; plans are
//! handed out as [`Arc`] clones, so a hit is one short critical section plus
//! a reference-count bump. Mutations take `&mut self` and bump the epoch
//! outside the lock. In a [`ShardedHiggs`](crate::ShardedHiggs) each shard's
//! summary owns its own cache under the shard's `RwLock`: writers bump the
//! epoch while applying mutations under the write lock, and the service's
//! read-your-writes flush clock guarantees queries only run after previously
//! enqueued mutations (and their epoch bumps) have landed.

use crate::boundary::QueryPlan;
use crate::tree::HiggsSummary;
use higgs_common::TimeRange;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default number of plans a summary retains
/// ([`HiggsConfigBuilder::plan_cache_capacity`](crate::HiggsConfigBuilder::plan_cache_capacity)
/// overrides it). Sized to hold every window of a few-hundred-window sliding
/// screen (e.g. the fraud-detection example's 255 windows) without LRU
/// thrash; a plan is a handful of targets, so the worst-case footprint is a
/// few KiB.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 256;

/// One cached plan: the range it decomposes, the mutation epoch it was built
/// at, and the shared plan itself.
#[derive(Clone, Debug)]
struct CacheEntry {
    range: TimeRange,
    epoch: u64,
    plan: Arc<QueryPlan>,
}

/// A bounded LRU cache of query plans, epoch-checked on every lookup. Owned
/// by each [`HiggsSummary`]; see the [module docs](self) for semantics.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    hits: AtomicU64,
    /// Most-recently-used first. Linear scans are fine: capacities are small
    /// (hundreds) and a scan over a contiguous `Vec` of small entries is
    /// cheaper than hashing for the hit path this cache serves.
    entries: Mutex<Vec<CacheEntry>>,
}

impl Clone for PlanCache {
    fn clone(&self) -> Self {
        Self {
            capacity: self.capacity,
            hits: AtomicU64::new(self.hits()),
            entries: Mutex::new(self.entries.lock().expect("plan cache poisoned").clone()),
        }
    }
}

impl PlanCache {
    /// Creates an empty cache retaining up to `capacity` plans (`0` disables
    /// caching entirely: every lookup misses and nothing is stored).
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            capacity,
            hits: AtomicU64::new(0),
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Maximum number of plans retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of plans currently cached.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("plan cache poisoned").len()
    }

    /// Whether the cache currently holds no plan.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of lookups served from the cache over the summary's lifetime.
    pub fn hits(&self) -> u64 {
        // ORDERING: Relaxed — diagnostic counter; the cache's correctness is
        // carried by the entries mutex, not by this statistic.
        self.hits.load(Ordering::Relaxed)
    }

    /// Drops every cached plan (diagnostic hook; epoch checking makes manual
    /// invalidation unnecessary in normal operation).
    pub(crate) fn clear(&self) {
        self.entries.lock().expect("plan cache poisoned").clear();
    }

    /// Returns the cached plan for `range` if one exists *and* was built at
    /// `epoch`; a stale entry is evicted on sight.
    fn lookup(&self, range: TimeRange, epoch: u64) -> Option<Arc<QueryPlan>> {
        if self.capacity == 0 {
            return None;
        }
        let mut entries = self.entries.lock().expect("plan cache poisoned");
        let pos = entries.iter().position(|e| e.range == range)?;
        if entries[pos].epoch != epoch {
            entries.remove(pos);
            return None;
        }
        // Move to front (MRU) and hand out a shared reference.
        let entry = entries.remove(pos);
        let plan = entry.plan.clone();
        entries.insert(0, entry);
        // ORDERING: Relaxed — hit tally only; the plan handout itself is
        // synchronised by the entries mutex held above.
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(plan)
    }

    /// Stores `plan` for `range` at `epoch`, evicting the least-recently-used
    /// entry beyond capacity. A concurrent store for the same range (two
    /// threads missing simultaneously) replaces rather than duplicates.
    fn store(&self, range: TimeRange, epoch: u64, plan: Arc<QueryPlan>) {
        if self.capacity == 0 {
            return;
        }
        let mut entries = self.entries.lock().expect("plan cache poisoned");
        entries.retain(|e| e.range != range);
        entries.insert(0, CacheEntry { range, epoch, plan });
        entries.truncate(self.capacity);
    }
}

impl HiggsSummary {
    /// The plan for `range`, served from the cross-batch [`PlanCache`] when a
    /// fresh entry exists and built (then cached) otherwise.
    ///
    /// The returned plan is always bit-identical to what [`plan`](Self::plan)
    /// would build right now: cached entries are validated against the
    /// summary's [`mutation_epoch`](Self::mutation_epoch), so any intervening
    /// insert, delete, or aggregate materialisation forces a rebuild. Only
    /// rebuilds count towards [`plans_built`](Self::plans_built); hits are
    /// tallied by [`plan_cache_hits`](Self::plan_cache_hits).
    pub fn cached_plan(&self, range: TimeRange) -> Arc<QueryPlan> {
        let epoch = self.mutation_epoch();
        if let Some(plan) = self.plan_cache.lookup(range, epoch) {
            return plan;
        }
        let plan = Arc::new(self.plan(range));
        self.plan_cache.store(range, epoch, plan.clone());
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HiggsConfig;
    use higgs_common::{StreamEdge, TemporalGraphSummary};

    fn tiny_config(cache: usize) -> HiggsConfig {
        HiggsConfig::builder()
            .d1(4)
            .f1_bits(12)
            .bucket_entries(2)
            .mapping_addresses(2)
            .plan_cache_capacity(cache)
            .build()
            .expect("valid test configuration")
    }

    fn loaded(cache: usize) -> HiggsSummary {
        let mut s = HiggsSummary::new(tiny_config(cache));
        for i in 0..3_000u64 {
            s.insert(&StreamEdge::new(i % 60, (i * 7) % 60, 1, i));
        }
        s
    }

    #[test]
    fn cached_plan_skips_the_boundary_search_on_repeat() {
        let s = loaded(8);
        let range = TimeRange::new(200, 2_500);
        s.reset_plan_count();
        let first = s.cached_plan(range);
        assert_eq!(s.plans_built(), 1);
        let second = s.cached_plan(range);
        assert_eq!(s.plans_built(), 1, "second lookup must hit the cache");
        assert!(Arc::ptr_eq(&first, &second), "hit must share the same plan");
        assert_eq!(s.plan_cache_hits(), 1);
        assert_eq!(s.plan_cache_len(), 1);
    }

    #[test]
    fn mutation_epoch_invalidates_cached_plans() {
        let mut s = loaded(8);
        let range = TimeRange::new(0, 2_999);
        let stale = s.cached_plan(range);
        let epoch_before = s.mutation_epoch();
        s.insert(&StreamEdge::new(7, 49, 3, 2_999));
        assert!(s.mutation_epoch() > epoch_before, "insert must bump epoch");
        s.reset_plan_count();
        let fresh = s.cached_plan(range);
        assert_eq!(s.plans_built(), 1, "stale entry must be rebuilt");
        assert!(!Arc::ptr_eq(&stale, &fresh));
        // The rebuilt plan is re-cached at the new epoch.
        let again = s.cached_plan(range);
        assert!(Arc::ptr_eq(&fresh, &again));
    }

    #[test]
    fn delete_invalidates_cached_plans() {
        let mut s = loaded(8);
        let range = TimeRange::new(0, 2_999);
        let _ = s.cached_plan(range);
        s.delete(&StreamEdge::new(0, 0, 1, 0));
        s.reset_plan_count();
        let _ = s.cached_plan(range);
        assert_eq!(s.plans_built(), 1, "deletion must invalidate the cache");
    }

    #[test]
    fn lru_eviction_is_bounded_and_keeps_hot_ranges() {
        let s = loaded(2);
        let a = TimeRange::new(0, 500);
        let b = TimeRange::new(600, 1_200);
        let c = TimeRange::new(1_300, 2_000);
        let _ = s.cached_plan(a);
        let _ = s.cached_plan(b);
        let _ = s.cached_plan(a); // refresh a: now MRU order [a, b]
        let _ = s.cached_plan(c); // evicts b (LRU)
        assert_eq!(s.plan_cache_len(), 2);
        s.reset_plan_count();
        let _ = s.cached_plan(a);
        let _ = s.cached_plan(c);
        assert_eq!(s.plans_built(), 0, "a and c must have survived");
        let _ = s.cached_plan(b);
        assert_eq!(s.plans_built(), 1, "b was evicted");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let s = loaded(0);
        let range = TimeRange::new(100, 2_000);
        s.reset_plan_count();
        let _ = s.cached_plan(range);
        let _ = s.cached_plan(range);
        assert_eq!(s.plans_built(), 2, "capacity 0 must never cache");
        assert_eq!(s.plan_cache_hits(), 0);
        assert_eq!(s.plan_cache_len(), 0);
    }

    #[test]
    fn cloning_a_summary_snapshots_its_cache() {
        let s = loaded(4);
        let range = TimeRange::new(0, 1_000);
        let _ = s.cached_plan(range);
        let clone = s.clone();
        clone.reset_plan_count();
        let _ = clone.cached_plan(range);
        assert_eq!(clone.plans_built(), 0, "clone inherits cached plans");
    }

    #[test]
    fn aggregate_materialisation_invalidates_cached_plans() {
        // A plan cached while aggregation is deferred descends to the
        // leaves; once the aggregates materialise, a fresh plan targets the
        // aggregate matrices, which under collisions need not be bit-identical
        // to leaf descent — so materialisation must bump the epoch.
        let mut s = HiggsSummary::with_deferred_aggregation(tiny_config(8));
        for i in 0..3_000u64 {
            s.insert(&StreamEdge::new(i % 60, (i * 7) % 60, 1, i));
        }
        let range = TimeRange::new(0, 2_999);
        let stale = s.cached_plan(range);
        assert_eq!(stale.aggregate_count(), 0, "nothing materialised yet");
        let epoch_before = s.mutation_epoch();
        s.finalize_aggregations();
        assert!(
            s.mutation_epoch() > epoch_before,
            "materialisation must bump the epoch"
        );
        s.reset_plan_count();
        let fresh = s.cached_plan(range);
        assert_eq!(s.plans_built(), 1, "materialisation must invalidate");
        assert!(
            fresh.aggregate_count() > 0,
            "fresh plan must use the aggregates"
        );
    }
}
