//! Algorithm 3: the boundary search that decomposes a temporal range query
//! into a query plan over the HIGGS tree.
//!
//! Starting from the (virtual) root, subtrees that are *entirely* covered by
//! the queried range `[ts, te]` and whose aggregate matrix has materialised
//! contribute that single timestamp-free matrix; subtrees straddling a
//! boundary are descended into, until the boundary leaves are reached, where
//! per-entry timestamp offsets filter exactly the in-range items. The plan
//! therefore touches `O(θ · log(Lq / L'))` matrices (Section V-B) and never
//! double-counts: the targets cover disjoint portions of the stream.

use crate::tree::HiggsSummary;
use higgs_common::TimeRange;

/// One element of a query plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryTarget {
    /// Query the aggregated matrix of internal node `internals[level][index]`
    /// (tree layer `level + 2`); no temporal filtering is needed because the
    /// whole subtree lies inside the queried range.
    Aggregate {
        /// Internal level (0 = the layer right above the leaves).
        level: usize,
        /// Node index within the level.
        index: usize,
    },
    /// Query leaf `index` with the given inclusive offset filter.
    Leaf {
        /// Leaf index.
        index: usize,
        /// Inclusive `(low, high)` filter on stored time offsets.
        filter: (u32, u32),
    },
}

/// A decomposed temporal range query: the list of matrices to visit.
#[derive(Clone, Debug, Default)]
pub struct QueryPlan {
    /// Matrices to visit, in tree order.
    pub targets: Vec<QueryTarget>,
    /// The original query range.
    pub range: Option<TimeRange>,
}

impl QueryPlan {
    /// Number of matrices the plan touches.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether the plan touches no matrix at all.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Number of aggregate (non-leaf) targets.
    pub fn aggregate_count(&self) -> usize {
        self.targets
            .iter()
            .filter(|t| matches!(t, QueryTarget::Aggregate { .. }))
            .count()
    }

    /// Number of leaf targets.
    pub fn leaf_count(&self) -> usize {
        self.targets
            .iter()
            .filter(|t| matches!(t, QueryTarget::Leaf { .. }))
            .count()
    }
}

impl HiggsSummary {
    /// Decomposes `[range.start, range.end]` into a query plan (Algorithm 3).
    ///
    /// Every call runs one boundary search and bumps the
    /// [`plans_built`](Self::plans_built) counter; the batch executor
    /// ([`TemporalGraphSummary::query_batch`](higgs_common::TemporalGraphSummary::query_batch))
    /// calls this once per distinct range and reuses the plan across every
    /// query sharing it.
    pub fn plan(&self, range: TimeRange) -> QueryPlan {
        self.plans_built.increment();
        let mut plan = QueryPlan {
            targets: Vec::new(),
            range: Some(range),
        };
        if self.leaves.is_empty() {
            return plan;
        }
        let theta = self.config.theta();
        // Smallest level whose span of θ^level leaves covers the whole tree.
        let n = self.leaves.len();
        let mut top_level = 0usize;
        let mut span = 1usize;
        while span < n {
            span = span.saturating_mul(theta);
            top_level += 1;
        }
        let roots = n.div_ceil(span.max(1));
        for idx in 0..roots {
            self.plan_node(top_level, idx, range, &mut plan.targets);
        }
        plan
    }

    /// Recursive step of the boundary search over the conceptual θ-ary tree
    /// whose level-`level` node `idx` covers leaves
    /// `[idx·θ^level, (idx+1)·θ^level)`.
    fn plan_node(
        &self,
        level: usize,
        idx: usize,
        range: TimeRange,
        targets: &mut Vec<QueryTarget>,
    ) {
        let theta = self.config.theta();
        let span = theta.pow(level as u32);
        let first_leaf = idx * span;
        if first_leaf >= self.leaves.len() {
            return;
        }
        let last_leaf = ((idx + 1) * span - 1).min(self.leaves.len() - 1);
        let node_range = TimeRange::new(
            self.leaves[first_leaf].start_time,
            self.leaves[last_leaf].end_time,
        );
        if !range.overlaps(&node_range) {
            return;
        }
        if level == 0 {
            if let Some(filter) = self.leaves[first_leaf].offset_filter(range) {
                targets.push(QueryTarget::Leaf {
                    index: first_leaf,
                    filter,
                });
            }
            return;
        }
        // Use the aggregated matrix only when the subtree is complete,
        // materialised, and entirely inside the queried range.
        if range.contains_range(&node_range) {
            let complete = (idx + 1) * span <= self.closed_leaves();
            if complete {
                if let Some(node) = self
                    .internals
                    .get(level - 1)
                    .and_then(|nodes| nodes.get(idx))
                {
                    if node.matrix.is_some() {
                        targets.push(QueryTarget::Aggregate {
                            level: level - 1,
                            index: idx,
                        });
                        return;
                    }
                }
            }
        }
        for child in 0..theta {
            self.plan_node(level - 1, idx * theta + child, range, targets);
        }
    }

    /// Number of leaves that are closed (every leaf except the newest one).
    fn closed_leaves(&self) -> usize {
        self.leaves.len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HiggsConfig;
    use higgs_common::{StreamEdge, TemporalGraphSummary};

    fn tiny_config() -> HiggsConfig {
        HiggsConfig {
            d1: 4,
            f1_bits: 12,
            r_bits: 1,
            bucket_entries: 2,
            mapping_addresses: 2,
            overflow_blocks: true,
            shards: 1,
            plan_cache_capacity: 8,
            ingest_queue_cap: None,
            pin_workers: false,
            admission_tick: std::time::Duration::ZERO,
            service_queue_depth: None,
            journal_mode: crate::config::JournalMode::Off,
        }
    }

    fn build(n: u64) -> HiggsSummary {
        let mut s = HiggsSummary::new(tiny_config());
        for i in 0..n {
            s.insert_edge(&StreamEdge::new(i % 97, (i * 5) % 97, 1, i));
        }
        s
    }

    #[test]
    fn empty_summary_has_empty_plan() {
        let s = HiggsSummary::new(tiny_config());
        let plan = s.plan(TimeRange::new(0, 100));
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
    }

    #[test]
    fn full_range_plan_uses_aggregates() {
        let s = build(5_000);
        let plan = s.plan(TimeRange::all());
        assert!(!plan.is_empty());
        assert!(
            plan.aggregate_count() > 0,
            "whole-stream query should hit aggregated matrices"
        );
        // Far fewer targets than leaves thanks to aggregation.
        assert!(plan.len() < s.leaf_count());
    }

    #[test]
    fn narrow_range_plan_touches_few_leaves() {
        let s = build(5_000);
        let span = s.time_span().unwrap();
        let mid = (span.start + span.end) / 2;
        let plan = s.plan(TimeRange::new(mid, mid + 3));
        assert!(
            plan.len() <= 4,
            "narrow query should touch few matrices: {plan:?}"
        );
        assert_eq!(plan.aggregate_count(), 0);
    }

    #[test]
    fn plan_targets_cover_disjoint_leaves() {
        let s = build(4_000);
        let span = s.time_span().unwrap();
        let range = TimeRange::new(span.start + span.len() / 4, span.end - span.len() / 4);
        let plan = s.plan(range);
        let theta = s.config().theta();
        let mut covered_leaves = std::collections::HashSet::new();
        for t in &plan.targets {
            match *t {
                QueryTarget::Leaf { index, .. } => {
                    assert!(covered_leaves.insert(index), "leaf {index} visited twice");
                }
                QueryTarget::Aggregate { level, index } => {
                    let span_leaves = theta.pow(level as u32 + 1);
                    for leaf in index * span_leaves..(index + 1) * span_leaves {
                        assert!(
                            covered_leaves.insert(leaf),
                            "leaf {leaf} covered by two targets"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn plan_grows_logarithmically_with_range_length() {
        let s = build(8_000);
        let span = s.time_span().unwrap();
        let small = s.plan(TimeRange::new(span.start, span.start + 10)).len();
        let medium = s
            .plan(TimeRange::new(span.start, span.start + span.len() / 8))
            .len();
        let large = s.plan(TimeRange::all()).len();
        assert!(small <= medium);
        // The full-range plan collapses to the top aggregates, so it is small
        // again — the hallmark of the hierarchical decomposition.
        assert!(large <= medium.max(small) + s.config().theta() * 4);
    }

    #[test]
    fn out_of_span_range_yields_empty_or_leafless_plan() {
        let s = build(1_000);
        let span = s.time_span().unwrap();
        let plan = s.plan(TimeRange::new(span.end + 10, span.end + 20));
        assert_eq!(plan.len(), 0);
        // Sanity: queries over that range return zero.
        assert_eq!(
            s.edge_query(1, 5, TimeRange::new(span.end + 10, span.end + 20)),
            0
        );
    }
}
