//! # higgs
//!
//! HIGGS — HIerarchy-Guided Graph Stream Summarization (ICDE 2025) — is an
//! item-based, bottom-up hierarchical sketch for summarising graph streams
//! with temporal information. This crate is the paper's primary
//! contribution, built from scratch in Rust:
//!
//! * [`matrix`] — the compressed matrix of fingerprinted buckets, including
//!   the Multiple Mapping Buckets (MMB) optimisation,
//! * [`tree`] — the aggregated B-tree of matrices ([`HiggsSummary`]):
//!   append-only leaves, θ-ary grouping, upward timestamp propagation
//!   (Algorithm 1),
//! * [`aggregate`] — the error-free fingerprint-shift aggregation of child
//!   matrices into parents (Algorithm 2),
//! * [`boundary`] — the boundary-search range decomposition (Algorithm 3),
//! * [`query`] — TRQ evaluation (edge / vertex queries; path and subgraph
//!   queries come from `higgs_common::SummaryExt`),
//! * [`overflow`] — overflow blocks absorbing same-timestamp bursts,
//! * [`parallel`] — the per-layer parallel insertion pipeline
//!   ([`ParallelHiggs`]).
//!
//! # Quick example
//!
//! ```
//! use higgs::{HiggsConfig, HiggsSummary};
//! use higgs_common::{StreamEdge, TemporalGraphSummary, TimeRange, VertexDirection};
//!
//! let mut summary = HiggsSummary::new(HiggsConfig::default());
//! summary.insert(&StreamEdge::new(1, 2, 5, 10));
//! summary.insert(&StreamEdge::new(1, 3, 2, 11));
//! summary.insert(&StreamEdge::new(1, 2, 1, 20));
//!
//! assert_eq!(summary.edge_query(1, 2, TimeRange::new(0, 15)), 5);
//! assert_eq!(
//!     summary.vertex_query(1, VertexDirection::Out, TimeRange::new(0, 30)),
//!     8
//! );
//! ```
//!
//! # Performance notes
//!
//! Every insert, temporal-range query, and aggregation funnels through the
//! compressed matrix, so [`matrix`] is written for the cache, not the
//! allocator:
//!
//! * **Flat slab storage.** A `d × d` matrix with `b`-entry buckets is one
//!   contiguous `Vec` of `b · d²` fixed-stride slots plus a `Vec<u8>` of
//!   per-bucket lengths — no per-bucket heap allocations, no pointer chases.
//!   A source-vertex query sweeps each candidate row as a single contiguous
//!   range; cloning a matrix (parallel aggregation snapshots) is a memcpy.
//! * **Packed match keys.** The fingerprint pair is packed into one `u64`
//!   and the MMB index pair into one `u16` per slot, so candidate scans are
//!   two integer compares per entry instead of four field compares.
//! * **Single-pass probing.** The `r` candidate rows and columns of an
//!   operation are computed once per operation with an iterative LCG walk
//!   ([`higgs_common::hashing::AddressSequence::fill_sequence`]) into stack
//!   arrays, and insertion finds a match *and* the first free slot in one
//!   fused sweep of the `r × r` candidate buckets.
//! * **One hash per endpoint per query.** Query-plan evaluation hashes each
//!   vertex once and re-partitions the hash per visited layer, instead of
//!   re-hashing per plan target.
//!
//! The `matrix_layout` Criterion group in `higgs-bench` tracks the raw
//! matrix insert/probe costs at `d ∈ {64, 256}`; `insert_throughput` and
//! `edge_query`/`vertex_query` track the end-to-end effect.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aggregate;
pub mod boundary;
pub mod config;
pub mod matrix;
pub mod node;
pub mod overflow;
pub mod parallel;
pub mod query;
pub mod tree;

pub use boundary::{QueryPlan, QueryTarget};
pub use config::HiggsConfig;
pub use matrix::CompressedMatrix;
pub use parallel::ParallelHiggs;
pub use tree::HiggsSummary;
