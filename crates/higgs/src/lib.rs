//! # higgs
//!
//! HIGGS — HIerarchy-Guided Graph Stream Summarization (ICDE 2025) — is an
//! item-based, bottom-up hierarchical sketch for summarising graph streams
//! with temporal information. This crate is the paper's primary
//! contribution, built from scratch in Rust:
//!
//! * [`matrix`] — the compressed matrix of fingerprinted buckets, including
//!   the Multiple Mapping Buckets (MMB) optimisation,
//! * [`tree`] — the aggregated B-tree of matrices ([`HiggsSummary`]):
//!   append-only leaves, θ-ary grouping, upward timestamp propagation
//!   (Algorithm 1),
//! * [`aggregate`] — the error-free fingerprint-shift aggregation of child
//!   matrices into parents (Algorithm 2),
//! * [`boundary`] — the boundary-search range decomposition (Algorithm 3),
//! * [`plan_cache`] — the cross-batch, epoch-invalidated query-plan cache,
//! * [`query`] — TRQ evaluation: the typed [`Query`](higgs_common::Query)
//!   surface with the plan-sharing columnar batch executor, plus the raw
//!   edge/vertex primitives,
//! * [`overflow`] — overflow blocks absorbing same-timestamp bursts,
//! * [`parallel`] — the per-layer parallel insertion pipeline
//!   ([`ParallelHiggs`]),
//! * [`shard`] — the source-sharded concurrent service layer
//!   ([`ShardedHiggs`]),
//! * [`snapshot`] — versioned, checksummed snapshot / restore persistence
//!   for summaries and the sharded service (warm restarts),
//! * [`journal`] — the per-shard write-ahead journal closing the
//!   crash-durability window between snapshots.
//!
//! # Quick example
//!
//! Build a summary (the config [builder](HiggsConfig::builder) validates
//! parameters and returns `Result<_, ConfigError>`), insert a stream, and
//! query it through the typed [`Query`](higgs_common::Query) surface — one
//! entry point for all four TRQ kinds, batchable so planning is shared:
//!
//! ```
//! use higgs::{HiggsConfig, HiggsSummary};
//! use higgs_common::{
//!     Query, StreamEdge, TemporalGraphSummary, TimeRange, VertexDirection,
//! };
//!
//! let config = HiggsConfig::builder().build().expect("valid parameters");
//! let mut summary = HiggsSummary::new(config);
//! summary.insert(&StreamEdge::new(1, 2, 5, 10));
//! summary.insert(&StreamEdge::new(2, 3, 2, 11));
//! summary.insert(&StreamEdge::new(1, 2, 1, 20));
//!
//! // Single typed queries.
//! assert_eq!(summary.query(&Query::edge(1, 2, TimeRange::new(0, 15))), 5);
//! assert_eq!(
//!     summary.query(&Query::vertex(1, VertexDirection::Out, TimeRange::new(0, 30))),
//!     6
//! );
//!
//! // A mixed batch: HIGGS runs the Algorithm-3 boundary search at most once
//! // per distinct time range and shares the plan across every query (and
//! // every hop of the path query) using it.
//! let window = TimeRange::new(0, 30);
//! let batch = vec![
//!     Query::edge(1, 2, window),
//!     Query::path(vec![1, 2, 3], window),
//!     Query::subgraph(vec![(1, 2), (2, 3)], window),
//! ];
//! assert_eq!(summary.query_batch(&batch), vec![6, 8, 8]);
//! // 2 plans so far: the (0, 15) edge query and the first (0, 30) lookup —
//! // the vertex query warmed the plan cache, so the whole batch reused its
//! // (0, 30) plan without another boundary search.
//! assert_eq!(summary.plans_built(), 2);
//!
//! // Re-submitting the same windows (a sliding-window screen re-running
//! // every tick) skips planning entirely until the summary mutates.
//! assert_eq!(summary.query_batch(&batch), vec![6, 8, 8]);
//! assert_eq!(summary.plans_built(), 2); // still: served from the plan cache
//! ```
//!
//! # Performance notes
//!
//! Every insert, temporal-range query, and aggregation funnels through the
//! compressed matrix, so [`matrix`] is written for the cache, not the
//! allocator:
//!
//! * **Flat columnar slab storage.** A `d × d` matrix with `b`-entry
//!   buckets is one contiguous structure-of-arrays slab of `b · d²`
//!   fixed-stride slots — parallel columns of packed keys, packed tags, and
//!   weights, plus a `Vec<u8>` of per-bucket lengths — no per-bucket heap
//!   allocations, no pointer chases. A source-vertex query sweeps each
//!   candidate row as a single contiguous range; cloning a matrix (parallel
//!   aggregation snapshots) is three memcpys.
//! * **Packed match keys.** The fingerprint pair is packed into one `u64`
//!   and the MMB index pair plus time offset into one tag `u64` per slot, so
//!   candidate scans are two masked integer compares per entry instead of
//!   four field compares.
//! * **Key-first sweeps with adaptive granularity.** Entries are never
//!   physically removed and never-occupied slots stay all-zero (weight 0),
//!   so a fixed-length sweep over whole slot ranges is bit-identical to an
//!   occupancy-bounded scan — granularity is purely a performance choice.
//!   Probes funnel through [`higgs_common::sum_matching`], which streams the
//!   keys column and touches tags/weights only on (rare) key hits; wide
//!   contiguous row sweeps are used when a vector kernel is active,
//!   occupancy-guided scans otherwise.
//! * **Single-pass probing.** The `r` candidate rows and columns of an
//!   operation are computed once per operation with an iterative LCG walk
//!   ([`higgs_common::hashing::AddressSequence::fill_sequence`]) into stack
//!   arrays, and insertion finds a match *and* the first free slot in one
//!   fused sweep of the `r × r` candidate buckets.
//! * **One hash per endpoint per query.** Query-plan evaluation hashes each
//!   vertex once and re-partitions the hash per visited layer, instead of
//!   re-hashing per plan target.
//!
//! * **Columnar batch evaluation.** The batch executor inverts the classic
//!   per-query loop: each range group's queries are decomposed into
//!   primitive probes, deduplicated, their endpoints hashed once, and the
//!   probe set sorted by bucket address — then every plan target's slab is
//!   swept **once**, answering all probes against it. N queries × T targets
//!   of scattered walks become T cache-friendly passes.
//!
//! The `matrix_layout` Criterion group in `higgs-bench` tracks the raw
//! matrix insert/probe costs at `d ∈ {64, 256}` (including the
//! `probe_sweep` ids covering the fixed-length SoA sweeps); `insert_throughput`
//! and `edge_query`/`vertex_query` track the end-to-end effect, the
//! `plan_cache` group tracks cold-vs-warm repeated-window batches and
//! columnar-vs-per-query evaluation, and `query_batch/columnar_prefetch`
//! tracks the prefetched columnar executor.
//!
//! # Hardware acceleration
//!
//! The slab sweep kernels and worker placement push the hot paths toward
//! the machine's limits; everything below is std-only (no new crates) and
//! degrades gracefully off x86-64 Linux:
//!
//! * **SIMD candidate scans.** The sweeps above funnel through
//!   [`higgs_common::sum_matching`], a key-first kernel: only the keys
//!   column is streamed unconditionally, and tag/weight columns load on the
//!   rare key hits. Building with the **`simd` cargo feature** (forwarded
//!   to `higgs-common`; `cargo build --features simd`) additionally compiles
//!   explicit SSE2/AVX2 kernels — vectorised masked key compares reduced to
//!   a movemask — and picks the widest one at **runtime** via
//!   `is_x86_feature_detected!` — one cached dispatch decision per process,
//!   scalar fallback everywhere else (non-x86, short slices, unsupported
//!   CPUs). All kernels resolve hits through the identical slot check in
//!   the identical ascending order, so they are **bit-identical** to the
//!   scalar reference; the property suite asserts this across random
//!   insert/delete/query workloads under both feature configurations, so the
//!   feature can never change an answer, only its speed.
//! * **Software-prefetched columnar sweeps.** The columnar batch executor
//!   knows its whole (address-sorted, deduplicated) probe set in advance, so
//!   while answering probe `k` it issues [`higgs_common::prefetch_read_data`]
//!   hints for probe `k + 8`'s slab lines, and the strided
//!   destination-column sweep prefetches a few row-strides ahead. Prefetch
//!   is a pure hint: bounds-checked, no-op off x86-64, never affects
//!   results.
//! * **Core-pinned shard workers.** [`HiggsConfigBuilder::pin_workers`]
//!   pins each shard's thread group (writer + aggregation workers) to core
//!   `shard_index % available_cores` via raw `sched_setaffinity` syscalls
//!   ([`higgs_common::affinity`]), keeping every shard's slabs resident in
//!   one core's private cache. Pinning is best-effort (no-op off Linux
//!   x86-64), and is runtime placement state — never persisted in
//!   snapshots; a restored service starts unpinned.
//!
//! # Plan caching & invalidation
//!
//! The Algorithm-3 boundary search depends only on the queried
//! [`TimeRange`](higgs_common::TimeRange) and the tree shape — not on the
//! queried vertices — which makes it perfectly reusable *across* batches: a
//! sliding-window screen re-submits the same windows every tick. Each
//! [`HiggsSummary`] therefore owns a bounded LRU [`PlanCache`]
//! (capacity via [`HiggsConfigBuilder::plan_cache_capacity`], default
//! [`plan_cache::DEFAULT_PLAN_CACHE_CAPACITY`]; `0` disables it) consulted
//! by the typed surface ([`TemporalGraphSummary::query`](higgs_common::TemporalGraphSummary::query)
//! / [`query_batch`](higgs_common::TemporalGraphSummary::query_batch)).
//!
//! **Epoch semantics.** Every summary carries a monotonically increasing
//! *mutation epoch* ([`HiggsSummary::mutation_epoch`]), bumped by each
//! insert, delete, and aggregate materialisation (including deferred
//! aggregations installed later by [`ParallelHiggs`] workers). Cached plans
//! record the epoch they were built at; a lookup whose entry is stale evicts
//! it and rebuilds. A cached plan is thus always bit-identical to what
//! [`HiggsSummary::plan`] would build at that instant, so caching can never
//! change results — only remove boundary searches.
//! [`HiggsSummary::plans_built`] counts only real boundary searches (cache
//! misses); [`HiggsSummary::plan_cache_hits`] counts lookups served from the
//! cache, and a fully warm batch builds **zero** plans.
//!
//! **Sharded interaction with the flush clock.** In a [`ShardedHiggs`] every
//! shard's summary owns its own cache under the shard `RwLock`. Writers bump
//! the shard's epoch while applying mutations under the write lock, and the
//! service's read-your-writes flush clock makes every trait query wait for
//! previously enqueued mutations before taking read locks — so a query is
//! never served a plan predating a mutation it is entitled to observe. The
//! raw `edge_query`/`vertex_query` primitives deliberately bypass the cache;
//! they are the reference path the cached surface is property-tested
//! against.
//!
//! # Scaling out
//!
//! One process-wide summary serves one ingest thread; production traffic
//! wants many cores ingesting and many threads serving. [`ShardedHiggs`]
//! (module [`shard`]) is that layer: a fixed-`N` array of [`HiggsSummary`]
//! shards partitioned by **hash of the source vertex**
//! ([`higgs_common::hashing::shard_of`], configured via
//! [`HiggsConfigBuilder::shards`]). The routing rules are:
//!
//! | query kind          | route                                            |
//! |---------------------|--------------------------------------------------|
//! | edge `s → d`        | the shard owning `s`                             |
//! | vertex, out         | the shard owning the vertex                      |
//! | vertex, in          | every shard, results summed                      |
//! | path / subgraph     | one edge query per hop/edge, each by its source  |
//!
//! Because an edge is recorded exactly on its source's shard, the gathered
//! results match an unsharded summary (bit-identical in the collision-free
//! regime, still one-sided under collisions).
//!
//! Ingest routes each edge to a dedicated per-shard writer thread over a
//! FIFO channel, and each writer feeds a [`ParallelHiggs`] pipeline — so
//! leaf insertion and group-close aggregation both stay off the ingest
//! thread, which only hashes and enqueues. Queries are read-your-writes
//! (each trait query first waits for previously enqueued mutations to land)
//! and run under per-shard read locks, so any number of threads can serve
//! while an [`shard::IngestHandle`] streams new edges in.
//!
//! **Plan sharing per shard:** the batch surface of [`ShardedHiggs`] routes
//! per-shard sub-batches through each shard's plan-sharing columnar
//! executor, so a batch costs at most one Algorithm-3 boundary search per
//! distinct [`TimeRange`](higgs_common::TimeRange) *per shard it touches* —
//! never one per query, hop, or subgraph edge — and, thanks to each shard's
//! cross-batch [`PlanCache`], **zero** boundary searches when the same
//! windows are re-submitted with no intervening mutation.
//!
//! **Ingest backpressure:** [`HiggsConfigBuilder::ingest_queue_cap`] bounds
//! each shard's writer queue; producers that outrun a writer then block
//! (bounded channels with blocking sends) instead of growing memory without
//! bound. The default stays unbounded.
//!
//! The `sharding` Criterion group in `higgs-bench` tracks ingest-path
//! throughput, full ingest completion, and batch-serving latency at 1–8
//! shards against the single-summary and [`ParallelHiggs`] baselines.
//!
//! # Serving & admission control
//!
//! [`ShardedHiggs`] shares plans *within* one batch; [`HiggsService`]
//! (module [`serving`]) extends that sharing *across clients*. It wraps a
//! [`ShardedHiggs`] with a submission queue, an admission thread, and one
//! evaluation worker per shard, and hands out cloneable [`ServiceClient`]
//! handles — one typed surface for query submission, fallible ingest, and
//! flush.
//!
//! **The tick model.** The admission thread blocks for the first queued
//! submission, optionally holds the tick open for
//! [`HiggsConfigBuilder::admission_tick`] (default `Duration::ZERO`), then
//! drains everything else already queued. One tick becomes one coalesced
//! batch.
//!
//! **The coalescing guarantee.** Per priority class, a tick's queries are
//! concatenated, planned once ([`higgs_common::ShardPlan`]), and evaluated
//! as a single columnar `query_batch` per shard — so N clients submitting
//! the same window in one tick cost at most one Algorithm-3 boundary search
//! per (window, shard) pair, and zero with a warm plan cache, exactly as if
//! one caller had submitted them as a single batch. Per-shard sub-batches
//! run concurrently on the per-shard workers.
//!
//! **Deadlines & priorities.** [`QueryOptions`](higgs_common::QueryOptions)
//! carries an optional deadline, a [`Priority`](higgs_common::Priority)
//! class, and a [`Consistency`](higgs_common::Consistency) mode. Within a
//! tick, classes evaluate strictly `Interactive` → `Normal` → `Bulk`;
//! submissions whose deadline elapsed while queueing complete with
//! [`ServiceError::DeadlineExceeded`] instead of being evaluated.
//!
//! **Consistency modes.** `ReadYourWrites` (the default, matching the
//! previous trait-query semantics) flushes enqueued ingest once per class
//! per tick before evaluating; `Relaxed` skips the flush, so an interactive
//! class of relaxed queries jumps ahead of pending ingest flushes entirely.
//!
//! **Backpressure & shutdown.** [`HiggsConfigBuilder::service_queue_depth`]
//! bounds the submission queue; a full queue fails the ticket immediately
//! with [`ServiceError::Overloaded`]. Dropping the service resolves every
//! in-flight ticket (result or [`ServiceError::Shutdown`]), joins the
//! serving threads, then joins the shard writers; surviving clients fail
//! fast with typed errors.
//!
//! **Migrating from the old three-handle surface.** Previously a serving
//! deployment juggled `&ShardedHiggs` for queries, an [`IngestHandle`] for
//! writes (with `bool` returns), and `flush()`:
//!
//! | before (v0 surface)              | after ([`ServiceClient`])                        |
//! |----------------------------------|--------------------------------------------------|
//! | `sharded.query(&q)`              | `client.query(&q)?` / `client.submit(q).wait()`  |
//! | `sharded.query_batch(&qs)`       | `client.query_batch(&qs)?` / `submit_batch`      |
//! | `handle.insert(&e)` → `bool`     | `client.insert(&e)` → `Result<(), IngestError>`  |
//! | `handle.insert_all(&es)` → count | `client.insert_all(&es)` → `Result<(), IngestError>` |
//! | `handle.delete(&e)` → `bool`     | `client.delete(&e)` → `Result<(), IngestError>`  |
//! | `sharded.flush()`                | `client.flush()`                                 |
//! | per-query flush, no classes      | [`QueryOptions`](higgs_common::QueryOptions) (deadline / priority / consistency) |
//!
//! Direct [`ShardedHiggs`] use (and [`HiggsService::summary`]) remains fully
//! supported for embedded, single-owner deployments — the service layer is
//! additive.
//!
//! The `serving` Criterion group in `higgs-bench` tracks coalesced-vs-
//! independent evaluation and client-observed p50/p99 latency under 128
//! simulated clients.
//!
//! # Persistence & warm restart
//!
//! A service serving heavy traffic cannot re-ingest its stream after every
//! restart; the summary itself — orders of magnitude smaller than the raw
//! temporal graph — is the state worth persisting. Module [`snapshot`]
//! provides that as a versioned, checksummed binary format built on
//! [`higgs_common::codec`]:
//!
//! * [`HiggsSummary::write_snapshot`] / [`HiggsSummary::read_snapshot`]
//!   persist one summary to any `Write`/`Read` stream. Slab matrices are
//!   written raw (occupancy array + occupied slots + spill list), so restore
//!   rebuilds byte-identical slabs and every query answers bit-identically.
//! * [`ShardedHiggs::snapshot_to_dir`] writes one file per shard plus a
//!   manifest (format version, full config — the shard count is the only
//!   routing state, since [`higgs_common::hashing::shard_of`] is a pure
//!   function — and per-shard checksums); [`Store::open`] with
//!   [`StoreOptions::restore`] rebuilds a warm service with fresh writer
//!   threads and empty queues.
//!
//! **Consistency.** `snapshot_to_dir` drives the same acked-`Flush` clock
//! queries use, so a snapshot is read-your-writes consistent: it covers
//! every mutation enqueued before the call, background aggregations
//! included. Producers still ingesting *during* the snapshot land per shard
//! or not at all (the per-shard-prefix semantics concurrent readers
//! already get).
//!
//! **Verification.** Every file closes with an FNV-1a checksum; restore
//! verifies magic, format version, section framing, structural invariants,
//! per-file checksums, and the manifest's shard census before any state is
//! served — each failure is a typed [`SnapshotError`], never a panic or a
//! silently wrong answer. The format version is bumped on layout changes
//! and newer-than-supported files are refused (see the [`snapshot`] module
//! docs for the full layout and versioning policy).
//!
//! Runtime state (plan cache, plan counters) is not persisted: a restored
//! summary starts with a cold plan cache but the persisted mutation epoch,
//! so epoch monotonicity — and with it cache-invalidation correctness —
//! carries across restarts. Snapshotting the plan cache alongside the
//! summary is a named ROADMAP follow-on.
//!
//! # Durability & crash recovery
//!
//! Snapshots bound data loss to "everything since the last snapshot"; the
//! write-ahead journal (module [`journal`]) closes that window. A *durable*
//! service ([`Store::open`] with [`StoreOptions::durable`]) keeps one
//! append-only, per-record-checksummed journal file per shard next to the
//! snapshot files, and each shard's writer thread appends every mutation
//! **before** applying it. After a crash, the same [`Store::open`] call
//! reconstructs the state as `snapshot + journal tail replay` — a torn final
//! record
//! (the expected crash artifact) stops replay cleanly, while interior
//! corruption fails with a typed [`JournalError`]. Re-arming a surviving
//! journal for appends first trims any torn tail back to the last complete
//! record, so post-recovery appends always extend a clean record boundary.
//!
//! **Sync policy.** [`HiggsConfigBuilder::journal_mode`] picks the
//! durability/throughput point: [`JournalMode::Off`] (no journal — the
//! previous behaviour, and the default), [`JournalMode::Buffered`] (every
//! record leaves process buffers before the mutation applies; an OS crash
//! can lose the tail), or [`JournalMode::SyncEveryN`] (additionally
//! `fsync`s every `n` records, bounding loss to `n` acknowledged
//! mutations even across power failure).
//!
//! **Rotation.** A successful [`ShardedHiggs::snapshot_to_dir`] into the
//! durable directory truncates each shard's journal under a writer fence,
//! so every mutation lives in exactly one of {snapshot, journal}. A failed
//! snapshot leaves every journal intact, and shard health is re-checked
//! *after* the fence parks every writer: a shard that degraded while the
//! fence was forming aborts the snapshot
//! ([`SnapshotError::DegradedShard`]) instead of stamping a manifest over
//! its partial state.
//!
//! **Writer supervision.** A panic while applying a mutation (or flushing
//! at the snapshot fence) no longer takes the shard down silently: the
//! shard is marked [`ShardHealth::Degraded`], queries against it through a
//! [`HiggsService`] fail fast with [`ServiceError::ShardUnavailable`]
//! (never a hang), and a durable service respawns the writer from
//! `snapshot + journal replay`, returning the shard to
//! [`ShardHealth::Healthy`] — [`ShardedHiggs::shard_health`] exposes the
//! board. Respawns beyond the first back off exponentially and are
//! budgeted ([`shard::MAX_WRITER_RESPAWNS`] per shard): a persistent fault
//! parks the shard in a degraded drain instead of spinning
//! rebuild → fail → respawn. Why a recovery failed — journal corruption,
//! transient I/O, a missing manifest, an exhausted budget — is recorded
//! per shard and exposed via [`ShardedHiggs::shard_recovery_errors`]
//! (cleared on success), alongside
//! [`ShardedHiggs::shard_respawn_counts`]. Clients opt into bounded
//! exponential-backoff retry of the transient errors (`Overloaded`,
//! `ShardUnavailable`) via
//! [`QueryOptions::retry`](higgs_common::QueryOptions::retry).
//!
//! The fault-injection harness behind the recovery tests lives in
//! `crates/shims/failpoint` and compiles in only under the `failpoints`
//! cargo feature; production builds carry zero overhead.
//!
//! # Elastic scaling & replication
//!
//! A shard count chosen at launch stops fitting once the stream grows — but
//! [`higgs_common::hashing::shard_of`] routing means a summary folded at `N`
//! shards cannot simply be re-cut into `M`. The *elastic history* (module
//! [`history`]; opt in with [`StoreOptions::elastic`]) solves this: every
//! writer appends each mutation, stamped with a global ingest sequence, to a
//! per-shard, append-only, never-truncated history log alongside the
//! journal. Re-streaming that history through `shard_of` at a new count
//! rebuilds exactly the service a fresh `M`-shard build would have produced
//! — queries answer **bit-identically** (guaranteed for single-producer
//! workloads; see the [`reshard`] module docs), property-tested across every
//! `N → M` pair.
//!
//! * **Offline:** [`Store::open_resharded`] folds a closed directory at a
//!   new width (the directory must hold a snapshot manifest to take the
//!   configuration from).
//! * **Online:** [`ShardedHiggs::reshard`] fences the live writer fleet,
//!   folds, commits the new snapshot, and swaps the shard array without
//!   dropping an acknowledged mutation — surviving [`IngestHandle`] clones
//!   keep routing, at the new width. Failures before the snapshot commit
//!   abort with the service unchanged; every path is a typed
//!   [`ReshardError`].
//!
//! **Warm followers.** The journal doubles as a replication log: a
//! [`Follower`] ([`Store::follow`]) bootstraps from the directory's
//! snapshot, then ships each shard's journal tail from a private cursor on
//! every [`Follower::sync`] — see the [`replica`] module docs for the
//! shipping protocol, [`ReplicationLag`] reporting, and the
//! rotation-detection rules. [`ReplicaService`] wraps a follower in the
//! same admission/worker serving stack for **read-only** fan-out (mutation
//! calls report [`IngestError::ReadOnly`]), syncing on a background cadence
//! and publishing lag through [`ServiceClient::health`]. After a leader
//! crash, [`Follower::promote`] final-syncs and assembles a serving leader
//! that holds every acknowledged mutation — chaos-tested under the
//! `failpoints` feature.
//!
//! **Migrating to the [`Store`] API.** The constructor pairs that
//! accumulated around durability are subsumed by one typed entry point —
//! [`Store::open`] on a [`StoreOptions`] value with an explicit
//! [`OpenMode`]. The old constructors remain as deprecated thin delegates:
//!
//! | before (deprecated)                               | after ([`Store`])                                              |
//! |---------------------------------------------------|----------------------------------------------------------------|
//! | `ShardedHiggs::new_durable(cfg, dir)`             | `Store::open(StoreOptions::durable(cfg, dir))`                 |
//! | `ShardedHiggs::new_durable_with_workers(c, d, w)` | `Store::open(StoreOptions::durable(c, d).workers(w))`          |
//! | `ShardedHiggs::restore_from_dir(dir)`             | `Store::open(StoreOptions::restore(dir))`                      |
//! | `ShardedHiggs::restore_from_dir_with_workers(d, w)` | `Store::open(StoreOptions::restore(d).workers(w))`           |
//! | —                                                 | `Store::open_resharded(StoreOptions::restore(d), m)`           |
//! | —                                                 | `Store::follow(StoreOptions::restore(d))`                      |

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod aggregate;
pub mod boundary;
pub mod config;
pub mod history;
pub mod journal;
pub mod matrix;
pub mod node;
pub mod overflow;
pub mod parallel;
pub mod plan_cache;
pub mod query;
pub mod replica;
pub mod reshard;
pub mod serving;
pub mod shard;
pub mod snapshot;
pub mod store;
pub mod tree;

pub use boundary::{QueryPlan, QueryTarget};
pub use config::{ConfigError, HiggsConfig, HiggsConfigBuilder, JournalMode};
pub use history::{HistoryOp, HistoryOpKind};
pub use journal::{Journal, JournalError, JournalRecord};
pub use matrix::CompressedMatrix;
pub use parallel::ParallelHiggs;
pub use plan_cache::PlanCache;
pub use replica::{Follower, ReplicaError, ReplicaProgress, ReplicationLag};
pub use reshard::ReshardError;
pub use serving::{
    BatchTicket, HealthReport, HiggsService, ReplicaService, ServiceClient, ServiceError, Ticket,
};
pub use shard::{IngestError, IngestHandle, ShardHealth, ShardedHiggs};
pub use snapshot::{SnapshotError, SnapshotManifest};
pub use store::{OpenMode, Store, StoreOptions};
pub use tree::HiggsSummary;
