//! Multi-client serving front-end: [`HiggsService`] and the [`ServiceClient`]
//! API.
//!
//! [`ShardedHiggs`] amortises plans and probes across one *batch*, but every
//! caller that holds its own handle still submits its own batches — two
//! clients asking for the same window in the same instant pay for two
//! boundary searches per shard. This module closes that gap with a classic
//! batch-admission design:
//!
//! * **Submission queue.** Every [`ServiceClient`] clone pushes submissions
//!   into one shared queue (bounded by
//!   [`service_queue_depth`](crate::HiggsConfigBuilder::service_queue_depth),
//!   unbounded by default). Submission is non-blocking: when the queue is
//!   full the ticket completes immediately with
//!   [`ServiceError::Overloaded`] — explicit backpressure, never a silent
//!   stall.
//! * **Admission ticks.** A dedicated admission thread blocks for the first
//!   queued submission, optionally holds the tick open for
//!   [`admission_tick`](crate::HiggsConfigBuilder::admission_tick) so
//!   concurrent clients can land in the same tick, then drains whatever else
//!   is queued. Everything admitted in one tick forms one coalesced batch.
//! * **Coalesced evaluation.** Per priority class, the tick's queries are
//!   concatenated into a single [`ShardPlan`] and evaluated as **one**
//!   columnar `query_batch` per shard on a per-shard worker (the per-shard
//!   request queues), so cross-client duplicate windows cost one boundary
//!   search per shard — and zero when the shard's plan cache is warm. The
//!   workers run concurrently, unlike the sequential per-shard loop of a
//!   direct [`ShardedHiggs::query_batch`] call.
//! * **Reply futures.** Each submission carries a oneshot completion channel
//!   (`reactor::oneshot`); the returned [`Ticket`] / [`BatchTicket`] blocks
//!   on it. Every ticket resolves — with a result or a typed
//!   [`ServiceError`] — even when the service shuts down mid-flight.
//!
//! **Deadlines and priorities.** Within a tick, submissions are grouped by
//! [`Priority`] and the classes are evaluated strictly in order
//! `Interactive`, `Normal`, `Bulk`. A submission whose
//! [`QueryOptions::deadline`] elapsed while it queued completes with
//! [`ServiceError::DeadlineExceeded`] instead of being evaluated.
//! [`Consistency::ReadYourWrites`] submissions trigger at most one ingest
//! flush per class per tick; an interactive class consisting solely of
//! [`Consistency::Relaxed`] submissions skips the flush entirely — that is
//! how latency-sensitive queries jump ahead of ingest flushes.
//!
//! **Fault tolerance.** A class routed at a shard whose writer is
//! [`Degraded`](crate::ShardHealth) fails fast with
//! [`ServiceError::ShardUnavailable`] instead of hanging on the dead
//! writer's flush. The blocking client calls
//! ([`ServiceClient::query_with`], [`ServiceClient::query_batch_with`])
//! retry transient failures — overload and degraded shards — under the
//! submission's [`QueryOptions::retry`] policy with exponential backoff.
//!
//! See the crate docs' *Serving & admission control* section for the client
//! migration table from the old three-handle surface.

use crate::config::{ConfigError, HiggsConfig};
use crate::replica::{Follower, ReplicationLag};
use crate::shard::{HealthBoard, IngestError, IngestHandle, ShardedHiggs};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use higgs_common::{
    Consistency, Priority, Query, QueryOptions, RetryPolicy, ShardPlan, StreamEdge,
    TemporalGraphSummary, Weight,
};
use reactor::oneshot::{completion, Completer, Waiter};
use std::sync::atomic::AtomicU32;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a submitted query completed without a result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The service shut down before the submission was evaluated (or the
    /// submission was sent to an already-dropped service). Terminal.
    Shutdown,
    /// The submission's [`QueryOptions::deadline`] elapsed while it was
    /// queued for admission; it was never evaluated.
    DeadlineExceeded,
    /// Backpressure: the bounded submission queue (see
    /// [`service_queue_depth`](crate::HiggsConfigBuilder::service_queue_depth))
    /// was full at submission time. Retrying later can succeed.
    Overloaded,
    /// A shard this query routes to is [`Degraded`](crate::ShardHealth):
    /// its writer crashed and has not been recovered yet. The class fails
    /// fast instead of reading a shard whose state may be behind its
    /// acknowledged writes. Durable services respawn the writer from
    /// snapshot + journal replay, so retrying (see [`QueryOptions::retry`])
    /// usually succeeds once recovery completes.
    ShardUnavailable,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Shutdown => write!(f, "service shut down before the query completed"),
            ServiceError::DeadlineExceeded => {
                write!(
                    f,
                    "deadline exceeded while the query was queued for admission"
                )
            }
            ServiceError::Overloaded => {
                write!(
                    f,
                    "service overloaded: submission queue is full (backpressure)"
                )
            }
            ServiceError::ShardUnavailable => {
                write!(
                    f,
                    "shard unavailable: a shard this query routes to is degraded \
                     pending writer recovery"
                )
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// Outcome type carried by reply futures.
type Reply = Result<Vec<Weight>, ServiceError>;

/// One admitted unit of work: the client's queries plus everything the
/// admission loop needs to schedule and answer them.
struct Submission {
    queries: Vec<Query>,
    options: QueryOptions,
    /// Stamped at submission time; deadlines are measured from here.
    submitted: Instant,
    reply: Completer<Reply>,
}

/// What clients push into the submission queue.
enum Request {
    Run(Submission),
    /// Posted by [`HiggsService`]'s drop: evaluate nothing further, fail
    /// everything still queued with [`ServiceError::Shutdown`], and exit.
    Shutdown,
}

/// One coalesced per-shard evaluation request (the per-shard request queue
/// element): a sub-batch routed to this shard and the channel to send its
/// column of results back on.
struct ShardJob {
    sub: Vec<Query>,
    reply: Completer<Vec<Weight>>,
}

/// A reply future for a single submitted [`Query`].
///
/// Obtained from [`ServiceClient::submit`]. [`wait`](Self::wait) blocks
/// until the admission loop evaluates the query (or fails it with a typed
/// error); tickets always resolve, even across a service shutdown.
#[must_use = "a ticket does nothing until waited on"]
pub struct Ticket {
    waiter: Waiter<Reply>,
}

impl Ticket {
    /// Blocks until the query completes, returning its estimated aggregate
    /// weight or the typed reason it was not evaluated.
    pub fn wait(self) -> Result<Weight, ServiceError> {
        match self.waiter.wait() {
            // An admission loop that dies without answering (service drop
            // racing the submission) reads as shutdown, never a hang.
            Err(_) => Err(ServiceError::Shutdown),
            Ok(Err(e)) => Err(e),
            Ok(Ok(results)) => Ok(results
                .first()
                .copied()
                .expect("a single-query submission yields one result")),
        }
    }

    /// Returns the result if the query already completed, `None` while it is
    /// still in flight.
    pub fn try_wait(&self) -> Option<Result<Weight, ServiceError>> {
        match self.waiter.try_wait() {
            Err(_) => Some(Err(ServiceError::Shutdown)),
            Ok(None) => None,
            Ok(Some(Err(e))) => Some(Err(e)),
            Ok(Some(Ok(results))) => Some(Ok(results
                .first()
                .copied()
                .expect("a single-query submission yields one result"))),
        }
    }
}

/// A reply future for a batch submission ([`ServiceClient::submit_batch`]):
/// resolves to one weight per submitted query, in submission order.
#[must_use = "a ticket does nothing until waited on"]
pub struct BatchTicket {
    waiter: Waiter<Reply>,
}

impl BatchTicket {
    /// Blocks until the whole batch completes. The batch is answered
    /// atomically: all queries succeed together or the batch fails with one
    /// typed error.
    pub fn wait(self) -> Result<Vec<Weight>, ServiceError> {
        match self.waiter.wait() {
            Err(_) => Err(ServiceError::Shutdown),
            Ok(reply) => reply,
        }
    }

    /// Returns the results if the batch already completed, `None` while it
    /// is still in flight.
    pub fn try_wait(&self) -> Option<Result<Vec<Weight>, ServiceError>> {
        match self.waiter.try_wait() {
            Err(_) => Some(Err(ServiceError::Shutdown)),
            Ok(None) => None,
            Ok(Some(reply)) => Some(reply),
        }
    }
}

/// Runs `attempt_fn` under a [`RetryPolicy`]: transient outcomes
/// (overload backpressure, degraded shards) sleep the policy's backoff and
/// retry; everything else — success or a terminal error — returns as-is.
/// With the default (zero-retry) policy this is exactly one attempt.
fn retry_transient<T>(
    policy: RetryPolicy,
    mut attempt_fn: impl FnMut() -> Result<T, ServiceError>,
) -> Result<T, ServiceError> {
    let mut attempt = 0u32;
    loop {
        match attempt_fn() {
            Err(ServiceError::Overloaded | ServiceError::ShardUnavailable)
                if attempt < policy.max_retries =>
            {
                attempt += 1;
                std::thread::sleep(policy.backoff_before(attempt));
            }
            outcome => return outcome,
        }
    }
}

/// A ticket that was answered at submission time (overload / shutdown
/// fail-fast paths): builds the completed oneshot pair inline.
fn settled(reply: Reply) -> Waiter<Reply> {
    let (tx, rx) = completion();
    tx.complete(reply);
    rx
}

/// A typed point-in-time health report, from
/// [`ServiceClient::health`]: which shards are degraded, how the writer
/// supervisor has been doing, and — when the client fronts a
/// [`ReplicaService`] — how far replication trails the leader.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HealthReport {
    /// Indices of shards currently [`Degraded`](crate::ShardHealth): their
    /// writer died and recovery has not succeeded (yet). Queries routing to
    /// them fail fast with [`ServiceError::ShardUnavailable`].
    pub degraded: Vec<usize>,
    /// Per-shard writer respawn count since service construction; see
    /// [`ShardedHiggs::shard_respawn_counts`]. All zeros on a replica
    /// (followers have no writers).
    pub respawn_counts: Vec<u32>,
    /// Per-shard reason the most recent recovery attempt failed; see
    /// [`ShardedHiggs::shard_recovery_errors`]. All `None` on a replica.
    pub recovery_errors: Vec<Option<String>>,
    /// How far this replica trails its leader as of the last sync —
    /// `Some` only for clients of a [`ReplicaService`].
    pub replication_lag: Option<ReplicationLag>,
    /// Why replication stopped, if it did (e.g. the leader rotated a journal
    /// under the cursor); `None` while shipping is live, and always `None`
    /// on a leader.
    pub replication_error: Option<String>,
}

/// Where a client's [`health`](ServiceClient::health) report comes from:
/// the leader's supervision state, or a replica's sync gauge. Held by `Arc`
/// so the report stays readable after the service drops.
#[derive(Clone)]
enum HealthSource {
    Leader {
        health: HealthBoard,
        respawn_attempts: Arc<Vec<AtomicU32>>,
        recovery_errors: Arc<Vec<Mutex<Option<String>>>>,
    },
    Replica {
        shards: usize,
        gauge: Arc<ReplicaGauge>,
    },
}

impl HealthSource {
    fn report(&self) -> HealthReport {
        match self {
            HealthSource::Leader {
                health,
                respawn_attempts,
                recovery_errors,
            } => {
                let shards = respawn_attempts.len();
                HealthReport {
                    degraded: (0..shards).filter(|&s| health.is_degraded(s)).collect(),
                    respawn_counts: respawn_attempts
                        .iter()
                        // ORDERING: Relaxed — a monotone diagnostic counter;
                        // see `ShardedHiggs::shard_respawn_counts`.
                        .map(|c| c.load(std::sync::atomic::Ordering::Relaxed))
                        .collect(),
                    recovery_errors: recovery_errors
                        .iter()
                        .map(|slot| slot.lock().expect("recovery error slot poisoned").clone())
                        .collect(),
                    replication_lag: None,
                    replication_error: None,
                }
            }
            HealthSource::Replica { shards, gauge } => HealthReport {
                degraded: Vec::new(),
                respawn_counts: vec![0; *shards],
                recovery_errors: vec![None; *shards],
                replication_lag: Some(*gauge.lag.lock().expect("lag gauge poisoned")),
                replication_error: gauge.error.lock().expect("error gauge poisoned").clone(),
            },
        }
    }
}

/// The single, cloneable client surface of a [`HiggsService`] or
/// [`ReplicaService`]: typed query submission with options, fallible ingest,
/// flush, and a [`health`](Self::health) probe — one handle instead of the
/// old `&ShardedHiggs` / [`IngestHandle`] / `flush()` trio.
///
/// Clones share the service's submission queue and ingest routing; handing
/// one clone to each producer/consumer thread is the intended usage. Clients
/// remain valid after the service drops: every operation then reports the
/// typed shutdown error instead of hanging. Clients of a [`ReplicaService`]
/// are **read-only**: every mutation method reports
/// [`IngestError::ReadOnly`].
#[derive(Clone)]
pub struct ServiceClient {
    submit_tx: Sender<Request>,
    /// `None` for replica clients: followers have no writers to route to.
    ingest: Option<IngestHandle>,
    health: HealthSource,
}

impl std::fmt::Debug for ServiceClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceClient")
            .field("shards", &self.num_shards())
            .field("read_only", &self.ingest.is_none())
            .finish_non_exhaustive()
    }
}

impl ServiceClient {
    /// Submits one query with default [`QueryOptions`] (no deadline,
    /// [`Priority::Normal`], read-your-writes).
    pub fn submit(&self, query: Query) -> Ticket {
        self.submit_with(query, QueryOptions::default())
    }

    /// Submits one query with explicit options.
    pub fn submit_with(&self, query: Query, options: QueryOptions) -> Ticket {
        Ticket {
            waiter: self.enqueue(vec![query], options),
        }
    }

    /// Submits a batch of queries with default options. The batch stays
    /// together: it is answered in one piece, in submission order.
    pub fn submit_batch(&self, queries: &[Query]) -> BatchTicket {
        self.submit_batch_with(queries, QueryOptions::default())
    }

    /// Submits a batch of queries with explicit options.
    pub fn submit_batch_with(&self, queries: &[Query], options: QueryOptions) -> BatchTicket {
        BatchTicket {
            waiter: self.enqueue(queries.to_vec(), options),
        }
    }

    /// Submits and enqueues, resolving the overload/shutdown fail-fast paths
    /// inline so every returned waiter is guaranteed to resolve.
    fn enqueue(&self, queries: Vec<Query>, options: QueryOptions) -> Waiter<Reply> {
        let (tx, rx) = completion();
        let submission = Submission {
            queries,
            options,
            submitted: Instant::now(),
            reply: tx,
        };
        match self.submit_tx.try_send(Request::Run(submission)) {
            Ok(()) => rx,
            Err(TrySendError::Full(_)) => settled(Err(ServiceError::Overloaded)),
            Err(TrySendError::Disconnected(_)) => settled(Err(ServiceError::Shutdown)),
        }
    }

    /// Convenience: submits one query and blocks for its result.
    pub fn query(&self, query: &Query) -> Result<Weight, ServiceError> {
        self.query_with(query, QueryOptions::default())
    }

    /// Convenience: submits a batch and blocks for its results.
    pub fn query_batch(&self, queries: &[Query]) -> Result<Vec<Weight>, ServiceError> {
        self.query_batch_with(queries, QueryOptions::default())
    }

    /// Submits one query with options and blocks, honouring
    /// [`QueryOptions::retry`]: transient failures
    /// ([`Overloaded`](ServiceError::Overloaded),
    /// [`ShardUnavailable`](ServiceError::ShardUnavailable)) are
    /// resubmitted with exponential backoff until the policy is exhausted.
    /// Terminal errors (shutdown, deadline) return immediately.
    pub fn query_with(&self, query: &Query, options: QueryOptions) -> Result<Weight, ServiceError> {
        retry_transient(options.retry, || {
            self.submit_with(query.clone(), options).wait()
        })
    }

    /// Batch counterpart of [`query_with`](Self::query_with): each retry
    /// resubmits the whole batch (batches are answered atomically, so no
    /// partial results survive a failed attempt).
    pub fn query_batch_with(
        &self,
        queries: &[Query],
        options: QueryOptions,
    ) -> Result<Vec<Weight>, ServiceError> {
        retry_transient(options.retry, || {
            self.submit_batch_with(queries, options).wait()
        })
    }

    /// The ingest routing table, or the typed refusal on a read-only
    /// replica client.
    fn writable(&self) -> Result<&IngestHandle, IngestError> {
        self.ingest.as_ref().ok_or(IngestError::ReadOnly)
    }

    /// Enqueues one stream item (blocking for queue space when the ingest
    /// queues are bounded); see [`IngestHandle::insert`]. Replica clients
    /// report [`IngestError::ReadOnly`].
    pub fn insert(&self, edge: &StreamEdge) -> Result<(), IngestError> {
        self.writable()?.insert(edge)
    }

    /// Enqueues a slice of stream items in arrival order; see
    /// [`IngestHandle::insert_all`].
    pub fn insert_all(&self, edges: &[StreamEdge]) -> Result<(), IngestError> {
        self.writable()?.insert_all(edges)
    }

    /// Enqueues a deletion; see [`IngestHandle::delete`].
    pub fn delete(&self, edge: &StreamEdge) -> Result<(), IngestError> {
        self.writable()?.delete(edge)
    }

    /// Non-blocking insert, reporting [`IngestError::QueueFull`] instead of
    /// waiting; see [`IngestHandle::try_insert`].
    pub fn try_insert(&self, edge: &StreamEdge) -> Result<(), IngestError> {
        self.writable()?.try_insert(edge)
    }

    /// Non-blocking delete; see [`IngestHandle::try_delete`].
    pub fn try_delete(&self, edge: &StreamEdge) -> Result<(), IngestError> {
        self.writable()?.try_delete(edge)
    }

    /// Blocks until every mutation enqueued before this call (by any client
    /// clone) is applied and aggregated; see [`IngestHandle::flush`]. A
    /// no-op on a replica client (followers have nothing local to flush —
    /// freshness comes from the sync loop).
    pub fn flush(&self) {
        if let Some(ingest) = &self.ingest {
            ingest.flush();
        }
    }

    /// Number of shards behind this client.
    pub fn num_shards(&self) -> usize {
        match (&self.ingest, &self.health) {
            (Some(ingest), _) => ingest.num_shards(),
            (None, HealthSource::Replica { shards, .. }) => *shards,
            (
                None,
                HealthSource::Leader {
                    respawn_attempts, ..
                },
            ) => respawn_attempts.len(),
        }
    }

    /// A typed point-in-time health report: degraded shards, writer respawn
    /// counts and recovery errors (leader), and replication lag / the reason
    /// shipping stopped (replica). Cheap, lock-light, and still answerable
    /// after the service drops.
    pub fn health(&self) -> HealthReport {
        self.health.report()
    }
}

/// The serving front-end: owns a [`ShardedHiggs`], its admission thread and
/// its per-shard evaluation workers, and hands out [`ServiceClient`]s.
///
/// ```
/// use higgs::{HiggsConfig, HiggsService};
/// use higgs_common::{Query, StreamEdge, TimeRange};
///
/// let config = HiggsConfig::builder().shards(2).build().expect("valid");
/// let service = HiggsService::new(config);
/// let client = service.client();
/// client.insert(&StreamEdge::new(1, 2, 5, 10)).expect("live service");
/// // Read-your-writes: the submitted query sees the enqueued edge.
/// let ticket = client.submit(Query::edge(1, 2, TimeRange::new(0, 20)));
/// assert_eq!(ticket.wait(), Ok(5));
/// ```
///
/// Dropping the service shuts it down: queued submissions complete with
/// [`ServiceError::Shutdown`], the admission and worker threads join, and
/// the inner [`ShardedHiggs`]'s writer threads join after them (so
/// [`live_writer_threads`](crate::shard::live_writer_threads) returns to zero).
/// Surviving [`ServiceClient`] clones stay safe to use and report typed
/// shutdown errors.
pub struct HiggsService {
    /// Held only for its drop: declared before `inner` so the
    /// admission/worker threads (which hold pipeline references and an
    /// ingest handle) are joined before the shard writers are.
    _executor: reactor::Executor,
    submit_tx: Sender<Request>,
    inner: ShardedHiggs,
}

impl std::fmt::Debug for HiggsService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HiggsService")
            .field("shards", &self.inner.num_shards())
            .finish_non_exhaustive()
    }
}

impl HiggsService {
    /// Creates a serving front-end over a fresh [`ShardedHiggs`] built from
    /// `config`. Panics on an invalid configuration; use
    /// [`try_new`](Self::try_new) for fallible construction.
    pub fn new(config: HiggsConfig) -> Self {
        Self::try_new(config).expect("invalid HiggsConfig")
    }

    /// Creates a serving front-end, returning the violated constraint
    /// instead of panicking when the configuration is invalid.
    pub fn try_new(config: HiggsConfig) -> Result<Self, ConfigError> {
        let inner = ShardedHiggs::try_new(config)?;
        Self::wrap(inner, &config)
    }

    /// Wraps an existing [`ShardedHiggs`] (e.g. one restored from a
    /// snapshot) in a serving front-end, taking the admission-tick and
    /// queue-depth knobs from `config`.
    pub fn wrap(inner: ShardedHiggs, config: &HiggsConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let (submit_tx, submit_rx) = match config.service_queue_depth {
            Some(depth) => bounded::<Request>(depth),
            None => unbounded::<Request>(),
        };
        let mut executor = reactor::Executor::new("higgs-serve");
        let mut job_txs = Vec::with_capacity(inner.num_shards());
        for (s, pipeline) in inner.shard_pipelines().iter().enumerate() {
            let (tx, rx) = unbounded::<ShardJob>();
            let pipeline = pipeline.clone();
            executor.spawn(&format!("shard{s}"), move || {
                shard_worker_loop(pipeline, rx)
            });
            job_txs.push(tx);
        }
        let admission = AdmissionLoop {
            submit_rx,
            job_txs,
            ingest: Some(inner.ingest_handle()),
            tick: config.admission_tick,
            health: Some(inner.health_board()),
        };
        executor.spawn("admission", move || admission.run());
        Ok(Self {
            _executor: executor,
            submit_tx,
            inner,
        })
    }

    /// A new cloneable client handle onto this service.
    pub fn client(&self) -> ServiceClient {
        let (respawn_attempts, recovery_errors) = self.inner.supervision_state();
        ServiceClient {
            submit_tx: self.submit_tx.clone(),
            ingest: Some(self.inner.ingest_handle()),
            health: HealthSource::Leader {
                health: self.inner.health_board(),
                respawn_attempts,
                recovery_errors,
            },
        }
    }

    /// The wrapped summary, for surfaces the client API does not cover
    /// (snapshotting, diagnostics, direct batch evaluation).
    pub fn summary(&self) -> &ShardedHiggs {
        &self.inner
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.inner.num_shards()
    }

    /// Number of query plans (boundary searches) built across all shards;
    /// see [`ShardedHiggs::plans_built`].
    pub fn plans_built(&self) -> u64 {
        self.inner.plans_built()
    }

    /// Resets the plan counter on every shard (diagnostic hook).
    pub fn reset_plan_count(&self) {
        self.inner.reset_plan_count();
    }

    /// Total number of stream items currently held; see
    /// [`ShardedHiggs::total_items`].
    pub fn total_items(&self) -> u64 {
        self.inner.total_items()
    }

    /// Blocks until every enqueued mutation is applied and aggregated.
    pub fn flush(&self) {
        self.inner.flush();
    }
}

impl Drop for HiggsService {
    fn drop(&mut self) {
        // The Shutdown marker makes the admission loop fail everything still
        // queued and exit; its exit drops the per-shard job senders, ending
        // the workers; the executor (field order) joins all of them before
        // `inner` joins the shard writers.
        let _ = self.submit_tx.send(Request::Shutdown);
    }
}

/// Shared between a [`ReplicaService`]'s sync thread and its clients: the
/// last observed lag, the reason shipping stopped (if it did), and the
/// condvar-guarded stop flag the service's drop uses to end the sync loop
/// without waiting out its interval.
struct ReplicaGauge {
    lag: Mutex<ReplicationLag>,
    error: Mutex<Option<String>>,
    stop: Mutex<bool>,
    wake: Condvar,
}

impl ReplicaGauge {
    fn new() -> Self {
        ReplicaGauge {
            lag: Mutex::new(ReplicationLag::default()),
            error: Mutex::new(None),
            stop: Mutex::new(false),
            wake: Condvar::new(),
        }
    }

    /// Sleeps out (up to) one sync interval; returns `true` when the service
    /// is shutting down — immediately if the stop flag was already raised.
    fn wait_stop(&self, interval: Duration) -> bool {
        let mut stopped = self.stop.lock().expect("replica stop flag poisoned");
        while !*stopped {
            let (guard, timeout) = self
                .wake
                .wait_timeout(stopped, interval)
                .expect("replica stop flag poisoned");
            stopped = guard;
            if timeout.timed_out() {
                return *stopped;
            }
        }
        true
    }

    fn raise_stop(&self) {
        *self.stop.lock().expect("replica stop flag poisoned") = true;
        self.wake.notify_all();
    }
}

/// The replica sync thread: owns the [`Follower`], ships journal segments
/// every `interval`, and publishes the post-sync lag. A sync failure (e.g.
/// the leader rotated a journal under the cursor) is terminal for shipping —
/// the error is published for [`ServiceClient::health`] and the replica
/// keeps serving its last synced state.
fn replica_sync_loop(mut follower: Follower, gauge: Arc<ReplicaGauge>, interval: Duration) {
    loop {
        let outcome = follower.sync().and_then(|_| follower.replication_lag());
        match outcome {
            Ok(lag) => *gauge.lag.lock().expect("lag gauge poisoned") = lag,
            Err(e) => {
                *gauge.error.lock().expect("error gauge poisoned") = Some(e.to_string());
                return;
            }
        }
        if gauge.wait_stop(interval) {
            return;
        }
    }
}

/// Read-replica fan-out: the serving front-end over a [`Follower`].
///
/// Wraps the follower's pipelines in the same per-shard evaluation workers
/// and admission loop as a [`HiggsService`] — coalesced plans, priorities,
/// deadlines, backpressure — while a dedicated sync thread keeps shipping
/// the leader's journal segments in the background. Clients
/// ([`client`](Self::client)) are **read-only**: every mutation method
/// reports [`IngestError::ReadOnly`], and
/// [`Consistency::ReadYourWrites`] degrades to reading the last completed
/// sync (there are no local writes to wait for).
///
/// Promotion is not served from here: a followed replica's pipelines are
/// shared with live query workers, so promote a bare [`Follower`]
/// ([`Follower::promote`]) instead — typically a fresh one bootstrapped
/// after the leader's crash.
///
/// Dropping the service stops the sync thread (without waiting out its
/// interval), fails queued submissions with [`ServiceError::Shutdown`], and
/// joins every thread. Surviving clients stay safe and report typed errors.
pub struct ReplicaService {
    /// Declared first so the admission/worker/sync threads join before the
    /// rest of the state drops.
    _executor: reactor::Executor,
    submit_tx: Sender<Request>,
    shards: usize,
    gauge: Arc<ReplicaGauge>,
}

impl std::fmt::Debug for ReplicaService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaService")
            .field("shards", &self.shards)
            .finish_non_exhaustive()
    }
}

impl ReplicaService {
    /// The default journal-shipping cadence of [`follow`](Self::follow).
    pub const DEFAULT_SYNC_INTERVAL: Duration = Duration::from_millis(1);

    /// Serves `follower` read-only, syncing it every
    /// [`DEFAULT_SYNC_INTERVAL`](Self::DEFAULT_SYNC_INTERVAL). The
    /// admission-tick and queue-depth knobs come from `config` (shard count
    /// comes from the follower itself).
    pub fn follow(follower: Follower, config: &HiggsConfig) -> Result<Self, ConfigError> {
        Self::follow_with_sync_interval(follower, config, Self::DEFAULT_SYNC_INTERVAL)
    }

    /// [`follow`](Self::follow) with an explicit shipping cadence: shorter
    /// intervals lower replication lag, longer ones lower the idle cost of
    /// scanning unchanged journals.
    pub fn follow_with_sync_interval(
        follower: Follower,
        config: &HiggsConfig,
        interval: Duration,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        let shards = follower.num_shards();
        let (submit_tx, submit_rx) = match config.service_queue_depth {
            Some(depth) => bounded::<Request>(depth),
            None => unbounded::<Request>(),
        };
        let mut executor = reactor::Executor::new("higgs-replica");
        let mut job_txs = Vec::with_capacity(shards);
        for (s, pipeline) in follower.shard_pipelines().iter().enumerate() {
            let (tx, rx) = unbounded::<ShardJob>();
            let pipeline = pipeline.clone();
            executor.spawn(&format!("shard{s}"), move || {
                shard_worker_loop(pipeline, rx)
            });
            job_txs.push(tx);
        }
        let admission = AdmissionLoop {
            submit_rx,
            job_txs,
            ingest: None,
            tick: config.admission_tick,
            health: None,
        };
        executor.spawn("admission", move || admission.run());
        let gauge = Arc::new(ReplicaGauge::new());
        let sync_gauge = gauge.clone();
        executor.spawn("replica-sync", move || {
            replica_sync_loop(follower, sync_gauge, interval)
        });
        Ok(Self {
            _executor: executor,
            submit_tx,
            shards,
            gauge,
        })
    }

    /// A new cloneable **read-only** client handle onto this replica.
    pub fn client(&self) -> ServiceClient {
        ServiceClient {
            submit_tx: self.submit_tx.clone(),
            ingest: None,
            health: HealthSource::Replica {
                shards: self.shards,
                gauge: self.gauge.clone(),
            },
        }
    }

    /// How far this replica trailed its leader at the end of the most recent
    /// sync; see [`Follower::replication_lag`]. Also available from any
    /// client via [`ServiceClient::health`].
    pub fn replication_lag(&self) -> ReplicationLag {
        *self.gauge.lag.lock().expect("lag gauge poisoned")
    }

    /// Number of shards this replica serves.
    pub fn num_shards(&self) -> usize {
        self.shards
    }
}

impl Drop for ReplicaService {
    fn drop(&mut self) {
        // Wake the sync thread out of its interval sleep and post the
        // shutdown marker; the executor (field order) then joins the sync,
        // admission, and worker threads.
        self.gauge.raise_stop();
        let _ = self.submit_tx.send(Request::Shutdown);
    }
}

/// State owned by the admission thread.
struct AdmissionLoop {
    submit_rx: Receiver<Request>,
    job_txs: Vec<Sender<ShardJob>>,
    /// `None` on a replica: there is no local ingest to make visible, so
    /// read-your-writes consistency degrades to read-latest-sync.
    ingest: Option<IngestHandle>,
    tick: Duration,
    /// Shared writer-health board: classes routed at a degraded shard fail
    /// fast with [`ServiceError::ShardUnavailable`] instead of hanging on a
    /// shard whose writer died. `None` on a replica (no writers to degrade).
    health: Option<HealthBoard>,
}

impl AdmissionLoop {
    fn run(self) {
        loop {
            // Block for the first submission of the tick.
            let first = match self.submit_rx.recv() {
                Ok(request) => request,
                // Every sender (service + clients) is gone: nothing can
                // ever arrive again.
                Err(_) => return,
            };
            let mut admitted = Vec::new();
            let mut shutdown = false;
            match first {
                Request::Shutdown => shutdown = true,
                Request::Run(submission) => admitted.push(submission),
            }
            // Hold the tick open so concurrent clients coalesce, then drain
            // whatever else is already queued.
            if !shutdown && !self.tick.is_zero() {
                shutdown = self.hold_tick_open(&mut admitted);
            }
            if !shutdown {
                shutdown = self.drain_queued(&mut admitted);
            }
            // Evaluate everything admitted before the shutdown marker (their
            // tickets are owed an answer), then fail the rest and exit.
            self.evaluate_tick(admitted);
            if shutdown {
                self.fail_remaining();
                return;
            }
        }
    }

    /// Waits out the admission tick, admitting everything that arrives.
    /// Returns `true` if a shutdown marker arrived.
    fn hold_tick_open(&self, admitted: &mut Vec<Submission>) -> bool {
        let tick_ends = Instant::now() + self.tick;
        loop {
            let Some(remaining) = tick_ends.checked_duration_since(Instant::now()) else {
                return false;
            };
            match self.submit_rx.recv_timeout(remaining) {
                Ok(Request::Run(submission)) => admitted.push(submission),
                Ok(Request::Shutdown) => return true,
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => return false,
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return false,
            }
        }
    }

    /// Drains submissions already sitting in the queue without waiting.
    /// Returns `true` if a shutdown marker arrived.
    fn drain_queued(&self, admitted: &mut Vec<Submission>) -> bool {
        while let Ok(request) = self.submit_rx.try_recv() {
            match request {
                Request::Run(submission) => admitted.push(submission),
                Request::Shutdown => return true,
            }
        }
        false
    }

    /// Fails everything still queued with [`ServiceError::Shutdown`].
    /// Dropping each completer would resolve the tickets identically, but
    /// completing explicitly keeps the typed error on the normal path.
    fn fail_remaining(&self) {
        while let Ok(request) = self.submit_rx.try_recv() {
            if let Request::Run(submission) = request {
                submission.reply.complete(Err(ServiceError::Shutdown));
            }
        }
    }

    /// Evaluates one admitted tick: group by priority class, then per class
    /// expire deadlines, honour consistency, and run one coalesced
    /// [`ShardPlan`] over the per-shard workers.
    fn evaluate_tick(&self, admitted: Vec<Submission>) {
        if admitted.is_empty() {
            return;
        }
        let mut classes: [Vec<Submission>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for submission in admitted {
            let class = match submission.options.priority {
                Priority::Interactive => 0,
                Priority::Normal => 1,
                Priority::Bulk => 2,
            };
            classes[class].push(submission);
        }
        for class in classes {
            self.evaluate_class(class);
        }
    }

    /// Evaluates one priority class of a tick as a single coalesced plan.
    fn evaluate_class(&self, submissions: Vec<Submission>) {
        // Deadline expiry: measured against admission start, i.e. the moment
        // evaluation could begin.
        let now = Instant::now();
        let mut live = Vec::with_capacity(submissions.len());
        for submission in submissions {
            let expired = submission
                .options
                .deadline
                .is_some_and(|d| now.duration_since(submission.submitted) >= d);
            if expired {
                submission
                    .reply
                    .complete(Err(ServiceError::DeadlineExceeded));
            } else {
                live.push(submission);
            }
        }
        if live.is_empty() {
            return;
        }
        // Coalesce: one concatenated batch, one plan, one columnar
        // sub-batch per shard. Cross-client duplicate windows now share
        // boundary searches exactly like duplicates within one batch.
        let mut offsets = Vec::with_capacity(live.len() + 1);
        offsets.push(0);
        let mut coalesced: Vec<Query> = Vec::new();
        for submission in &live {
            coalesced.extend(submission.queries.iter().cloned());
            offsets.push(coalesced.len());
        }
        let shards = self.job_txs.len();
        let plan = ShardPlan::build(&coalesced, shards);
        // Degraded fast-fail, checked *before* the consistency flush: a
        // flush would block on the dead writer's queue, and a degraded
        // shard's state may be behind its acknowledged writes anyway. The
        // whole class fails together — it coalesced into one plan, and
        // answering only the healthy shards' slice would silently violate
        // the batch-is-atomic contract of [`BatchTicket::wait`].
        if self.health.as_ref().is_some_and(|health| {
            (0..shards).any(|s| !plan.sub_batch(s).is_empty() && health.is_degraded(s))
        }) {
            for submission in live {
                submission
                    .reply
                    .complete(Err(ServiceError::ShardUnavailable));
            }
            return;
        }
        // One flush covers the whole class; an all-Relaxed class skips it —
        // this is the "jump ahead of ingest flushes" path for interactive
        // traffic.
        if let Some(ingest) = &self.ingest {
            if live
                .iter()
                .any(|s| s.options.consistency == Consistency::ReadYourWrites)
            {
                ingest.ensure_visible();
            }
        }
        let mut pending = Vec::with_capacity(shards);
        for (s, job_tx) in self.job_txs.iter().enumerate() {
            let sub = plan.sub_batch(s);
            if sub.is_empty() {
                pending.push(None);
                continue;
            }
            let (tx, rx) = completion();
            if job_tx
                .send(ShardJob {
                    sub: sub.to_vec(),
                    reply: tx,
                })
                .is_err()
            {
                // A worker vanished (only possible mid-teardown): every
                // submission of the class still gets a typed answer.
                for submission in live {
                    submission.reply.complete(Err(ServiceError::Shutdown));
                }
                return;
            }
            pending.push(Some(rx));
        }
        let mut per_shard = Vec::with_capacity(shards);
        for waiter in pending {
            match waiter {
                None => per_shard.push(Vec::new()),
                Some(waiter) => match waiter.wait() {
                    Ok(results) => per_shard.push(results),
                    Err(_) => {
                        for submission in live {
                            submission.reply.complete(Err(ServiceError::Shutdown));
                        }
                        return;
                    }
                },
            }
        }
        let gathered = plan.gather(&per_shard);
        for (i, submission) in live.into_iter().enumerate() {
            let slice = gathered[offsets[i]..offsets[i + 1]].to_vec();
            submission.reply.complete(Ok(slice));
        }
    }
}

/// One shard's evaluation worker: drains its request queue, evaluating each
/// coalesced sub-batch through the shard's plan-sharing executor under the
/// shard read lock. Exits when the admission loop (the only sender) drops
/// the queue.
fn shard_worker_loop(
    pipeline: std::sync::Arc<std::sync::RwLock<crate::parallel::ParallelHiggs>>,
    rx: Receiver<ShardJob>,
) {
    while let Ok(job) = rx.recv() {
        let results = pipeline
            .read()
            .expect("shard lock poisoned")
            .query_batch(&job.sub);
        job.reply.complete(results);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::live_writer_threads;
    use higgs_common::{TemporalGraphSummary, TimeRange};

    fn service(shards: usize) -> HiggsService {
        HiggsService::new(
            HiggsConfig::builder()
                .shards(shards)
                .build()
                .expect("valid test configuration"),
        )
    }

    fn edges(n: u64) -> Vec<StreamEdge> {
        (0..n)
            .map(|i| StreamEdge::new(i % 100, (i * 7) % 100, 1 + i % 3, i / 2))
            .collect()
    }

    #[test]
    fn single_query_round_trip_is_read_your_writes() {
        let service = service(2);
        let client = service.client();
        client.insert(&StreamEdge::new(1, 2, 5, 10)).expect("live");
        assert_eq!(
            client.query(&Query::edge(1, 2, TimeRange::new(0, 20))),
            Ok(5)
        );
        client.insert(&StreamEdge::new(1, 2, 3, 11)).expect("live");
        assert_eq!(
            client.query(&Query::edge(1, 2, TimeRange::new(0, 20))),
            Ok(8)
        );
    }

    #[test]
    fn served_batch_matches_direct_query_batch() {
        let stream = edges(3_000);
        let service = service(4);
        let client = service.client();
        client.insert_all(&stream).expect("live service");
        let mut direct = ShardedHiggs::new(
            HiggsConfig::builder()
                .shards(4)
                .build()
                .expect("valid configuration"),
        );
        direct.insert_all(&stream);
        let batch: Vec<Query> = vec![
            Query::edge(1, 7, TimeRange::new(0, 800)),
            Query::vertex(
                3,
                higgs_common::VertexDirection::Out,
                TimeRange::new(0, 400),
            ),
            Query::vertex(3, higgs_common::VertexDirection::In, TimeRange::new(0, 400)),
            Query::path(vec![1, 7, 49], TimeRange::new(0, 800)),
            Query::subgraph(vec![(2, 14), (3, 21)], TimeRange::new(100, 900)),
        ];
        assert_eq!(
            client.query_batch(&batch),
            Ok(direct.query_batch(&batch)),
            "served results must be bit-identical to the unserved service"
        );
    }

    #[test]
    fn concurrent_clients_coalesce_into_shared_plans() {
        let service = service(4);
        let seed = service.client();
        seed.insert_all(&edges(4_000)).expect("live service");
        seed.flush();
        let windows: Vec<TimeRange> = (0..16)
            .map(|w| TimeRange::new(w * 50, w * 50 + 400))
            .collect();
        // Warm every (shard, window) plan once.
        let warmup: Vec<Query> = windows.iter().map(|&w| Query::edge(1, 7, w)).collect();
        seed.query_batch(&warmup).expect("warm-up batch");
        service.reset_plan_count();
        // 128 concurrent clients, each submitting one query over one of the
        // 16 shared windows: a warm tick must not build more plans than
        // there are distinct windows (the acceptance bound), and with warm
        // caches it builds none at all.
        let tickets: Vec<Ticket> = (0..128)
            .map(|i| {
                let client = service.client();
                client.submit(Query::edge(1, 7, windows[i % windows.len()]))
            })
            .collect();
        for ticket in tickets {
            ticket.wait().expect("live service");
        }
        let plans = service.plans_built();
        assert!(
            plans <= windows.len() as u64,
            "{plans} plans built for {} shared windows across 128 clients",
            windows.len()
        );
    }

    #[test]
    fn zero_deadline_expires_deterministically() {
        let service = service(2);
        let client = service.client();
        client.insert(&StreamEdge::new(1, 2, 5, 10)).expect("live");
        let ticket = client.submit_with(
            Query::edge(1, 2, TimeRange::all()),
            QueryOptions::new().deadline(Duration::ZERO),
        );
        assert_eq!(ticket.wait(), Err(ServiceError::DeadlineExceeded));
        // A generous deadline passes untouched.
        let ticket = client.submit_with(
            Query::edge(1, 2, TimeRange::all()),
            QueryOptions::new().deadline(Duration::from_secs(3600)),
        );
        assert_eq!(ticket.wait(), Ok(5));
    }

    #[test]
    fn priority_classes_and_relaxed_consistency_are_accepted() {
        let service = service(2);
        let client = service.client();
        client.insert_all(&edges(500)).expect("live service");
        let interactive = client.submit_with(
            Query::edge(1, 8, TimeRange::all()),
            QueryOptions::interactive(),
        );
        let bulk =
            client.submit_batch_with(&[Query::edge(1, 8, TimeRange::all())], QueryOptions::bulk());
        let normal = client.submit(Query::edge(1, 8, TimeRange::all()));
        let expected = normal.wait().expect("live service");
        // Relaxed interactive reads may lag ingest but here everything is
        // flushed by the normal read, so all classes agree.
        assert_eq!(interactive.wait(), Ok(expected));
        assert_eq!(bulk.wait(), Ok(vec![expected]));
    }

    #[test]
    fn bounded_submission_queue_reports_overload() {
        let config = HiggsConfig::builder()
            .shards(1)
            .service_queue_depth(1)
            .build()
            .expect("valid configuration");
        let service = HiggsService::new(config);
        let client = service.client();
        client.insert_all(&edges(20_000)).expect("live service");
        // Stall admission behind heavy read-your-writes batches, then spam
        // the depth-1 queue faster than ticks can close: at least one
        // submission must fail fast with Overloaded.
        let heavy: Vec<Query> = (0..256)
            .map(|i| Query::edge(i % 100, (i * 7) % 100, TimeRange::new(i, i + 5_000)))
            .collect();
        let mut tickets = Vec::new();
        let mut overloaded = 0usize;
        for _ in 0..512 {
            let ticket = client.submit_batch(&heavy);
            match ticket.try_wait() {
                Some(Err(ServiceError::Overloaded)) => overloaded += 1,
                _ => tickets.push(ticket),
            }
        }
        assert!(
            overloaded > 0,
            "a depth-1 queue under a tight submission loop must shed load"
        );
        // Everything that was admitted still resolves with a result.
        for ticket in tickets {
            ticket.wait().expect("admitted batches must complete");
        }
    }

    #[test]
    fn shutdown_resolves_in_flight_tickets_and_joins_writers() {
        let before = live_writer_threads();
        let service = service(2);
        let client = service.client();
        client.insert_all(&edges(2_000)).expect("live service");
        let in_flight: Vec<BatchTicket> = (0..64)
            .map(|i| {
                client.submit_batch(&[Query::edge(i % 50, (i * 7) % 100, TimeRange::new(0, 900))])
            })
            .collect();
        drop(service);
        // Every ticket resolves: a result (admitted before the shutdown
        // marker) or the typed shutdown error — never a hang.
        for ticket in in_flight {
            match ticket.wait() {
                Ok(results) => assert_eq!(results.len(), 1),
                Err(e) => assert_eq!(e, ServiceError::Shutdown),
            }
        }
        assert_eq!(
            live_writer_threads(),
            before,
            "service teardown must join the shard writer threads"
        );
        // Orphaned clients fail fast with typed errors on every surface.
        assert_eq!(
            client.query(&Query::edge(1, 2, TimeRange::all())),
            Err(ServiceError::Shutdown)
        );
        assert_eq!(
            client.insert(&StreamEdge::new(1, 2, 1, 1)),
            Err(IngestError::Shutdown)
        );
    }

    #[test]
    fn admission_tick_coalesces_without_changing_results() {
        let config = HiggsConfig::builder()
            .shards(2)
            .admission_tick(Duration::from_millis(2))
            .build()
            .expect("valid configuration");
        let service = HiggsService::new(config);
        let client = service.client();
        client.insert_all(&edges(1_000)).expect("live service");
        let tickets: Vec<Ticket> = (0..32)
            .map(|i| client.submit(Query::edge(i % 50, (i * 7) % 100, TimeRange::all())))
            .collect();
        let served: Vec<Weight> = tickets
            .into_iter()
            .map(|t| t.wait().expect("live service"))
            .collect();
        let direct: Vec<Weight> = (0..32)
            .map(|i| {
                service
                    .summary()
                    .query(&Query::edge(i % 50, (i * 7) % 100, TimeRange::all()))
            })
            .collect();
        assert_eq!(served, direct);
    }

    #[test]
    fn empty_batch_resolves_immediately() {
        let service = service(2);
        let client = service.client();
        assert_eq!(client.query_batch(&[]), Ok(Vec::new()));
    }

    #[test]
    fn service_error_messages_name_the_cause() {
        for (err, needle) in [
            (ServiceError::Shutdown, "shut down"),
            (ServiceError::DeadlineExceeded, "deadline"),
            (ServiceError::Overloaded, "overloaded"),
            (ServiceError::ShardUnavailable, "unavailable"),
        ] {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} missing {needle:?}");
        }
        let boxed: Box<dyn std::error::Error> = Box::new(ServiceError::Overloaded);
        assert!(boxed.to_string().contains("backpressure"));
    }

    #[test]
    fn retry_transient_resubmits_until_success_or_exhaustion() {
        use std::cell::Cell;
        let zero = RetryPolicy::retries(5).base_backoff(Duration::ZERO);
        // Transient failures burn retries, then the first success wins.
        let attempts = Cell::new(0u32);
        let outcome = retry_transient(zero, || {
            attempts.set(attempts.get() + 1);
            if attempts.get() < 3 {
                Err(ServiceError::ShardUnavailable)
            } else {
                Ok(42u32)
            }
        });
        assert_eq!(outcome, Ok(42));
        assert_eq!(attempts.get(), 3);
        // An exhausted policy surfaces the transient error.
        let attempts = Cell::new(0u32);
        let outcome = retry_transient(RetryPolicy::retries(2).base_backoff(Duration::ZERO), || {
            attempts.set(attempts.get() + 1);
            Err::<(), _>(ServiceError::Overloaded)
        });
        assert_eq!(outcome, Err(ServiceError::Overloaded));
        assert_eq!(attempts.get(), 3, "initial attempt + 2 retries");
        // Terminal errors never retry.
        let attempts = Cell::new(0u32);
        let outcome = retry_transient(zero, || {
            attempts.set(attempts.get() + 1);
            Err::<(), _>(ServiceError::Shutdown)
        });
        assert_eq!(outcome, Err(ServiceError::Shutdown));
        assert_eq!(attempts.get(), 1);
    }

    #[test]
    fn query_with_retry_options_round_trips_and_stays_fail_fast_on_shutdown() {
        let service = service(2);
        let client = service.client();
        client.insert(&StreamEdge::new(1, 2, 5, 10)).expect("live");
        let opts = QueryOptions::new().retry(RetryPolicy::retries(3));
        assert_eq!(
            client.query_with(&Query::edge(1, 2, TimeRange::new(0, 20)), opts),
            Ok(5)
        );
        assert_eq!(
            client.query_batch_with(&[Query::edge(1, 2, TimeRange::new(0, 20))], opts),
            Ok(vec![5])
        );
        // Shutdown is terminal: an orphaned client with retries enabled
        // still fails fast instead of burning the whole backoff schedule.
        drop(service);
        assert_eq!(
            client.query_with(&Query::edge(1, 2, TimeRange::all()), opts),
            Err(ServiceError::Shutdown)
        );
    }

    #[test]
    fn client_handles_are_send_sync_and_clone() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HiggsService>();
        assert_send_sync::<ServiceClient>();
        assert_send_sync::<Ticket>();
        assert_send_sync::<BatchTicket>();
        let service = service(1);
        let a = service.client();
        let b = a.clone();
        a.insert(&StreamEdge::new(1, 2, 4, 1)).expect("live");
        assert_eq!(b.query(&Query::edge(1, 2, TimeRange::all())), Ok(4));
    }

    #[test]
    fn invalid_config_is_rejected_before_any_thread_spawns() {
        let mut bad = HiggsConfig::paper_default();
        bad.shards = 0;
        assert!(HiggsService::try_new(bad).is_err());
        let before = live_writer_threads();
        assert_eq!(live_writer_threads(), before);
    }
}
