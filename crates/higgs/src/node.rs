//! Tree nodes of the HIGGS hierarchy: leaf nodes holding temporal compressed
//! matrices (plus optional overflow blocks) and internal nodes holding the
//! aggregated, timestamp-free matrices of complete θ-child groups.

use crate::matrix::CompressedMatrix;
use crate::overflow::OverflowChain;
use higgs_common::{TimeRange, Timestamp};

/// A leaf node: one temporal compressed matrix covering a contiguous slice of
/// the stream, plus the overflow blocks that absorbed same-timestamp bursts.
#[derive(Clone, Debug)]
pub struct LeafNode {
    /// The leaf's compressed matrix (entries carry time offsets).
    pub matrix: CompressedMatrix,
    /// Overflow blocks chained to this leaf (empty when the optimisation is
    /// disabled or never needed).
    pub overflow: OverflowChain,
    /// Timestamp of the first edge stored in this leaf; offsets are relative
    /// to it.
    pub start_time: Timestamp,
    /// Timestamp of the last edge stored in this leaf.
    pub end_time: Timestamp,
    /// Number of stream items absorbed by this leaf (matrix + overflow).
    pub items: u64,
}

impl LeafNode {
    /// Creates an empty leaf starting at `start_time`.
    pub fn new(matrix: CompressedMatrix, overflow: OverflowChain, start_time: Timestamp) -> Self {
        Self {
            matrix,
            overflow,
            start_time,
            end_time: start_time,
            items: 0,
        }
    }

    /// The inclusive time range covered by this leaf.
    #[inline]
    pub fn time_range(&self) -> TimeRange {
        TimeRange::new(self.start_time, self.end_time)
    }

    /// Converts an absolute timestamp into this leaf's stored offset
    /// (clamped at `u32::MAX`; offsets are bounded by the leaf's small time
    /// span in practice).
    #[inline]
    pub fn offset_of(&self, t: Timestamp) -> u32 {
        t.saturating_sub(self.start_time).min(u64::from(u32::MAX)) as u32
    }

    /// Converts an absolute query range into an offset filter for this leaf,
    /// or `None` if the range does not overlap the leaf at all.
    #[inline]
    pub fn offset_filter(&self, range: TimeRange) -> Option<(u32, u32)> {
        let overlap = range.intersect(&self.time_range())?;
        Some((self.offset_of(overlap.start), self.offset_of(overlap.end)))
    }

    /// Memory footprint in bytes.
    pub fn space_bytes(&self) -> usize {
        self.matrix.space_bytes() + self.overflow.space_bytes() + std::mem::size_of::<Self>()
            - std::mem::size_of::<CompressedMatrix>()
            - std::mem::size_of::<OverflowChain>()
    }
}

/// An internal node: the aggregated matrix of one complete group of θ
/// children, covering their combined time range.
#[derive(Clone, Debug)]
pub struct InternalNode {
    /// The aggregated (timestamp-free) matrix, present once the node's child
    /// group is complete and aggregation has run. `None` while aggregation is
    /// deferred (parallel pipeline).
    pub matrix: Option<CompressedMatrix>,
    /// First timestamp covered by the node's subtree.
    pub start_time: Timestamp,
    /// Last timestamp covered by the node's subtree.
    pub end_time: Timestamp,
}

impl InternalNode {
    /// The inclusive time range covered by this node's subtree.
    pub fn time_range(&self) -> TimeRange {
        TimeRange::new(self.start_time, self.end_time)
    }

    /// Memory footprint in bytes.
    pub fn space_bytes(&self) -> usize {
        self.matrix
            .as_ref()
            .map(CompressedMatrix::space_bytes)
            .unwrap_or(0)
            + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf() -> LeafNode {
        LeafNode::new(
            CompressedMatrix::new(8, 1, 3, 4),
            OverflowChain::new(4, 3, 4),
            100,
        )
    }

    #[test]
    fn time_range_and_offsets() {
        let mut l = leaf();
        l.end_time = 150;
        assert_eq!(l.time_range(), TimeRange::new(100, 150));
        assert_eq!(l.offset_of(100), 0);
        assert_eq!(l.offset_of(140), 40);
        assert_eq!(l.offset_of(50), 0, "pre-start timestamps clamp to zero");
    }

    #[test]
    fn offset_filter_clips_to_leaf_range() {
        let mut l = leaf();
        l.end_time = 150;
        assert_eq!(l.offset_filter(TimeRange::new(0, 1000)), Some((0, 50)));
        assert_eq!(l.offset_filter(TimeRange::new(120, 130)), Some((20, 30)));
        assert_eq!(l.offset_filter(TimeRange::new(0, 99)), None);
        assert_eq!(l.offset_filter(TimeRange::new(151, 300)), None);
    }

    #[test]
    fn internal_node_range_and_space() {
        let node = InternalNode {
            matrix: None,
            start_time: 5,
            end_time: 25,
        };
        assert_eq!(node.time_range(), TimeRange::new(5, 25));
        assert!(node.space_bytes() >= std::mem::size_of::<InternalNode>());
        let with_matrix = InternalNode {
            matrix: Some(CompressedMatrix::new(16, 2, 3, 4)),
            start_time: 5,
            end_time: 25,
        };
        assert!(with_matrix.space_bytes() > node.space_bytes());
    }

    #[test]
    fn leaf_space_accounts_for_matrix() {
        let l = leaf();
        assert!(l.space_bytes() >= l.matrix.space_bytes());
    }
}
