//! Per-shard, sequence-stamped mutation history: the raw-stream record that
//! makes a durable service *elastic*.
//!
//! Resharding cannot be computed from summaries alone: leaf matrices store
//! only `(address, fingerprint)` pairs — the raw vertices are unrecoverable —
//! and the shard router [`higgs_common::hashing::shard_of`] hashes with a
//! seed independent of the addressing hash, so re-partitioning to a new shard
//! count needs the original edges back. An *elastic* store (see
//! [`StoreOptions::elastic`](crate::store::StoreOptions::elastic)) therefore
//! keeps one append-only history log per shard next to the snapshot and
//! journal files, recording every acknowledged mutation with a **global
//! sequence number** stamped at ingest-routing time. Replaying all logs
//! merged by sequence number reproduces the exact global mutation order, so
//! folding that stream through `shard_of` at any new shard count rebuilds a
//! service bit-identical (on queries) to one that ingested the stream at that
//! count from the start.
//!
//! # Relationship to the journal
//!
//! The journal ([`crate::journal`]) is a *rotating* crash-recovery log: a
//! snapshot truncates it, so it only ever holds the tail since the last
//! snapshot. History is the opposite: **never truncated, never rewritten** —
//! the full stream, forever. The shard writer appends to history *before*
//! the journal, so on-disk history is always a superset of
//! `snapshot ∪ journal` (the superset is at most unacknowledged in-flight
//! records, which were never promised to anyone). Offline resharding can
//! therefore ignore journals entirely and fold history alone.
//!
//! # Generations
//!
//! File names carry a **generation** ([`history_file_name`]:
//! `history-GGG-SSS.higgs`). A reshard never rewrites existing history — it
//! opens a fresh, empty generation `max existing + 1` for the new writer set
//! and leaves every older generation untouched, so no crash point during a
//! reshard can lose or duplicate a recorded mutation. Readers scan **all**
//! generations and merge globally by sequence number.
//!
//! # File format
//!
//! ```text
//! magic "HIGGSHIS" (8 bytes) | format version (u32 LE)
//! record*
//! ```
//!
//! There is no covering-snapshot stamp — history outlives every snapshot.
//! Records are framed and per-record checksummed exactly like journal
//! records (`len u32 LE | tag u8 | payload | FNV-1a u64`), with the payload
//! carrying sequence numbers: tag 1 = insert (`seq` + edge), tag 2 =
//! insert-batch (count + per-edge `seq` + edge), tag 3 = delete (`seq` +
//! edge). A torn tail (crash mid-append) is trimmed on re-arm and skipped on
//! read — the torn record was never acknowledged; interior corruption is a
//! typed [`JournalError::Corrupt`].
//!
//! # Duplicate sequence numbers
//!
//! Writer supervision re-drives a failed command after respawning a writer,
//! so a crash between the history append and the acknowledgement can
//! legitimately append the *same* record twice. The merged read
//! ([`read_history`]) deduplicates **identical** records sharing a sequence
//! number; two *different* records claiming one sequence number can only be
//! storage corruption and fail typed.

use crate::config::JournalMode;
use crate::journal::{
    failpoint, get_edge, put_edge, read_exact_or_eof, JournalError, MAX_BATCH_EDGES,
    MAX_RECORD_BYTES,
};
use higgs_common::codec::{CodecError, Decoder, Encoder};
use higgs_common::StreamEdge;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every history file.
pub const HISTORY_MAGIC: &[u8; 8] = b"HIGGSHIS";

/// Current history format version. Bumped on any layout change; readers
/// refuse newer-than-supported files instead of guessing.
pub const HISTORY_FORMAT_VERSION: u32 = 1;

/// Byte length of the file header (magic + version). History carries no
/// covering-snapshot stamp: it is never rotated.
const HEADER_LEN: u64 = 12;

/// Record tags (the body's leading byte). Same assignments as the journal's
/// tags so the two formats stay mentally aligned.
const TAG_INSERT: u8 = 1;
const TAG_INSERT_BATCH: u8 = 2;
const TAG_DELETE: u8 = 3;

/// File name of generation `gen`, shard `shard`'s history log inside a
/// durable directory (`history-000-000.higgs`, …), next to the snapshot and
/// journal files.
pub fn history_file_name(gen: u64, shard: usize) -> String {
    format!("history-{gen:03}-{shard:03}.higgs")
}

/// Whether a mutation inserted or deleted its edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum HistoryOpKind {
    /// The edge was inserted.
    Insert,
    /// The edge was deleted (reverse-weight insert downstream).
    Delete,
}

/// One recorded mutation: an edge plus the global sequence number stamped at
/// ingest-routing time. Merging every shard's history by `seq` reproduces
/// the exact global mutation order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistoryOp {
    /// Position in the global mutation order (unique across all shards and
    /// generations after [`read_history`]'s deduplication).
    pub seq: u64,
    /// Insert or delete.
    pub kind: HistoryOpKind,
    /// The mutated edge.
    pub edge: StreamEdge,
}

/// The append half of one shard's history log, owned by that shard's writer
/// thread alongside its [`Journal`](crate::Journal). Appends are flushed to
/// the OS before returning (history is written *before* the journal, which
/// is written before the mutation applies), and [`JournalMode::SyncEveryN`]
/// additionally forces the disk every `n` records.
#[derive(Debug)]
pub struct HistoryLog {
    sink: BufWriter<File>,
    mode: JournalMode,
    shard: usize,
    path: PathBuf,
    /// Records appended since the last `fsync` (drives `SyncEveryN`).
    appended_since_sync: u32,
}

impl HistoryLog {
    /// Opens (creating if absent) generation `gen`, shard `shard`'s history
    /// log in `dir` for appending. A fresh or torn-header file gets a clean
    /// header written and synced; an existing log — the post-crash re-arm
    /// path — is extended in place after its header is validated and any
    /// torn trailing record is trimmed back to the last complete frame.
    ///
    /// `mode` must not be [`JournalMode::Off`] (elastic stores require a
    /// journaling mode; callers gate before constructing).
    pub fn open(
        dir: &Path,
        gen: u64,
        shard: usize,
        mode: JournalMode,
    ) -> Result<Self, JournalError> {
        debug_assert!(mode != JournalMode::Off, "Off never constructs history");
        let path = dir.join(history_file_name(gen, shard));
        let mut file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(&path)?;
        let len = file.metadata()?.len();
        if len < HEADER_LEN {
            // Fresh log (or the header write itself was torn, in which case
            // no record can exist): start from a clean header. The file is
            // in append mode, so each write lands at EOF.
            file.set_len(0)?;
            file.write_all(HISTORY_MAGIC)?;
            file.write_all(&HISTORY_FORMAT_VERSION.to_le_bytes())?;
            file.sync_all()?;
        } else {
            validate_header(&mut file, shard)?;
            // Post-crash re-arm: trim any torn tail before appending, so new
            // records always extend a clean frame boundary. The frame skip
            // does not checksum-verify interiors — that stays the read
            // side's job ([`read_history`]) — it only finds the last
            // complete frame.
            let clean_end = {
                let mut source = BufReader::new(&mut file);
                skip_frames(&mut source, shard)?
            };
            if clean_end < len {
                file.set_len(clean_end)?;
                file.sync_all()?;
            }
            file.seek(SeekFrom::End(0))?;
        }
        Ok(Self {
            sink: BufWriter::new(file),
            mode,
            shard,
            path,
            appended_since_sync: 0,
        })
    }

    /// Path of the history file (diagnostics and tests).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends a single-insert record.
    pub fn append_insert(&mut self, seq: u64, edge: &StreamEdge) -> Result<(), JournalError> {
        self.append_body(|enc| {
            enc.put_u8(TAG_INSERT)?;
            enc.put_u64(seq)?;
            put_edge(enc, edge)
        })
    }

    /// Appends an insert-batch record. `seqs` runs parallel to `edges`
    /// (edge `i` was stamped `seqs[i]`); the two lengths must match.
    pub fn append_insert_batch(
        &mut self,
        edges: &[StreamEdge],
        seqs: &[u64],
    ) -> Result<(), JournalError> {
        debug_assert_eq!(edges.len(), seqs.len(), "parallel seq/edge arrays");
        self.append_body(|enc| {
            enc.put_u8(TAG_INSERT_BATCH)?;
            enc.put_u64(edges.len() as u64)?;
            for (edge, seq) in edges.iter().zip(seqs) {
                enc.put_u64(*seq)?;
                put_edge(enc, edge)?;
            }
            Ok(())
        })
    }

    /// Appends a delete record.
    pub fn append_delete(&mut self, seq: u64, edge: &StreamEdge) -> Result<(), JournalError> {
        self.append_body(|enc| {
            enc.put_u8(TAG_DELETE)?;
            enc.put_u64(seq)?;
            put_edge(enc, edge)
        })
    }

    /// The single framed-write path behind every append surface, sharing the
    /// `history::append` failpoint so fault-injection covers all shapes.
    fn append_body(
        &mut self,
        encode: impl FnOnce(&mut Encoder<&mut Vec<u8>>) -> Result<(), CodecError>,
    ) -> Result<(), JournalError> {
        failpoint!("history::append", |msg: String| JournalError::Io(
            std::io::Error::other(msg)
        ));
        let mut body = Vec::with_capacity(64);
        let mut enc = Encoder::new(&mut body);
        encode(&mut enc)
            .and_then(|()| enc.finish_with_checksum().map(|_| ()))
            .map_err(|e| JournalError::Corrupt {
                shard: self.shard,
                record: 0,
                detail: format!("history encode failed: {e}"),
            })?;
        debug_assert!(body.len() as u64 <= u64::from(MAX_RECORD_BYTES));
        self.sink.write_all(&(body.len() as u32).to_le_bytes())?;
        self.sink.write_all(&body)?;
        // Out of process buffers before the journal append and the apply.
        self.sink.flush()?;
        if let JournalMode::SyncEveryN(n) = self.mode {
            self.appended_since_sync += 1;
            if self.appended_since_sync >= n {
                self.sink.get_ref().sync_data()?;
                self.appended_since_sync = 0;
            }
        }
        Ok(())
    }

    /// Flushes and forces everything appended so far to disk (used at the
    /// snapshot / reshard fence, regardless of mode).
    pub fn sync(&mut self) -> Result<(), JournalError> {
        self.sink.flush()?;
        self.sink.get_ref().sync_data()?;
        self.appended_since_sync = 0;
        Ok(())
    }
}

/// Validates the 12-byte header of an existing history file (the caller has
/// already checked the length).
fn validate_header(file: &mut File, shard: usize) -> Result<(), JournalError> {
    file.seek(SeekFrom::Start(0))?;
    let mut magic = [0u8; 8];
    file.read_exact(&mut magic)?;
    if &magic != HISTORY_MAGIC {
        return Err(JournalError::Corrupt {
            shard,
            record: 0,
            detail: format!("bad history magic {magic:02x?}"),
        });
    }
    let mut version = [0u8; 4];
    file.read_exact(&mut version)?;
    let version = u32::from_le_bytes(version);
    if version != HISTORY_FORMAT_VERSION {
        return Err(JournalError::Corrupt {
            shard,
            record: 0,
            detail: format!(
                "unsupported history format version {version} (supported: {HISTORY_FORMAT_VERSION})"
            ),
        });
    }
    Ok(())
}

/// Skips frame-by-frame to the clean end of a history file's record region
/// (the reader positioned just past the header) without decoding bodies:
/// the offset one past the last complete frame. A torn tail stops the skip;
/// an out-of-bounds length prefix is typed corruption.
fn skip_frames<R: Read>(source: &mut R, shard: usize) -> Result<u64, JournalError> {
    let mut clean_end = HEADER_LEN;
    let mut frames: u64 = 0;
    loop {
        let mut len_buf = [0u8; 4];
        match read_exact_or_eof(source, &mut len_buf) {
            Ok(true) => {}
            Ok(false) => break,
            Err(e) => return Err(JournalError::Io(e)),
        }
        let len = u32::from_le_bytes(len_buf);
        if len == 0 || len > MAX_RECORD_BYTES {
            return Err(JournalError::Corrupt {
                shard,
                record: frames,
                detail: format!("history record length {len} outside (0, {MAX_RECORD_BYTES}]"),
            });
        }
        let mut body = vec![0u8; len as usize];
        match source.read_exact(&mut body) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(JournalError::Io(e)),
        }
        frames += 1;
        clean_end += 4 + u64::from(len);
    }
    Ok(clean_end)
}

/// Decodes one history record body into its ops, verifying the per-record
/// checksum.
fn decode_body(body: &[u8], ops: &mut Vec<HistoryOp>) -> Result<(), CodecError> {
    let mut dec = Decoder::new(body);
    let before = ops.len();
    match dec.get_u8()? {
        TAG_INSERT => {
            let seq = dec.get_u64()?;
            ops.push(HistoryOp {
                seq,
                kind: HistoryOpKind::Insert,
                edge: get_edge(&mut dec)?,
            });
        }
        TAG_INSERT_BATCH => {
            let count = dec.get_len(MAX_BATCH_EDGES, "history batch edge count")?;
            for _ in 0..count {
                let seq = dec.get_u64()?;
                ops.push(HistoryOp {
                    seq,
                    kind: HistoryOpKind::Insert,
                    edge: get_edge(&mut dec)?,
                });
            }
        }
        TAG_DELETE => {
            let seq = dec.get_u64()?;
            ops.push(HistoryOp {
                seq,
                kind: HistoryOpKind::Delete,
                edge: get_edge(&mut dec)?,
            });
        }
        other => {
            return Err(CodecError::Invalid(format!(
                "unknown history record tag {other}"
            )))
        }
    }
    if let Err(e) = dec.verify_checksum().map(|_| ()) {
        ops.truncate(before);
        return Err(e);
    }
    if dec.bytes_read() != body.len() as u64 {
        ops.truncate(before);
        return Err(CodecError::Invalid(format!(
            "history record declared {} body bytes but {} were consumed",
            body.len(),
            dec.bytes_read()
        )));
    }
    Ok(())
}

/// Every `(generation, shard)` history file currently in `dir`, discovered by
/// file name. Order is unspecified.
pub(crate) fn history_files(dir: &Path) -> Result<Vec<(u64, usize, PathBuf)>, JournalError> {
    let mut files = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(files),
        Err(e) => return Err(JournalError::Io(e)),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(parsed) = parse_history_name(name) else {
            continue;
        };
        files.push((parsed.0, parsed.1, entry.path()));
    }
    Ok(files)
}

/// Parses `history-GGG-SSS.higgs` into `(generation, shard)`.
fn parse_history_name(name: &str) -> Option<(u64, usize)> {
    let rest = name.strip_prefix("history-")?.strip_suffix(".higgs")?;
    let (gen, shard) = rest.split_once('-')?;
    Some((gen.parse().ok()?, shard.parse().ok()?))
}

/// The highest history generation present in `dir`, or `None` when the
/// directory holds no history files (the store is not elastic, or nothing
/// was ever written).
pub(crate) fn max_history_gen(dir: &Path) -> Result<Option<u64>, JournalError> {
    Ok(history_files(dir)?.into_iter().map(|(g, _, _)| g).max())
}

/// Reads **every** history file in `dir` — all shards, all generations —
/// and returns the merged global mutation stream: sorted by sequence number,
/// with identical duplicate records (the writer-supervision re-drive
/// artifact) collapsed. Two *different* records sharing a sequence number
/// fail with a typed [`JournalError::Corrupt`]: sequence numbers are stamped
/// uniquely at routing time, so a divergent pair can only be corruption.
///
/// A torn final record in any file is skipped (it was never acknowledged);
/// interior corruption fails typed. An empty or missing directory reads as
/// an empty stream.
pub fn read_history(dir: &Path) -> Result<Vec<HistoryOp>, JournalError> {
    let mut ops = Vec::new();
    for (_, shard, path) in history_files(dir)? {
        read_file_ops(&path, shard, &mut ops)?;
    }
    // Per-file append order is *not* globally seq-ascending (nor strictly
    // per-file: the routing-time seq stamp and the channel send race), so
    // the global order is reconstructed by sorting. Kind/edge break seq ties
    // deterministically so duplicate detection sees stable adjacency.
    let edge_key = |e: &StreamEdge| (e.src, e.dst, e.weight, e.timestamp);
    ops.sort_unstable_by(|a, b| {
        a.seq
            .cmp(&b.seq)
            .then_with(|| a.kind.cmp(&b.kind))
            .then_with(|| edge_key(&a.edge).cmp(&edge_key(&b.edge)))
    });
    ops.dedup();
    if let Some(pair) = ops.windows(2).find(|w| w[0].seq == w[1].seq) {
        return Err(JournalError::Corrupt {
            shard: 0,
            record: pair[0].seq,
            detail: format!(
                "divergent history records share sequence number {}: {:?} vs {:?}",
                pair[0].seq, pair[0], pair[1]
            ),
        });
    }
    Ok(ops)
}

/// The highest sequence number recorded anywhere in `dir`'s history, or
/// `None` when no history exists. Re-arming an elastic store resumes its
/// sequence counter past this, so post-restart mutations sort after every
/// recorded one.
pub(crate) fn max_history_seq(dir: &Path) -> Result<Option<u64>, JournalError> {
    let mut max = None;
    let mut ops = Vec::new();
    for (_, shard, path) in history_files(dir)? {
        ops.clear();
        read_file_ops(&path, shard, &mut ops)?;
        let file_max = ops.iter().map(|op| op.seq).max();
        max = max.max(file_max);
    }
    Ok(max)
}

/// Reads one history file's complete, checksum-verified records into `ops`.
/// A torn tail stops cleanly; interior corruption fails typed.
fn read_file_ops(path: &Path, shard: usize, ops: &mut Vec<HistoryOp>) -> Result<(), JournalError> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(JournalError::Io(e)),
    };
    if file.metadata()?.len() < HEADER_LEN {
        // The header write itself was torn: nothing was ever recorded.
        return Ok(());
    }
    validate_header(&mut file, shard)?;
    let mut source = BufReader::new(file);
    let mut record: u64 = 0;
    loop {
        let mut len_buf = [0u8; 4];
        match read_exact_or_eof(&mut source, &mut len_buf) {
            Ok(true) => {}
            Ok(false) => break,
            Err(e) => return Err(JournalError::Io(e)),
        }
        let len = u32::from_le_bytes(len_buf);
        if len == 0 || len > MAX_RECORD_BYTES {
            return Err(JournalError::Corrupt {
                shard,
                record,
                detail: format!("history record length {len} outside (0, {MAX_RECORD_BYTES}]"),
            });
        }
        let mut body = vec![0u8; len as usize];
        match source.read_exact(&mut body) {
            Ok(()) => {}
            // Fewer than `len` body bytes on disk: torn tail, clean stop.
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(JournalError::Io(e)),
        }
        decode_body(&body, ops).map_err(|e| JournalError::Corrupt {
            shard,
            record,
            detail: e.to_string(),
        })?;
        record += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "higgs-history-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn edge(i: u64) -> StreamEdge {
        StreamEdge::new(i, i + 1, 1 + i % 5, i)
    }

    fn insert(seq: u64) -> HistoryOp {
        HistoryOp {
            seq,
            kind: HistoryOpKind::Insert,
            edge: edge(seq),
        }
    }

    #[test]
    fn ops_round_trip_merged_by_sequence() {
        let dir = temp_dir("roundtrip");
        // Two shards, interleaved seqs, one batch: the merged read must
        // come back globally seq-sorted regardless of file layout.
        let mut s0 = HistoryLog::open(&dir, 0, 0, JournalMode::Buffered).expect("open s0");
        let mut s1 = HistoryLog::open(&dir, 0, 1, JournalMode::Buffered).expect("open s1");
        s0.append_insert(0, &edge(0)).expect("append");
        s1.append_insert(1, &edge(1)).expect("append");
        let batch: Vec<StreamEdge> = (2..5).map(edge).collect();
        s0.append_insert_batch(&batch, &[2, 3, 4]).expect("batch");
        s1.append_delete(5, &edge(1)).expect("delete");
        drop((s0, s1));

        let ops = read_history(&dir).expect("read");
        assert_eq!(ops.len(), 6);
        assert_eq!(
            ops.iter().map(|o| o.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4, 5]
        );
        assert_eq!(ops[5].kind, HistoryOpKind::Delete);
        assert_eq!(ops[5].edge, edge(1));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn generations_merge_and_max_gen_tracks() {
        let dir = temp_dir("gens");
        assert_eq!(max_history_gen(&dir).expect("empty"), None);
        let mut g0 = HistoryLog::open(&dir, 0, 0, JournalMode::Buffered).expect("g0");
        g0.append_insert(0, &edge(0)).expect("append");
        drop(g0);
        let mut g1 = HistoryLog::open(&dir, 1, 0, JournalMode::Buffered).expect("g1");
        g1.append_insert(1, &edge(1)).expect("append");
        drop(g1);
        assert_eq!(max_history_gen(&dir).expect("gens"), Some(1));
        assert_eq!(max_history_seq(&dir).expect("seqs"), Some(1));
        let ops = read_history(&dir).expect("read");
        assert_eq!(ops, vec![insert(0), insert(1)]);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn identical_duplicates_dedup_but_divergent_duplicates_fail() {
        let dir = temp_dir("dups");
        // The re-drive artifact: the same record appended twice (crash
        // between history append and ack, then supervision re-drives).
        let mut log = HistoryLog::open(&dir, 0, 0, JournalMode::Buffered).expect("open");
        log.append_insert(0, &edge(0)).expect("append");
        log.append_insert(0, &edge(0)).expect("re-drive dup");
        log.append_insert(1, &edge(1)).expect("append");
        drop(log);
        assert_eq!(
            read_history(&dir).expect("dedup"),
            vec![insert(0), insert(1)]
        );

        // A *different* record claiming seq 1: corruption, typed.
        let mut log = HistoryLog::open(&dir, 0, 1, JournalMode::Buffered).expect("open s1");
        log.append_delete(1, &edge(9)).expect("divergent");
        drop(log);
        let err = read_history(&dir).expect_err("divergent seqs must fail");
        assert!(
            err.to_string().contains("sequence number 1"),
            "unexpected error: {err}"
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn torn_tail_is_trimmed_on_rearm_and_skipped_on_read() {
        let dir = temp_dir("torn");
        let mut log = HistoryLog::open(&dir, 0, 0, JournalMode::Buffered).expect("open");
        log.append_insert(0, &edge(0)).expect("append");
        log.append_insert(1, &edge(1)).expect("append");
        drop(log);
        let path = dir.join(history_file_name(0, 0));
        let full = std::fs::read(&path).expect("read file");
        // Tear every byte boundary inside the second record.
        let record_len = (full.len() as u64 - HEADER_LEN) / 2;
        let prefix_end = (HEADER_LEN + record_len) as usize;
        for cut in prefix_end + 1..full.len() {
            std::fs::write(&path, &full[..cut]).expect("tear");
            // Read side: the complete prefix only, never an error.
            assert_eq!(
                read_history(&dir).expect("torn read"),
                vec![insert(0)],
                "cut at byte {cut}"
            );
            // Re-arm side: trims, then appends cleanly at the boundary.
            let mut log = HistoryLog::open(&dir, 0, 0, JournalMode::Buffered).expect("re-arm");
            log.append_insert(7, &edge(7)).expect("append after trim");
            drop(log);
            assert_eq!(
                read_history(&dir).expect("after re-arm"),
                vec![insert(0), insert(7)],
                "cut at byte {cut}"
            );
            std::fs::write(&path, &full).expect("restore");
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn interior_bit_flip_is_typed_corruption() {
        let dir = temp_dir("bitflip");
        let mut log = HistoryLog::open(&dir, 0, 0, JournalMode::Buffered).expect("open");
        log.append_insert(0, &edge(0)).expect("append");
        log.append_insert(1, &edge(1)).expect("append");
        drop(log);
        let path = dir.join(history_file_name(0, 0));
        let mut bytes = std::fs::read(&path).expect("read");
        let target = HEADER_LEN as usize + 12;
        bytes[target] ^= 0x40;
        std::fs::write(&path, &bytes).expect("corrupt");
        assert!(matches!(
            read_history(&dir),
            Err(JournalError::Corrupt { record: 0, .. })
        ));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn bad_magic_version_and_oversized_length_are_corruption() {
        let dir = temp_dir("header");
        let mut log = HistoryLog::open(&dir, 0, 0, JournalMode::Buffered).expect("open");
        log.append_insert(0, &edge(0)).expect("append");
        drop(log);
        let path = dir.join(history_file_name(0, 0));
        let full = std::fs::read(&path).expect("read");

        let mut bad_magic = full.clone();
        bad_magic[0] ^= 0xFF;
        std::fs::write(&path, &bad_magic).expect("write");
        assert!(matches!(
            read_history(&dir),
            Err(JournalError::Corrupt { record: 0, .. })
        ));

        let mut bad_version = full.clone();
        bad_version[8] = 0xEE;
        std::fs::write(&path, &bad_version).expect("write");
        let err = read_history(&dir).expect_err("future version refused");
        assert!(err.to_string().contains("version"), "{err}");

        let mut oversized = full.clone();
        oversized.extend_from_slice(&(MAX_RECORD_BYTES + 1).to_le_bytes());
        oversized.extend_from_slice(&[0u8; 16]);
        std::fs::write(&path, &oversized).expect("write");
        assert!(matches!(
            read_history(&dir),
            Err(JournalError::Corrupt { record: 1, .. })
        ));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn missing_directory_and_unrelated_files_read_as_empty() {
        let dir = temp_dir("empty");
        assert_eq!(read_history(&dir).expect("empty dir"), Vec::new());
        std::fs::write(dir.join("journal-000.higgs"), b"not history").expect("write");
        std::fs::write(dir.join("history-xyz.higgs"), b"bad name").expect("write");
        assert_eq!(read_history(&dir).expect("unrelated files"), Vec::new());
        assert_eq!(max_history_seq(&dir).expect("no seqs"), None);
        let gone = dir.join("no-such-subdir");
        assert_eq!(read_history(&gone).expect("missing dir"), Vec::new());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
