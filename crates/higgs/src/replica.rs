//! Warm-follower replication: journal-segment shipping onto a restored
//! snapshot.
//!
//! ## The transport is the journal
//!
//! A durable leader (PR 9) already writes every acknowledged mutation into a
//! per-shard, checksummed, snapshot-stamped write-ahead journal **before**
//! applying it. That stream is a ready-made replication log: a [`Follower`]
//! bootstraps from the directory's snapshot (journal tails *not* replayed —
//! those bytes arrive through the cursor instead) and then, on each
//! [`sync`](Follower::sync), reads every shard's journal from its private
//! byte cursor to the current clean end, applies the new records, and
//! advances the cursor. The directory can be the leader's live directory
//! (shared filesystem) or any shipped copy that is re-synced by whatever
//! transport ships the segment files.
//!
//! ## Consistency & lag
//!
//! Each shipped record was acknowledged by the leader, and the cursor only
//! advances past records whose checksums verified — a torn tail (the leader
//! mid-append, or a truncated shipment) simply waits for the next sync.
//! [`replication_lag`](Follower::replication_lag) reports how many bytes and
//! records the follower trails, without applying anything.
//!
//! A journal whose covering stamp changed under the cursor means the leader
//! rotated (snapshotted + truncated) — the follower cannot verify it missed
//! nothing, so sync fails typed ([`ReplicaError::LeaderTruncated`]) and the
//! follower must re-bootstrap from the new snapshot. Leaders that snapshot
//! into their own directory do this on every `snapshot_to_dir`; pause
//! snapshotting or re-bootstrap followers afterwards.
//!
//! ## Promotion
//!
//! [`promote`](Follower::promote) performs a final sync and assembles a full
//! [`ShardedHiggs`] leader around the replica's pipelines. Every mutation
//! the old leader acknowledged was journaled before it was applied, so after
//! a leader crash the promoted follower serves the complete acknowledged
//! history (chaos-tested under the `failpoints` feature). The promoted
//! service is non-durable; give it its own directory via
//! [`snapshot_to_dir`](ShardedHiggs::snapshot_to_dir) +
//! [`Store::open`](crate::Store::open) to resume journaling.

use crate::config::{ConfigError, HiggsConfig};
use crate::journal::{self, JournalError, HEADER_LEN};
use crate::parallel::ParallelHiggs;
use crate::shard::ShardedHiggs;
use crate::snapshot::SnapshotError;
use higgs_common::{Query, ShardPlan, TemporalGraphSummary, Weight};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};

/// Why a follower operation (bootstrap, sync, promote) failed.
#[derive(Debug)]
pub enum ReplicaError {
    /// Restoring the bootstrap snapshot failed (missing/corrupt manifest or
    /// shard files).
    Snapshot(SnapshotError),
    /// Reading a journal segment failed: I/O, or interior corruption the
    /// cursor cannot skip.
    Journal(JournalError),
    /// The leader rotated this shard's journal (its covering stamp changed
    /// under the follower's cursor): records between the cursor and the
    /// truncation are unverifiable, so the follower refuses to guess and
    /// must re-bootstrap from the leader's new snapshot.
    LeaderTruncated {
        /// Shard whose journal was rotated away.
        shard: usize,
    },
    /// Assembling the promoted leader failed configuration validation.
    Config(ConfigError),
}

impl fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicaError::Snapshot(e) => write!(f, "follower bootstrap failed: {e}"),
            ReplicaError::Journal(e) => write!(f, "journal shipping failed: {e}"),
            ReplicaError::LeaderTruncated { shard } => write!(
                f,
                "leader rotated shard {shard}'s journal under the replication cursor; \
                 re-bootstrap the follower from the new snapshot"
            ),
            ReplicaError::Config(e) => write!(f, "promoted configuration is invalid: {e}"),
        }
    }
}

impl std::error::Error for ReplicaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplicaError::Snapshot(e) => Some(e),
            ReplicaError::Journal(e) => Some(e),
            ReplicaError::Config(e) => Some(e),
            ReplicaError::LeaderTruncated { .. } => None,
        }
    }
}

impl From<SnapshotError> for ReplicaError {
    fn from(e: SnapshotError) -> Self {
        ReplicaError::Snapshot(e)
    }
}

impl From<JournalError> for ReplicaError {
    fn from(e: JournalError) -> Self {
        ReplicaError::Journal(e)
    }
}

/// How far a follower trails its leader, as reported by
/// [`Follower::replication_lag`]: journal bytes and records that are on disk
/// but not yet applied here.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplicationLag {
    /// Verified journal bytes past the replication cursors.
    pub bytes_behind: u64,
    /// Journal records past the replication cursors.
    pub records_behind: u64,
}

/// What one [`Follower::sync`] shipped.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplicaProgress {
    /// Records applied by this sync, across all shards.
    pub records_applied: u64,
    /// Bytes the cursors advanced by this sync, across all shards.
    pub bytes_shipped: u64,
}

/// A warm read replica: restored snapshot pipelines plus per-shard journal
/// cursors. See the [module docs](self) for the shipping protocol and
/// guarantees.
///
/// Queries ([`query`](Self::query) / [`query_batch`](Self::query_batch))
/// reflect everything shipped by the last completed
/// [`sync`](Self::sync) — a follower is eventually consistent by
/// construction. For serving-layer fan-out wrap it in a
/// [`ReplicaService`](crate::ReplicaService).
pub struct Follower {
    config: HiggsConfig,
    dir: PathBuf,
    shards: Vec<Arc<RwLock<ParallelHiggs>>>,
    /// Per-shard byte offset into the journal file: everything before it has
    /// been applied here.
    cursors: Vec<u64>,
    /// The manifest checksum the journals were stamped with at bootstrap;
    /// a stamp change means the leader rotated (see
    /// [`ReplicaError::LeaderTruncated`]).
    covering: u64,
}

impl fmt::Debug for Follower {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Follower")
            .field("shards", &self.shards.len())
            .field("dir", &self.dir)
            .finish_non_exhaustive()
    }
}

impl Follower {
    /// Bootstraps a follower from a leader directory: pipelines restore from
    /// the snapshot (shard checksums verified against the manifest), and
    /// every journal cursor starts at the segment header — the first
    /// [`sync`](Self::sync) ships the full tails. Journal tails are **not**
    /// replayed here; that is what distinguishes a follower bootstrap from a
    /// crash-recovery restore.
    pub(crate) fn bootstrap(dir: &Path, workers_per_shard: usize) -> Result<Self, ReplicaError> {
        let (config, pipelines) =
            crate::snapshot::restore_snapshot_pipelines(dir, workers_per_shard)?;
        let covering = crate::snapshot::manifest_tail_checksum(dir)?;
        let shards: Vec<Arc<RwLock<ParallelHiggs>>> = pipelines
            .into_iter()
            .map(|p| Arc::new(RwLock::new(p)))
            .collect();
        let cursors = vec![HEADER_LEN; shards.len()];
        Ok(Follower {
            config,
            dir: dir.to_path_buf(),
            shards,
            cursors,
            covering,
        })
    }

    /// Ships every journal record past the cursors: reads each shard's
    /// verified tail, applies it, flushes the pipeline, and advances the
    /// cursor. Returns what was shipped. A shard with no new bytes costs one
    /// metadata read. Idempotent between leader appends.
    pub fn sync(&mut self) -> Result<ReplicaProgress, ReplicaError> {
        let mut progress = ReplicaProgress::default();
        for shard in 0..self.shards.len() {
            let Some(tail) = journal::scan_tail(&self.dir, shard, self.cursors[shard])? else {
                continue;
            };
            if tail.covering != self.covering {
                return Err(ReplicaError::LeaderTruncated { shard });
            }
            if tail.records.is_empty() {
                continue;
            }
            progress.records_applied += tail.records.len() as u64;
            progress.bytes_shipped += tail.clean_end.saturating_sub(self.cursors[shard]);
            {
                let mut pipeline = self.shards[shard].write().expect("shard lock poisoned");
                journal::apply_records(&mut pipeline, tail.records);
                pipeline.flush();
            }
            self.cursors[shard] = tail.clean_end;
        }
        Ok(progress)
    }

    /// How far this follower trails the on-disk journals, **without**
    /// applying anything (a monitoring probe: cheap, and `&self`).
    pub fn replication_lag(&self) -> Result<ReplicationLag, ReplicaError> {
        let mut lag = ReplicationLag::default();
        for shard in 0..self.shards.len() {
            let Some(tail) = journal::scan_tail(&self.dir, shard, self.cursors[shard])? else {
                continue;
            };
            if tail.covering != self.covering {
                return Err(ReplicaError::LeaderTruncated { shard });
            }
            lag.records_behind += tail.records.len() as u64;
            lag.bytes_behind += tail.clean_end.saturating_sub(self.cursors[shard]);
        }
        Ok(lag)
    }

    /// Number of shards this follower replicates.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The configuration the leader's manifest recorded (journal mode
    /// normalised to `Off` — a follower never journals).
    pub fn config(&self) -> &HiggsConfig {
        &self.config
    }

    /// The per-shard pipelines (crate-internal: the serving layer's replica
    /// fan-out reads them from its shard workers).
    pub(crate) fn shard_pipelines(&self) -> &[Arc<RwLock<ParallelHiggs>>] {
        &self.shards
    }

    /// Answers one read-only query against the last synced state.
    pub fn query(&self, query: &Query) -> Weight {
        self.query_batch(std::slice::from_ref(query))[0]
    }

    /// Answers a read-only batch against the last synced state, through the
    /// same per-shard plan-sharing executor as the leader — results are
    /// bit-identical to the leader's for any state the sync has caught up
    /// to.
    pub fn query_batch(&self, queries: &[Query]) -> Vec<Weight> {
        let plan = ShardPlan::build(queries, self.shards.len());
        let per_shard: Vec<Vec<Weight>> = (0..self.shards.len())
            .map(|s| {
                let sub = plan.sub_batch(s);
                if sub.is_empty() {
                    Vec::new()
                } else {
                    // LINT-ALLOW(durability-io-panic): RwLock::read, not file
                    // I/O — poisoning means a query worker already panicked.
                    let pipeline = self.shards[s].read().expect("shard lock poisoned");
                    pipeline.query_batch(sub)
                }
            })
            .collect();
        plan.gather(&per_shard)
    }

    /// Promotes this follower to a serving leader: performs a final
    /// [`sync`](Self::sync) (shipping everything the crashed leader's
    /// journals hold — every record in them was acknowledged), then
    /// assembles a [`ShardedHiggs`] around the replica's pipelines.
    ///
    /// The promoted service is **non-durable** (the old leader still owns
    /// the directory, and two journal writers on one directory would corrupt
    /// both); snapshot it into a fresh directory and reopen with
    /// [`Store::open`](crate::Store::open) to resume journaling.
    pub fn promote(mut self) -> Result<ShardedHiggs, ReplicaError> {
        self.sync()?;
        let mut config = self.config;
        config.shards = self.shards.len();
        ShardedHiggs::from_arc_pipelines(config, self.shards).map_err(ReplicaError::Config)
    }
}
