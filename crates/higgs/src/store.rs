//! The unified persistence entry point: [`Store::open`] with
//! [`StoreOptions`].
//!
//! Durable construction used to be spread over four constructors
//! (`new_durable`, `new_durable_with_workers`, `restore_from_dir`,
//! `restore_from_dir_with_workers`) whose names encoded *how* the directory
//! was expected to look. [`Store`] replaces them with one typed options
//! surface: say what you want ([`OpenMode`]), not which constructor matches
//! the directory's current state. Resharding and follower construction hang
//! off the same options type ([`Store::open_resharded`], [`Store::follow`]),
//! so the whole persistence lifecycle — create, recover, reshard, replicate
//! — reads from one vocabulary.
//!
//! ```no_run
//! use higgs::{HiggsConfig, JournalMode, OpenMode, Store, StoreOptions};
//!
//! let config = HiggsConfig::builder()
//!     .shards(2)
//!     .journal_mode(JournalMode::Buffered)
//!     .build()
//!     .expect("valid");
//! // Create-or-recover, with elastic history for later resharding.
//! let service = Store::open(
//!     StoreOptions::durable(config, "/var/lib/higgs").elastic(true),
//! )
//! .expect("open");
//! drop(service);
//! // Reopen strictly (fail if the directory vanished), two workers/shard.
//! let service = Store::open(
//!     StoreOptions::durable(config, "/var/lib/higgs")
//!         .mode(OpenMode::OpenExisting)
//!         .workers(2),
//! )
//! .expect("reopen");
//! # drop(service);
//! ```
//!
//! See the crate docs' *Elastic scaling & replication* section for the
//! migration table from the deprecated constructors.

use crate::config::{HiggsConfig, JournalMode};
use crate::history::{self, HistoryLog};
use crate::journal::Journal;
use crate::parallel::ParallelHiggs;
use crate::replica::{Follower, ReplicaError};
use crate::reshard::ReshardError;
use crate::shard::{DurableState, ShardedHiggs};
use crate::snapshot::SnapshotError;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// How [`Store::open`] treats the directory's current state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpenMode {
    /// The directory must not already be initialised: fail with
    /// [`SnapshotError::AlreadyExists`] when it holds a snapshot manifest
    /// instead of silently recovering state the caller did not expect.
    CreateNew,
    /// The directory must already exist; fail (I/O `NotFound`) instead of
    /// creating it. With a configuration this recovers snapshot + journals;
    /// without one the configuration is taken from the manifest.
    OpenExisting,
    /// Create the directory when missing, recover it when present — the
    /// idempotent default for services that own their data directory.
    OpenOrCreate,
}

/// Typed options for [`Store::open`]: the directory, how to treat its
/// current state, and the runtime knobs the old constructor zoo used to
/// encode positionally.
#[derive(Clone, Debug)]
pub struct StoreOptions {
    /// The caller's configuration. `Some` makes it authoritative (the
    /// durable open path); `None` takes the configuration from the
    /// directory's manifest (the restore path, necessarily
    /// [`OpenMode::OpenExisting`]).
    config: Option<HiggsConfig>,
    dir: PathBuf,
    mode: OpenMode,
    workers: usize,
    elastic: bool,
}

impl StoreOptions {
    /// Options for a **durable** service: `config` is authoritative, the
    /// directory is created or recovered ([`OpenMode::OpenOrCreate`]), and
    /// every mutation is journaled per `config`'s
    /// [`journal_mode`](crate::HiggsConfigBuilder::journal_mode).
    pub fn durable(config: HiggsConfig, dir: impl AsRef<Path>) -> Self {
        StoreOptions {
            config: Some(config),
            dir: dir.as_ref().to_path_buf(),
            mode: OpenMode::OpenOrCreate,
            workers: 1,
            elastic: false,
        }
    }

    /// Options for restoring a **non-durable** warm copy from a snapshot
    /// directory: the configuration comes from the manifest (journaling
    /// off), the directory must exist ([`OpenMode::OpenExisting`]).
    pub fn restore(dir: impl AsRef<Path>) -> Self {
        StoreOptions {
            config: None,
            dir: dir.as_ref().to_path_buf(),
            mode: OpenMode::OpenExisting,
            workers: 1,
            elastic: false,
        }
    }

    /// Overrides the [`OpenMode`].
    pub fn mode(mut self, mode: OpenMode) -> Self {
        self.mode = mode;
        self
    }

    /// Aggregation workers behind each shard's writer (default 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Maintain an **elastic mutation history** (see [`crate::history`]):
    /// every acknowledged mutation is additionally appended, sequence
    /// stamped, to per-shard history logs, enabling
    /// [`ShardedHiggs::reshard`] and [`Store::open_resharded`] later.
    /// Requires journaling (a [`JournalMode`] other than `Off`). Directories
    /// that already hold history files re-enable this automatically; a
    /// directory with existing **non-elastic** state refuses (its past
    /// mutations were never recorded, so a later refold would drop them).
    pub fn elastic(mut self, elastic: bool) -> Self {
        self.elastic = elastic;
        self
    }
}

/// Namespace for the unified persistence API; see the [module docs](self)
/// and [`Store::open`].
#[derive(Debug)]
pub struct Store;

impl Store {
    /// Opens (creates, recovers, or restores) a [`ShardedHiggs`] from
    /// `options.dir` per the [`OpenMode`].
    ///
    /// * With a configuration ([`StoreOptions::durable`]): the caller's
    ///   config is authoritative. A directory holding a snapshot and/or
    ///   journals is recovered (journal tails replayed, a torn final record
    ///   tolerated); a fresh directory starts empty. Journaling continues
    ///   per the config's journal mode — `Off` gives recovery without
    ///   durability.
    /// * Without one ([`StoreOptions::restore`]): the manifest's stored
    ///   config is used. Since a manifest never records a journal mode, the
    ///   result is a warm **non-durable** copy (the `restore_from_dir`
    ///   semantics).
    ///
    /// Elastic history ([`StoreOptions::elastic`]) additionally arms
    /// per-shard history logs and resumes the global mutation sequence above
    /// everything already recorded.
    ///
    /// Nothing is spawned until every file validated, so a failed open never
    /// leaks writer threads.
    pub fn open(options: StoreOptions) -> Result<ShardedHiggs, SnapshotError> {
        let StoreOptions {
            config,
            dir,
            mode,
            workers,
            elastic,
        } = options;
        match mode {
            OpenMode::CreateNew => {
                if crate::snapshot::manifest_exists(&dir) {
                    return Err(SnapshotError::AlreadyExists { dir });
                }
            }
            OpenMode::OpenExisting => {
                if !dir.is_dir() {
                    return Err(SnapshotError::Io(std::io::Error::new(
                        std::io::ErrorKind::NotFound,
                        format!("{}: no such directory (OpenExisting)", dir.display()),
                    )));
                }
            }
            OpenMode::OpenOrCreate => {}
        }
        match config {
            Some(config) => open_durable(config, &dir, workers, elastic),
            None => {
                if elastic {
                    return Err(SnapshotError::ElasticUnavailable {
                        detail: "restore opens are non-durable (the manifest stores no \
                                 journal mode), and elastic history requires the durable \
                                 write path; pass a configuration with journaling enabled"
                            .into(),
                    });
                }
                let (stored, pipelines) = crate::snapshot::restore_pipelines(&dir, workers)?;
                Ok(ShardedHiggs::from_pipelines(stored, pipelines)?)
            }
        }
    }

    /// Opens `options.dir` **resharded** to `new_shards`: the directory's
    /// elastic history is refolded through `shard_of` at the new width, the
    /// refolded snapshot committed back, and the service opened durable at
    /// the new count (journaling per the options config's journal mode,
    /// [`JournalMode::Buffered`] when the options carry no config).
    ///
    /// Queries on the result are bit-identical to a service built fresh at
    /// `new_shards` from the same single-producer workload. Failures are
    /// typed [`ReshardError`]s and spawn nothing.
    pub fn open_resharded(
        options: StoreOptions,
        new_shards: usize,
    ) -> Result<ShardedHiggs, ReshardError> {
        let mode = options
            .config
            .map_or(JournalMode::Buffered, |c| c.journal_mode);
        crate::reshard::open_resharded(&options.dir, new_shards, options.workers, mode)
    }

    /// Bootstraps a warm **read-only follower** from `options.dir` (a
    /// leader's live durable directory, or a shipped copy of it): pipelines
    /// restore from the snapshot, and [`Follower::sync`] then replays
    /// journal segments as the leader appends them. See [`crate::replica`].
    pub fn follow(options: StoreOptions) -> Result<Follower, ReplicaError> {
        Follower::bootstrap(&options.dir, options.workers)
    }
}

/// The durable open path: caller config authoritative, directory created
/// per mode, snapshot + journal recovery, optional elastic history.
fn open_durable(
    config: HiggsConfig,
    dir: &Path,
    workers_per_shard: usize,
    elastic_requested: bool,
) -> Result<ShardedHiggs, SnapshotError> {
    config.validate().map_err(SnapshotError::Config)?;
    std::fs::create_dir_all(dir)?;
    let history_gen = history::max_history_gen(dir).map_err(SnapshotError::Journal)?;
    let elastic = elastic_requested || history_gen.is_some();
    if elastic && config.journal_mode == JournalMode::Off {
        return Err(SnapshotError::ElasticUnavailable {
            detail: "elastic history rides the durable write path; configure a \
                     JournalMode other than Off"
                .into(),
        });
    }
    let has_snapshot = crate::snapshot::manifest_exists(dir);
    if elastic_requested && history_gen.is_none() && has_snapshot {
        return Err(SnapshotError::ElasticUnavailable {
            detail: format!(
                "{} already holds non-elastic state: its past mutations were never \
                 recorded in a history log, so a later refold would silently drop \
                 them; elastic can only be enabled on a directory that was elastic \
                 from the start",
                dir.display()
            ),
        });
    }
    let pipelines = if has_snapshot {
        let (stored, pipelines) = crate::snapshot::restore_pipelines(dir, workers_per_shard)?;
        if stored.shards != config.shards {
            return Err(SnapshotError::Corrupt(format!(
                "shard count mismatch: directory holds {} shards, config asks for {}",
                stored.shards, config.shards
            )));
        }
        pipelines
    } else {
        // No snapshot yet (fresh directory, or a crash before the first
        // snapshot): fresh pipelines, then journal tails on top.
        let mut pipelines: Vec<ParallelHiggs> = (0..config.shards)
            .map(|s| {
                ParallelHiggs::new_on_core(
                    config,
                    workers_per_shard,
                    ParallelHiggs::pin_core_for(&config, s),
                )
            })
            .collect();
        // No manifest, so journals (if any) must carry the zero stamp.
        for (s, pipeline) in pipelines.iter_mut().enumerate() {
            let records = crate::journal::replay(dir, s, 0).map_err(SnapshotError::Journal)?;
            if !records.is_empty() {
                crate::journal::apply_records(pipeline, records);
                pipeline.flush();
            }
        }
        pipelines
    };
    let durable = (config.journal_mode != JournalMode::Off).then(|| {
        Arc::new(DurableState {
            dir: dir.to_path_buf(),
            mode: config.journal_mode,
            workers_per_shard,
            // Reopening appends to the current generation (its torn tail,
            // if any, is trimmed on open); only a reshard advances it.
            history_gen: elastic.then(|| history_gen.unwrap_or(0)),
        })
    });
    let journals = match &durable {
        Some(state) => {
            // Stamp (or validate) each journal against the manifest
            // currently in the directory; a journal left stale by an
            // interrupted rotation is reset here, right after the replay
            // above discarded its records.
            let covering = crate::snapshot::manifest_tail_checksum(dir)?;
            (0..config.shards)
                .map(|s| Journal::open(dir, s, state.mode, covering).map(Some))
                .collect::<Result<Vec<_>, _>>()
                .map_err(SnapshotError::Journal)?
        }
        None => (0..config.shards).map(|_| None).collect(),
    };
    let histories = match durable.as_ref().and_then(|d| d.history_gen) {
        Some(gen) => (0..config.shards)
            .map(|s| {
                HistoryLog::open(dir, gen, s, config.journal_mode)
                    .map(Some)
                    .map_err(SnapshotError::Journal)
            })
            .collect::<Result<Vec<_>, _>>()?,
        None => (0..config.shards).map(|_| None).collect(),
    };
    // New mutations must stamp above everything already on disk, so the
    // reconstructed global order stays a total order across restarts.
    let next_seq = if elastic {
        history::max_history_seq(dir)
            .map_err(SnapshotError::Journal)?
            .map_or(0, |s| s + 1)
    } else {
        0
    };
    let service =
        ShardedHiggs::from_pipelines_with(config, pipelines, durable, journals, histories)
            .map_err(SnapshotError::Config)?;
    service.resume_seq(next_seq);
    Ok(service)
}
