//! Per-shard write-ahead journal: the durability floor under
//! [`ShardedHiggs`](crate::ShardedHiggs).
//!
//! A snapshot ([`snapshot`](crate::snapshot)) captures a summary at one
//! instant; every mutation after it lives only in memory. The journal closes
//! that window: a *durable* service (see [`Store::open`](crate::Store::open)
//! with [`StoreOptions::durable`](crate::StoreOptions::durable)) has each
//! shard's writer thread append every `Insert` / `InsertBatch` / `Delete`
//! command to an append-only, per-record-checksummed log **before** applying
//! it, so after a crash the state is reconstructed as
//! `snapshot + journal tail replay`.
//!
//! # File format
//!
//! One file per shard in the durable directory ([`journal_file_name`]:
//! `journal-NNN.higgs`), sitting next to the shard snapshot files:
//!
//! ```text
//! magic "HIGGSJNL" (8 bytes) | format version (u32 LE) | covering snapshot checksum (u64 LE)
//! record*
//! ```
//!
//! The *covering snapshot checksum* is the trailing document checksum of the
//! manifest this journal's records extend (`0` before the first snapshot).
//! Replay compares it against the manifest actually on disk: a mismatch
//! means the journal predates the manifest — the crash landed between the
//! manifest becoming durable and the rotation truncating the journals — so
//! its records are **already in the snapshot** and are discarded instead of
//! double-applied.
//!
//! Each record is independently framed and checksummed — unlike snapshot
//! files, which close with one document checksum, because a journal must be
//! verifiable up to an arbitrary torn point:
//!
//! ```text
//! len (u32 LE) | body (len bytes) = tag u8 | payload | FNV-1a checksum (u64 LE)
//! ```
//!
//! with the payload encoded by [`higgs_common::codec::Encoder`] (tag 1 =
//! insert: one edge; tag 2 = insert-batch: count + edges; tag 3 = delete:
//! one edge; an edge is four LE `u64`s).
//!
//! # Torn tails vs. interior corruption
//!
//! [`replay`] distinguishes the two failure shapes deliberately:
//!
//! * **Truncated tail** — the process died mid-append, so the file ends with
//!   a partial length prefix or fewer than `len` body bytes. That is the
//!   *expected* crash artifact; replay stops cleanly after the last complete
//!   record (the torn record was never applied-and-acknowledged under
//!   write-ahead ordering, so nothing is lost).
//! * **Interior corruption** — a record's bytes are all present but its
//!   checksum (or structure) does not verify. That means storage corruption,
//!   not a crash, and replaying past it could silently diverge; replay fails
//!   with a typed [`JournalError::Corrupt`] naming shard and record index.
//!
//! # Rotation fence
//!
//! A successful [`snapshot_to_dir`](crate::ShardedHiggs::snapshot_to_dir)
//! into the durable directory truncates each shard's journal back to the
//! header *under a writer fence*: every writer parks before the shard files
//! are read and truncates only after the manifest is durable, so each
//! mutation is in exactly one of {snapshot, journal} — never both (replay
//! would double-apply: inserts are not idempotent) and never neither. A
//! failed snapshot leaves every journal intact. The truncation stamps the
//! new manifest's checksum into the journal header, so even a crash *inside*
//! the commit window (manifest durable, journals not yet truncated) cannot
//! double-apply: recovery sees the stale stamp and discards the journal.

use crate::config::JournalMode;
use crate::parallel::ParallelHiggs;
use higgs_common::codec::{CodecError, Decoder, Encoder};
use higgs_common::{StreamEdge, TemporalGraphSummary};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every journal file.
pub const JOURNAL_MAGIC: &[u8; 8] = b"HIGGSJNL";

/// Current journal format version. Bumped on any layout change; replay
/// refuses newer-than-supported files instead of guessing.
pub const JOURNAL_FORMAT_VERSION: u32 = 1;

/// Byte length of the magic + version prefix of the header.
const HEADER_CORE_LEN: u64 = 12;

/// Byte length of the full file header (magic + version + covering snapshot
/// checksum). A file shorter than this replays as empty: either nothing was
/// ever journaled, or a crash tore a rotation mid-header — and a rotation
/// only runs once the covering snapshot is durable. The follower's segment
/// cursor ([`scan_tail`]) starts here.
pub(crate) const HEADER_LEN: u64 = 20;

/// Upper bound on one record's framed body length. The largest legitimate
/// record is an insert-batch of one routed ingest chunk (512 edges ≈ 16 KiB);
/// a length prefix beyond this bound can only come from corruption. Shared
/// with the elastic history log, whose records carry the same batch bound
/// plus an 8-byte sequence number per edge.
pub(crate) const MAX_RECORD_BYTES: u32 = 1 << 20;

/// Upper bound on the edge count of one insert-batch record (decode-side
/// allocation guard, mirroring the snapshot module's `MAX_PREALLOC`).
pub(crate) const MAX_BATCH_EDGES: u64 = 1 << 16;

/// Why a journal operation failed.
#[derive(Debug)]
pub enum JournalError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// A fully-present interior record failed checksum or structural
    /// verification: storage corruption, not a torn crash tail. Replay
    /// refuses to continue past it.
    Corrupt {
        /// Shard whose journal is corrupt.
        shard: usize,
        /// Zero-based index of the corrupt record.
        record: u64,
        /// What failed to verify.
        detail: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Corrupt {
                shard,
                record,
                detail,
            } => {
                write!(
                    f,
                    "journal for shard {shard} corrupt at record {record}: {detail}"
                )
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            JournalError::Corrupt { .. } => None,
        }
    }
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Named failpoint hooks (see `crates/shims/failpoint`). With the
/// `failpoints` feature the hook evaluates the registry: an injected error
/// maps through `$map` into an early `return Err(..)`, an injected panic
/// unwinds from here, an injected delay stalls the path. Without the feature
/// both forms compile to nothing, so production builds carry zero overhead.
#[cfg(feature = "failpoints")]
macro_rules! failpoint {
    ($name:expr) => {
        let _ = fail::eval($name);
    };
    ($name:expr, $map:expr) => {
        if let Some(msg) = fail::eval($name) {
            return Err(($map)(msg));
        }
    };
}

/// No-op twin of the `failpoints`-gated hook: default builds compile every
/// instrumented path with the hook erased.
#[cfg(not(feature = "failpoints"))]
macro_rules! failpoint {
    ($name:expr) => {};
    ($name:expr, $map:expr) => {};
}

pub(crate) use failpoint;

/// File name of shard `shard`'s journal inside a durable directory
/// (`journal-000.higgs`, `journal-001.higgs`, …), next to the snapshot's
/// `shard-NNN.higgs` files.
pub fn journal_file_name(shard: usize) -> String {
    format!("journal-{shard:03}.higgs")
}

/// One journaled mutation, mirroring the shard writer's command set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalRecord {
    /// A single inserted edge.
    Insert(StreamEdge),
    /// A routed batch of inserted edges (one ingest chunk).
    InsertBatch(Vec<StreamEdge>),
    /// A single deleted (reversed) edge.
    Delete(StreamEdge),
}

/// Record tags (the body's leading byte).
const TAG_INSERT: u8 = 1;
const TAG_INSERT_BATCH: u8 = 2;
const TAG_DELETE: u8 = 3;

pub(crate) fn put_edge<W: Write>(
    enc: &mut Encoder<W>,
    edge: &StreamEdge,
) -> Result<(), CodecError> {
    enc.put_u64(edge.src)?;
    enc.put_u64(edge.dst)?;
    enc.put_u64(edge.weight)?;
    enc.put_u64(edge.timestamp)
}

pub(crate) fn get_edge<R: Read>(dec: &mut Decoder<R>) -> Result<StreamEdge, CodecError> {
    Ok(StreamEdge {
        src: dec.get_u64()?,
        dst: dec.get_u64()?,
        weight: dec.get_u64()?,
        timestamp: dec.get_u64()?,
    })
}

/// A borrowed view of one journalable mutation: what the shard writer hands
/// to [`Journal::append_insert`] and friends without cloning batch payloads
/// into an owned [`JournalRecord`] first.
#[derive(Clone, Copy)]
enum RecordShape<'a> {
    Insert(&'a StreamEdge),
    InsertBatch(&'a [StreamEdge]),
    Delete(&'a StreamEdge),
}

/// Encodes a record body — tag, payload, trailing per-record checksum — into
/// a fresh buffer ready to be framed with a length prefix. Shared by the
/// owned and borrowed append paths so both produce identical bytes.
fn encode_record_body(shape: RecordShape<'_>) -> Result<Vec<u8>, CodecError> {
    let mut body = Vec::with_capacity(48);
    let mut enc = Encoder::new(&mut body);
    match shape {
        RecordShape::Insert(edge) => {
            enc.put_u8(TAG_INSERT)?;
            put_edge(&mut enc, edge)?;
        }
        RecordShape::InsertBatch(edges) => {
            enc.put_u8(TAG_INSERT_BATCH)?;
            enc.put_u64(edges.len() as u64)?;
            for edge in edges {
                put_edge(&mut enc, edge)?;
            }
        }
        RecordShape::Delete(edge) => {
            enc.put_u8(TAG_DELETE)?;
            put_edge(&mut enc, edge)?;
        }
    }
    enc.finish_with_checksum()?;
    Ok(body)
}

impl JournalRecord {
    /// The borrowed view of this owned record.
    fn shape(&self) -> RecordShape<'_> {
        match self {
            JournalRecord::Insert(edge) => RecordShape::Insert(edge),
            JournalRecord::InsertBatch(edges) => RecordShape::InsertBatch(edges),
            JournalRecord::Delete(edge) => RecordShape::Delete(edge),
        }
    }

    /// Decodes one record body (as framed by [`encode_record_body`]),
    /// verifying the per-record checksum.
    fn decode_body(body: &[u8]) -> Result<Self, CodecError> {
        let mut dec = Decoder::new(body);
        let record = match dec.get_u8()? {
            TAG_INSERT => JournalRecord::Insert(get_edge(&mut dec)?),
            TAG_INSERT_BATCH => {
                let count = dec.get_len(MAX_BATCH_EDGES, "journal batch edge count")?;
                let mut edges = Vec::with_capacity(count);
                for _ in 0..count {
                    edges.push(get_edge(&mut dec)?);
                }
                JournalRecord::InsertBatch(edges)
            }
            TAG_DELETE => JournalRecord::Delete(get_edge(&mut dec)?),
            other => {
                return Err(CodecError::Invalid(format!(
                    "unknown journal record tag {other}"
                )))
            }
        };
        dec.verify_checksum()?;
        // `bytes_read` includes the trailing checksum the verify consumed.
        if dec.bytes_read() != body.len() as u64 {
            return Err(CodecError::Invalid(format!(
                "journal record declared {} body bytes but {} were consumed",
                body.len(),
                dec.bytes_read()
            )));
        }
        Ok(record)
    }

    /// Number of edges this record mutates (diagnostics / test assertions).
    pub fn edge_count(&self) -> usize {
        match self {
            JournalRecord::Insert(_) | JournalRecord::Delete(_) => 1,
            JournalRecord::InsertBatch(edges) => edges.len(),
        }
    }
}

/// The append half of one shard's write-ahead journal, owned by that shard's
/// writer thread. Created by [`Journal::open`] against the durable
/// directory; every [`append`](Self::append) is flushed to the OS before it
/// returns (write-ahead ordering: the record is out of process buffers
/// before the mutation is applied), and [`JournalMode::SyncEveryN`]
/// additionally forces the disk every `n` records.
#[derive(Debug)]
pub struct Journal {
    sink: BufWriter<File>,
    mode: JournalMode,
    shard: usize,
    path: PathBuf,
    /// Records appended since the last `fsync` (drives `SyncEveryN`).
    appended_since_sync: u32,
}

impl Journal {
    /// Opens (creating if absent) shard `shard`'s journal in `dir` for
    /// appending. `covering` is the checksum of the snapshot manifest the
    /// journal extends (`0` when the directory holds no manifest; the
    /// snapshot module derives it from the manifest's trailing checksum
    /// footer). A fresh or empty file
    /// gets the header written and synced; an existing journal — the
    /// post-crash re-arm path — is extended in place after its header is
    /// validated and any torn trailing record (a crash mid-append) is
    /// trimmed, so new records always start at a clean record boundary.
    /// An existing journal stamped with a *different* covering
    /// checksum is stale (its records live in the snapshot already — the
    /// crash hit between manifest sync and rotation) and is reset to empty.
    ///
    /// `mode` must not be [`JournalMode::Off`] (callers gate on the mode
    /// before constructing a journal).
    pub fn open(
        dir: &Path,
        shard: usize,
        mode: JournalMode,
        covering: u64,
    ) -> Result<Self, JournalError> {
        debug_assert!(mode != JournalMode::Off, "Off never constructs a journal");
        let path = dir.join(journal_file_name(shard));
        let mut file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(&path)?;
        let len = file.metadata()?.len();
        if len < HEADER_LEN {
            // Fresh journal (or a crash tore the header write itself, in
            // which case no record can exist): start from a clean header.
            // The file is in append mode, so each write lands at EOF.
            file.set_len(0)?;
            file.write_all(JOURNAL_MAGIC)?;
            file.write_all(&JOURNAL_FORMAT_VERSION.to_le_bytes())?;
            file.write_all(&covering.to_le_bytes())?;
            file.sync_all()?;
        } else {
            let stored = validate_header(&mut file, shard)?;
            if stored != covering {
                // Stale journal: reset to an empty one stamped with the
                // current manifest. Truncating to the core first keeps every
                // crash point safe (a short header replays as empty).
                file.set_len(HEADER_CORE_LEN)?;
                file.write_all(&covering.to_le_bytes())?;
                file.sync_all()?;
            } else {
                // Post-crash re-arm: trim any torn tail before appending.
                // Appending after torn partial bytes would make the *next*
                // replay stop at (or report Corrupt for) the tear, silently
                // discarding every record this session journals after it.
                let (_, clean_end) = {
                    let mut source = BufReader::new(&mut file);
                    scan_records(&mut source, shard, HEADER_LEN)?
                };
                if clean_end < len {
                    file.set_len(clean_end)?;
                    file.sync_all()?;
                }
                file.seek(SeekFrom::End(0))?;
            }
        }
        Ok(Self {
            sink: BufWriter::new(file),
            mode,
            shard,
            path,
            appended_since_sync: 0,
        })
    }

    /// Path of the journal file (diagnostics and tests).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record: length-prefixed, per-record-checksummed, flushed
    /// to the OS before returning, and `fsync`ed per the journal's
    /// [`JournalMode`]. The shard writer calls this **before** applying the
    /// mutation, so a crash can lose at most a record that was never
    /// applied.
    pub fn append(&mut self, record: &JournalRecord) -> Result<(), JournalError> {
        self.append_shape(record.shape())
    }

    /// Appends a single-insert record from a borrowed edge (the writer-thread
    /// hot path: no owned [`JournalRecord`] is built).
    pub fn append_insert(&mut self, edge: &StreamEdge) -> Result<(), JournalError> {
        self.append_shape(RecordShape::Insert(edge))
    }

    /// Appends an insert-batch record from a borrowed slice, without cloning
    /// the batch.
    pub fn append_insert_batch(&mut self, edges: &[StreamEdge]) -> Result<(), JournalError> {
        self.append_shape(RecordShape::InsertBatch(edges))
    }

    /// Appends a delete record from a borrowed edge.
    pub fn append_delete(&mut self, edge: &StreamEdge) -> Result<(), JournalError> {
        self.append_shape(RecordShape::Delete(edge))
    }

    /// The single framed-write path behind every append surface. All paths
    /// share the `journal::append` failpoint, so fault-injection tests cover
    /// singles, batches and deletes alike.
    fn append_shape(&mut self, shape: RecordShape<'_>) -> Result<(), JournalError> {
        failpoint!("journal::append", |msg: String| JournalError::Io(
            std::io::Error::other(msg)
        ));
        let body = encode_record_body(shape).map_err(|e| JournalError::Corrupt {
            shard: self.shard,
            record: 0,
            detail: format!("encode failed: {e}"),
        })?;
        debug_assert!(body.len() as u64 <= u64::from(MAX_RECORD_BYTES));
        self.sink.write_all(&(body.len() as u32).to_le_bytes())?;
        self.sink.write_all(&body)?;
        // Out of process buffers before the caller applies the mutation.
        self.sink.flush()?;
        if let JournalMode::SyncEveryN(n) = self.mode {
            self.appended_since_sync += 1;
            if self.appended_since_sync >= n {
                self.sink.get_ref().sync_data()?;
                self.appended_since_sync = 0;
            }
        }
        Ok(())
    }

    /// Flushes and forces everything appended so far to disk (used at the
    /// snapshot fence, regardless of mode).
    pub fn sync(&mut self) -> Result<(), JournalError> {
        self.sink.flush()?;
        self.sink.get_ref().sync_data()?;
        self.appended_since_sync = 0;
        Ok(())
    }

    /// Truncates the journal back to its header and stamps `covering` — the
    /// just-written manifest's checksum — into it. This is the rotation
    /// fence's commit step, called only after the covering snapshot's
    /// manifest is durable. Every crash point is safe: a torn header (the
    /// file cut inside the stamp) replays as empty, which is correct because
    /// the snapshot already holds every truncated record.
    pub fn truncate(&mut self, covering: u64) -> Result<(), JournalError> {
        self.sink.flush()?;
        let file = self.sink.get_mut();
        file.set_len(HEADER_CORE_LEN)?;
        // Append mode: this lands exactly at the end of the core header.
        file.write_all(&covering.to_le_bytes())?;
        file.sync_all()?;
        self.appended_since_sync = 0;
        Ok(())
    }
}

/// Validates the 20-byte header of an existing journal file (the caller has
/// already checked the length), returning the stored covering-snapshot
/// checksum.
fn validate_header(file: &mut File, shard: usize) -> Result<u64, JournalError> {
    file.seek(SeekFrom::Start(0))?;
    let mut magic = [0u8; 8];
    file.read_exact(&mut magic)?;
    if &magic != JOURNAL_MAGIC {
        return Err(JournalError::Corrupt {
            shard,
            record: 0,
            detail: format!("bad magic {magic:02x?}"),
        });
    }
    let mut version = [0u8; 4];
    file.read_exact(&mut version)?;
    let version = u32::from_le_bytes(version);
    if version != JOURNAL_FORMAT_VERSION {
        return Err(JournalError::Corrupt {
            shard,
            record: 0,
            detail: format!(
                "unsupported journal format version {version} (supported: {JOURNAL_FORMAT_VERSION})"
            ),
        });
    }
    let mut covering = [0u8; 8];
    file.read_exact(&mut covering)?;
    Ok(u64::from_le_bytes(covering))
}

/// Replays shard `shard`'s journal from `dir`, returning every complete,
/// checksum-verified record in append order. `covering` is the checksum of
/// the manifest currently in the directory (`0` when there is none); a
/// journal stamped with a different value predates that manifest — its
/// records are already inside the snapshot — and replays as empty.
///
/// * A missing file, a file shorter than its header, or a header-only file
///   replays as zero records (a journal that never recorded anything).
/// * A **torn tail** — the file ends inside a length prefix or record body —
///   stops the replay cleanly after the last complete record.
/// * **Interior corruption** — a fully-present record failing checksum or
///   structural verification — fails with [`JournalError::Corrupt`].
pub fn replay(dir: &Path, shard: usize, covering: u64) -> Result<Vec<JournalRecord>, JournalError> {
    let path = dir.join(journal_file_name(shard));
    let mut file = match File::open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(JournalError::Io(e)),
    };
    if file.metadata()?.len() < HEADER_LEN {
        // The header write itself was torn: nothing was ever journaled (a
        // header only tears during initial creation or a rotation commit,
        // and both leave nothing that still needs replaying).
        return Ok(Vec::new());
    }
    if validate_header(&mut file, shard)? != covering {
        // Stale: the crash hit between the manifest becoming durable and
        // the rotation truncating this journal. Every record here is
        // already inside the snapshot; replaying would double-apply.
        return Ok(Vec::new());
    }
    let mut source = BufReader::new(file);
    let (records, _) = scan_records(&mut source, shard, HEADER_LEN)?;
    Ok(records)
}

/// One incremental read of a journal's tail: everything a warm follower needs
/// to extend its replica past its current cursor (see
/// [`Follower::sync`](crate::replica::Follower::sync)).
pub(crate) struct JournalTail {
    /// The covering-snapshot checksum stamped in the journal's header. The
    /// follower compares it against the stamp its replica was bootstrapped
    /// under: a mismatch means the leader rotated (snapshotted + truncated)
    /// since the follower last synced, so byte offsets are no longer
    /// comparable.
    pub(crate) covering: u64,
    /// Every complete, checksum-verified record from the cursor onward, in
    /// append order.
    pub(crate) records: Vec<JournalRecord>,
    /// The byte offset one past the last complete record — the follower's
    /// next cursor position.
    pub(crate) clean_end: u64,
}

/// Scans shard `shard`'s journal in `dir` from byte offset `from` (clamped to
/// the record region), returning the header stamp plus every complete record
/// at or past the cursor. `Ok(None)` when the journal does not exist yet or
/// its header is torn — "nothing shipped yet", not an error. A torn tail
/// stops the scan cleanly (those bytes re-scan next call); interior
/// corruption past the cursor is a typed [`JournalError::Corrupt`].
pub(crate) fn scan_tail(
    dir: &Path,
    shard: usize,
    from: u64,
) -> Result<Option<JournalTail>, JournalError> {
    let path = dir.join(journal_file_name(shard));
    let mut file = match File::open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(JournalError::Io(e)),
    };
    if file.metadata()?.len() < HEADER_LEN {
        return Ok(None);
    }
    let covering = validate_header(&mut file, shard)?;
    let start = from.max(HEADER_LEN);
    file.seek(SeekFrom::Start(start))?;
    let mut source = BufReader::new(file);
    let (records, clean_end) = scan_records(&mut source, shard, start)?;
    Ok(Some(JournalTail {
        covering,
        records,
        clean_end,
    }))
}

/// Scans a journal's record region (the reader positioned at byte offset
/// `start`, which must be a record boundary), returning every complete,
/// checksum-verified record in append order together with the **clean-end
/// byte offset**: the file offset one past the last complete record, beyond
/// which only a torn tail (if anything) remains. [`replay`] uses the records;
/// [`Journal::open`] uses the offset to trim a torn tail before re-arming the
/// journal for appends; [`scan_tail`] uses both to ship the tail to a
/// follower incrementally.
fn scan_records<R: Read>(
    source: &mut R,
    shard: usize,
    start: u64,
) -> Result<(Vec<JournalRecord>, u64), JournalError> {
    let mut records = Vec::new();
    let mut clean_end = start;
    loop {
        // Length prefix. Clean EOF at a record boundary ends the journal;
        // a partial prefix is a torn tail (stop scanning, keep the prefix).
        let mut len_buf = [0u8; 4];
        match read_exact_or_eof(source, &mut len_buf) {
            Ok(true) => {}
            Ok(false) => break,
            Err(e) => return Err(JournalError::Io(e)),
        }
        let len = u32::from_le_bytes(len_buf);
        if len == 0 || len > MAX_RECORD_BYTES {
            return Err(JournalError::Corrupt {
                shard,
                record: records.len() as u64,
                detail: format!("record length {len} outside (0, {MAX_RECORD_BYTES}]"),
            });
        }
        let mut body = vec![0u8; len as usize];
        match source.read_exact(&mut body) {
            Ok(()) => {}
            // Fewer than `len` body bytes on disk: torn tail, clean stop.
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(JournalError::Io(e)),
        }
        // All `len` bytes are present, so any verification failure is real
        // corruption — even on the final record.
        let record = JournalRecord::decode_body(&body).map_err(|e| JournalError::Corrupt {
            shard,
            record: records.len() as u64,
            detail: e.to_string(),
        })?;
        records.push(record);
        clean_end += 4 + u64::from(len);
    }
    Ok((records, clean_end))
}

/// Reads exactly `buf.len()` bytes, returning `Ok(false)` on clean EOF at
/// offset zero and treating a *partial* read ending in EOF the same way
/// (both are torn-tail shapes for the caller).
pub(crate) fn read_exact_or_eof<R: Read>(source: &mut R, buf: &mut [u8]) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match source.read(&mut buf[filled..]) {
            Ok(0) => return Ok(false),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Applies replayed records to a shard pipeline in append order — the second
/// half of `snapshot + journal tail replay` recovery. Mutations are enqueued
/// through the pipeline's normal ingest surface; the caller flushes afterwards
/// (recovery flushes once per shard, not once per record).
pub(crate) fn apply_records(pipeline: &mut ParallelHiggs, records: Vec<JournalRecord>) {
    for record in records {
        match record {
            JournalRecord::Insert(edge) => pipeline.insert(&edge),
            JournalRecord::InsertBatch(edges) => {
                for edge in &edges {
                    pipeline.insert(edge);
                }
            }
            JournalRecord::Delete(edge) => pipeline.delete(&edge),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "higgs-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn edge(i: u64) -> StreamEdge {
        StreamEdge::new(i, i + 1, 1 + i % 5, i)
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Insert(edge(1)),
            JournalRecord::InsertBatch((0..20).map(edge).collect()),
            JournalRecord::Delete(edge(3)),
            JournalRecord::Insert(edge(4)),
        ]
    }

    fn write_records(dir: &Path, shard: usize, records: &[JournalRecord]) {
        let mut journal = Journal::open(dir, shard, JournalMode::Buffered, 0).expect("open");
        for r in records {
            journal.append(r).expect("append");
        }
    }

    #[test]
    fn records_round_trip_in_append_order() {
        let dir = temp_dir("roundtrip");
        let records = sample_records();
        write_records(&dir, 0, &records);
        assert_eq!(replay(&dir, 0, 0).expect("replay"), records);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn missing_and_empty_journals_replay_to_nothing() {
        let dir = temp_dir("empty");
        // Missing file.
        assert_eq!(replay(&dir, 0, 0).expect("missing"), Vec::new());
        // Header-only file (opened but never appended).
        let journal = Journal::open(&dir, 0, JournalMode::Buffered, 0).expect("open");
        drop(journal);
        assert_eq!(replay(&dir, 0, 0).expect("header only"), Vec::new());
        // A torn header (shorter than HEADER_LEN) means nothing was ever
        // journaled: replay cleanly as empty.
        std::fs::write(dir.join(journal_file_name(1)), b"HIG").expect("torn header");
        assert_eq!(replay(&dir, 1, 0).expect("torn header"), Vec::new());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn torn_tail_replays_the_prefix() {
        let dir = temp_dir("torn");
        let records = sample_records();
        write_records(&dir, 0, &records);
        let path = dir.join(journal_file_name(0));
        let full = std::fs::read(&path).expect("read journal");

        // Truncate at every byte boundary inside the final record (including
        // inside its length prefix): replay must return exactly the first
        // three records every time — never an error, never a partial fourth.
        let last_body_len = encode_record_body(records[3].shape())
            .expect("encode")
            .len();
        let last_record_len = 4 + last_body_len;
        let prefix_end = full.len() - last_record_len;
        for cut in prefix_end..full.len() {
            std::fs::write(&path, &full[..cut]).expect("truncate");
            let replayed = replay(&dir, 0, 0).expect("torn tail must replay cleanly");
            assert_eq!(replayed, records[..3], "cut at byte {cut}");
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn interior_bit_flip_is_typed_corruption() {
        let dir = temp_dir("bitflip");
        let records = sample_records();
        write_records(&dir, 0, &records);
        let path = dir.join(journal_file_name(0));
        let full = std::fs::read(&path).expect("read journal");

        // Flip one bit inside the second record's body: every record is
        // individually checksummed, so replay must fail with Corrupt naming
        // that record — not stop early, not return wrong data.
        let first_len = 4 + encode_record_body(records[0].shape())
            .expect("encode")
            .len();
        let mut corrupted = full.clone();
        let target = HEADER_LEN as usize + first_len + 10;
        corrupted[target] ^= 0x10;
        std::fs::write(&path, &corrupted).expect("corrupt");
        match replay(&dir, 0, 0) {
            Err(JournalError::Corrupt { shard, record, .. }) => {
                assert_eq!(shard, 0);
                assert_eq!(record, 1);
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn bad_magic_and_version_are_corruption() {
        let dir = temp_dir("header");
        write_records(&dir, 0, &sample_records());
        let path = dir.join(journal_file_name(0));
        let full = std::fs::read(&path).expect("read");

        let mut bad_magic = full.clone();
        bad_magic[0] ^= 0xFF;
        std::fs::write(&path, &bad_magic).expect("write");
        assert!(matches!(
            replay(&dir, 0, 0),
            Err(JournalError::Corrupt { record: 0, .. })
        ));

        let mut bad_version = full.clone();
        bad_version[8] = 0xEE;
        std::fs::write(&path, &bad_version).expect("write");
        let err = replay(&dir, 0, 0).expect_err("future version must be refused");
        assert!(err.to_string().contains("version"), "{err}");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn truncate_resets_to_an_empty_journal_that_can_keep_appending() {
        let dir = temp_dir("truncate");
        let mut journal = Journal::open(&dir, 2, JournalMode::SyncEveryN(2), 0).expect("open");
        for r in &sample_records() {
            journal.append(r).expect("append");
        }
        journal.sync().expect("sync");
        // Rotation stamps the covering manifest's checksum into the header.
        journal.truncate(0xFEED).expect("truncate");
        assert_eq!(replay(&dir, 2, 0xFEED).expect("after truncate"), Vec::new());
        // The same handle keeps appending into the rotated journal.
        let tail = JournalRecord::Insert(edge(99));
        journal.append(&tail).expect("append after truncate");
        drop(journal);
        assert_eq!(replay(&dir, 2, 0xFEED).expect("tail"), vec![tail]);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn stale_covering_stamp_discards_the_journal() {
        // The rotation commit window: the snapshot manifest became durable
        // but the crash hit before this journal was truncated. Its records
        // are inside the snapshot, so replaying against the *new* manifest
        // checksum must discard them — and re-arming the journal must reset
        // it — while replaying against the stamp it was written under still
        // sees them (the crash-before-manifest case).
        let dir = temp_dir("stale");
        let records = sample_records();
        write_records(&dir, 0, &records); // stamped with covering = 0
        assert_eq!(replay(&dir, 0, 0).expect("matching stamp"), records);
        let new_manifest = 0xDEAD_BEEF_u64;
        assert_eq!(
            replay(&dir, 0, new_manifest).expect("stale stamp"),
            Vec::new(),
            "a journal predating the manifest must not double-apply"
        );
        // Re-arming against the new manifest resets the stale journal.
        let mut journal =
            Journal::open(&dir, 0, JournalMode::Buffered, new_manifest).expect("re-arm");
        let tail = JournalRecord::Insert(edge(7));
        journal.append(&tail).expect("append");
        drop(journal);
        assert_eq!(
            replay(&dir, 0, new_manifest).expect("fresh tail"),
            vec![tail]
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn reopening_appends_after_existing_records() {
        let dir = temp_dir("reopen");
        let first = vec![JournalRecord::Insert(edge(1))];
        write_records(&dir, 0, &first);
        // The post-crash re-arm path: open the surviving journal and extend.
        let mut journal = Journal::open(&dir, 0, JournalMode::Buffered, 0).expect("reopen");
        let second = JournalRecord::Delete(edge(1));
        journal.append(&second).expect("append");
        drop(journal);
        assert_eq!(
            replay(&dir, 0, 0).expect("replay"),
            vec![first[0].clone(), second]
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn rearming_over_a_torn_tail_trims_before_appending() {
        // The crash-then-recover-then-crash shape: a journal with a torn
        // final record is re-armed by Journal::open, which must trim the
        // partial bytes first — appending after them would make the *next*
        // replay stop at the tear and silently discard the new records.
        let dir = temp_dir("rearm-torn");
        let records = sample_records();
        write_records(&dir, 0, &records);
        let path = dir.join(journal_file_name(0));
        let full = std::fs::read(&path).expect("read journal");
        let last_body_len = encode_record_body(records[3].shape())
            .expect("encode")
            .len();
        let last_record_len = 4 + last_body_len;
        let prefix_end = full.len() - last_record_len;
        // Every tear point inside the final record, including a bare partial
        // length prefix and a zero-extra-bytes boundary just past it.
        for cut in prefix_end + 1..full.len() {
            std::fs::write(&path, &full[..cut]).expect("tear");
            let mut journal = Journal::open(&dir, 0, JournalMode::Buffered, 0).expect("re-arm");
            let tail = JournalRecord::Insert(edge(1000 + cut as u64));
            journal.append(&tail).expect("append after trim");
            drop(journal);
            let mut expected: Vec<JournalRecord> = records[..3].to_vec();
            expected.push(tail);
            assert_eq!(
                replay(&dir, 0, 0).expect("replay after re-arm"),
                expected,
                "cut at byte {cut}: the trimmed journal must replay the \
                 complete prefix plus every post-recovery append"
            );
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn oversized_length_prefix_is_corruption() {
        let dir = temp_dir("oversize");
        let journal = Journal::open(&dir, 0, JournalMode::Buffered, 0).expect("open");
        drop(journal);
        let path = dir.join(journal_file_name(0));
        let mut bytes = std::fs::read(&path).expect("read");
        bytes.extend_from_slice(&(MAX_RECORD_BYTES + 1).to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        std::fs::write(&path, &bytes).expect("write");
        assert!(matches!(
            replay(&dir, 0, 0),
            Err(JournalError::Corrupt { record: 0, .. })
        ));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn journal_error_messages_name_the_failure() {
        let io = JournalError::from(std::io::Error::other("disk on fire"));
        assert!(io.to_string().contains("disk on fire"));
        assert!(matches!(io, JournalError::Io(_)));
        let corrupt = JournalError::Corrupt {
            shard: 3,
            record: 7,
            detail: "checksum mismatch".into(),
        };
        let msg = corrupt.to_string();
        assert!(msg.contains("shard 3"), "{msg}");
        assert!(msg.contains("record 7"), "{msg}");
        assert!(msg.contains("checksum mismatch"), "{msg}");
        use std::error::Error;
        assert!(io.source().is_some());
        assert!(corrupt.source().is_none());
    }

    #[test]
    fn edge_count_reflects_record_shape() {
        assert_eq!(JournalRecord::Insert(edge(1)).edge_count(), 1);
        assert_eq!(JournalRecord::Delete(edge(1)).edge_count(), 1);
        assert_eq!(
            JournalRecord::InsertBatch((0..7).map(edge).collect()).edge_count(),
            7
        );
    }
}
