//! Snapshot / restore persistence for HIGGS summaries and the sharded
//! service (the *warm restart* subsystem).
//!
//! A production service cannot re-ingest its whole stream after every
//! restart; the HIGGS summary **is** the state worth persisting — orders of
//! magnitude smaller than the raw temporal graph. This module defines a
//! versioned binary snapshot format on top of
//! [`higgs_common::codec`] (checksummed little-endian primitives with
//! length-prefixed sections) and two persistence surfaces:
//!
//! * [`HiggsSummary::write_snapshot`] / [`HiggsSummary::read_snapshot`] —
//!   one summary to/from any `Write`/`Read` stream, and
//! * [`ShardedHiggs::snapshot_to_dir`] / [`Store::open`](crate::Store::open)
//!   — the whole sharded service to/from a directory: one file per shard
//!   plus a [`SnapshotManifest`].
//!
//! # File format (version 1)
//!
//! Every file opens with an 8-byte magic and a `u32` format version,
//! continues with length-prefixed sections (`tag: u16 | len: u64 |
//! payload`), and closes with a `u64` FNV-1a checksum over every preceding
//! byte. A summary file carries four sections:
//!
//! | tag | section   | contents                                            |
//! |-----|-----------|-----------------------------------------------------|
//! | 1   | config    | every [`HiggsConfig`] knob                          |
//! | 2   | meta      | `total_items`, mutation epoch, deferred-aggregation flag, pending jobs |
//! | 3   | leaves    | per leaf: time range, item count, slab matrix, overflow chain |
//! | 4   | internals | per level, per node: time range, optional aggregate matrix |
//!
//! Slab matrices are persisted **raw**: the per-bucket occupancy array
//! followed by only the occupied slots in slab order (empty slots carry no
//! information), then the spill list — so a snapshot's size tracks the
//! stored entries, and restore rebuilds the exact same slab bytes. Runtime
//! state (plan cache, plan counter) is deliberately *not* persisted: it is
//! re-derivable and epoch-guarded, so a restored summary starts with a cold
//! plan cache but the **persisted mutation epoch**, keeping epoch
//! monotonicity across restarts.
//!
//! The manifest file (tag 5) records the format version, the full service
//! config (including the shard count — routing is the pure function
//! [`higgs_common::hashing::shard_of`] of `(vertex, shards)`, so no routing
//! seed beyond the count exists), and each shard file's checksum and item
//! count. Restore verifies, in order: manifest magic/version/checksum, that
//! no extra shard file exists beyond the manifest's count
//! ([`SnapshotError::ShardCountMismatch`]), then each shard file's own
//! checksum **and** its manifest-recorded checksum
//! ([`SnapshotError::ShardChecksumMismatch`]) before any shard state is
//! served.
//!
//! # Consistency guarantee
//!
//! [`ShardedHiggs::snapshot_to_dir`] first drives the acked-`Flush` clock
//! (the same mechanism that makes queries read-your-writes), so the snapshot
//! covers every mutation enqueued before the call — by the caller or any
//! [`IngestHandle`](crate::IngestHandle) clone — including background
//! aggregations. Mutations enqueued concurrently *during* the snapshot may
//! or may not be included per shard (the same per-shard-prefix semantics
//! concurrent readers get); quiesce producers first if a global cut is
//! required.
//!
//! # Versioning policy
//!
//! `FORMAT_VERSION` is bumped on any layout change. Readers reject files
//! with a newer version than they understand
//! ([`SnapshotError::UnsupportedVersion`]) instead of guessing; older
//! versions remain readable for as long as the changelog documents them
//! (version 1 is the initial format). Unknown *trailing* sections are a
//! forward-compatible extension point — the section length lets a reader
//! skip what it does not understand.

use crate::config::{ConfigError, HiggsConfig, JournalMode};
use crate::journal::{failpoint, JournalError};
use crate::matrix::{CompressedMatrix, Slot, SpillEntry};
use crate::node::{InternalNode, LeafNode};
use crate::overflow::OverflowChain;
use crate::parallel::ParallelHiggs;
use crate::shard::ShardedHiggs;
use crate::tree::{HiggsSummary, PendingAggregation};
use higgs_common::codec::{CodecError, Decoder, Encoder};
use std::fmt;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};

/// Magic opening a single-summary snapshot file (`HIGGSSUM`).
pub const SUMMARY_MAGIC: u64 = u64::from_le_bytes(*b"HIGGSSUM");
/// Magic opening a sharded-service manifest file (`HIGGSMAN`).
pub const MANIFEST_MAGIC: u64 = u64::from_le_bytes(*b"HIGGSMAN");
/// Current snapshot format version (see the module docs for the policy).
pub const FORMAT_VERSION: u32 = 1;

/// Manifest file name inside a snapshot directory.
pub const MANIFEST_FILE: &str = "manifest.higgs";

const TAG_CONFIG: u16 = 1;
const TAG_META: u16 = 2;
const TAG_LEAVES: u16 = 3;
const TAG_INTERNALS: u16 = 4;
const TAG_MANIFEST: u16 = 5;

// Decode-side sanity limits: far above anything a real summary holds, low
// enough that a corrupt length can never drive a huge allocation.
const MAX_LEAVES: u64 = 1 << 32;
const MAX_LEVELS: u64 = 64;
const MAX_NODES: u64 = 1 << 32;
const MAX_BLOCKS: u64 = 1 << 24;
const MAX_SPILL: u64 = 1 << 32;
const MAX_PENDING: u64 = 1 << 32;
const MAX_MATRIX_SIDE: u64 = 1 << 20;

/// Upper bound on any single up-front allocation during decode (in
/// elements). Counts and geometry fields are read **before** the checksum
/// can be verified (it trails the file), so a corrupt length must never be
/// trusted with a large `Vec::with_capacity`: buffers start at most this
/// big and grow only as bytes actually arrive from the source, which means
/// a truncated or bit-flipped file fails with a typed error after a small,
/// bounded allocation instead of aborting on OOM.
const MAX_PREALLOC: usize = 1 << 16;

/// Reads exactly `total` bytes in bounded chunks, growing the buffer as the
/// data actually arrives (see [`MAX_PREALLOC`]).
fn read_chunked_bytes<R: Read>(dec: &mut Decoder<R>, total: usize) -> Result<Vec<u8>, CodecError> {
    let mut bytes = Vec::with_capacity(total.min(MAX_PREALLOC));
    while bytes.len() < total {
        let take = (total - bytes.len()).min(MAX_PREALLOC);
        let start = bytes.len();
        bytes.resize(start + take, 0);
        dec.get_bytes(&mut bytes[start..])?;
    }
    Ok(bytes)
}

/// Why a snapshot write or restore failed. Every failure mode is typed —
/// corruption is reported, never a panic or a silently wrong summary.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem / stream I/O failed.
    Io(std::io::Error),
    /// The byte stream violated the codec layer: truncated input, a
    /// checksum mismatch, or a malformed primitive.
    Codec(CodecError),
    /// The file does not open with the expected magic (not a snapshot, or
    /// the wrong kind of snapshot file).
    BadMagic {
        /// The magic the reader expected.
        expected: u64,
        /// The bytes actually found.
        found: u64,
    },
    /// The file was written by a newer format version than this build
    /// understands.
    UnsupportedVersion {
        /// Version recorded in the file.
        found: u32,
        /// Newest version this build reads.
        supported: u32,
    },
    /// The persisted configuration failed [`HiggsConfig::validate`].
    Config(ConfigError),
    /// A structural invariant was violated after the bytes decoded cleanly
    /// (e.g. occupancy exceeding the bucket capacity); the message names the
    /// violation.
    Corrupt(String),
    /// The snapshot directory holds a different number of shard files than
    /// the manifest declares.
    ShardCountMismatch {
        /// Shard count recorded in the manifest.
        manifest: usize,
        /// Shard files actually present.
        found: usize,
    },
    /// A shard file's content checksum does not match what the manifest
    /// recorded for it (the file was swapped or modified after the
    /// snapshot).
    ShardChecksumMismatch {
        /// Index of the offending shard.
        shard: usize,
        /// Checksum recorded in the manifest.
        manifest: u64,
        /// Checksum computed from the shard file.
        file: u64,
    },
    /// A shard file named by the manifest is missing.
    MissingShard {
        /// Index of the missing shard.
        shard: usize,
        /// The path that was expected to exist.
        path: PathBuf,
    },
    /// Reading or replaying a shard's write-ahead journal failed during a
    /// durable restore (see [`crate::journal`]).
    Journal(JournalError),
    /// The service has a degraded shard (its writer failed and has not
    /// recovered), so a snapshot would capture partial state — and, for a
    /// durable service, truncating the journal afterwards would discard the
    /// shard's only intact record. Recover or rebuild the service first.
    DegradedShard {
        /// Index of the degraded shard.
        shard: usize,
    },
    /// [`Store::open`](crate::Store::open) with
    /// [`OpenMode::CreateNew`](crate::OpenMode::CreateNew) found the
    /// directory already initialised (it holds a snapshot manifest). Use
    /// `OpenExisting` / `OpenOrCreate` to recover it instead.
    AlreadyExists {
        /// The directory that is already initialised.
        dir: PathBuf,
    },
    /// Elastic history ([`StoreOptions::elastic`](crate::StoreOptions::elastic))
    /// cannot be provided for this open: journaling is off, or the directory
    /// already holds non-elastic state whose mutation history was never
    /// recorded. The message names the missing prerequisite.
    ElasticUnavailable {
        /// What exactly is missing.
        detail: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::Codec(e) => write!(f, "snapshot encoding error: {e}"),
            SnapshotError::BadMagic { expected, found } => write!(
                f,
                "bad snapshot magic: expected {expected:#018x}, found {found:#018x}"
            ),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is newer than the supported version {supported}"
            ),
            SnapshotError::Config(e) => write!(f, "persisted configuration is invalid: {e}"),
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            SnapshotError::ShardCountMismatch { manifest, found } => write!(
                f,
                "manifest declares {manifest} shard(s) but the directory holds {found}"
            ),
            SnapshotError::ShardChecksumMismatch {
                shard,
                manifest,
                file,
            } => write!(
                f,
                "shard {shard} checksum {file:#018x} does not match the manifest's {manifest:#018x}"
            ),
            SnapshotError::MissingShard { shard, path } => {
                write!(f, "shard {shard} file missing: {}", path.display())
            }
            SnapshotError::Journal(e) => write!(f, "journal replay failed: {e}"),
            SnapshotError::DegradedShard { shard } => write!(
                f,
                "shard {shard} is degraded: its writer failed and has not recovered, \
                 so a snapshot would capture partial state"
            ),
            SnapshotError::AlreadyExists { dir } => write!(
                f,
                "directory {} is already initialised (CreateNew refuses to recover \
                 existing state; open it with OpenExisting or OpenOrCreate)",
                dir.display()
            ),
            SnapshotError::ElasticUnavailable { detail } => {
                write!(f, "elastic history unavailable: {detail}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            SnapshotError::Codec(e) => Some(e),
            SnapshotError::Config(e) => Some(e),
            SnapshotError::Journal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<CodecError> for SnapshotError {
    fn from(e: CodecError) -> Self {
        SnapshotError::Codec(e)
    }
}

impl From<ConfigError> for SnapshotError {
    fn from(e: ConfigError) -> Self {
        SnapshotError::Config(e)
    }
}

// --- primitive encoders ----------------------------------------------------

fn encode_config<W: Write>(
    enc: &mut Encoder<W>,
    config: &HiggsConfig,
) -> Result<(), SnapshotError> {
    enc.put_u64(config.d1)?;
    enc.put_u32(config.f1_bits)?;
    enc.put_u32(config.r_bits)?;
    enc.put_u64(config.bucket_entries as u64)?;
    enc.put_u32(config.mapping_addresses)?;
    enc.put_bool(config.overflow_blocks)?;
    enc.put_u64(config.shards as u64)?;
    enc.put_u64(config.plan_cache_capacity as u64)?;
    match config.ingest_queue_cap {
        Some(cap) => {
            enc.put_bool(true)?;
            enc.put_u64(cap as u64)?;
        }
        None => enc.put_bool(false)?,
    }
    Ok(())
}

fn decode_config<R: Read>(dec: &mut Decoder<R>) -> Result<HiggsConfig, SnapshotError> {
    let d1 = dec.get_u64()?;
    let f1_bits = dec.get_u32()?;
    let r_bits = dec.get_u32()?;
    let bucket_entries = dec.get_len(u8::MAX as u64, "bucket_entries")?;
    let mapping_addresses = dec.get_u32()?;
    let overflow_blocks = dec.get_bool()?;
    let shards = dec.get_len(crate::shard::MAX_SHARDS as u64, "shards")?;
    let plan_cache_capacity = dec.get_len(u32::MAX as u64, "plan_cache_capacity")?;
    let ingest_queue_cap = if dec.get_bool()? {
        Some(dec.get_len(u64::MAX >> 1, "ingest_queue_cap")?)
    } else {
        None
    };
    let config = HiggsConfig {
        d1,
        f1_bits,
        r_bits,
        bucket_entries,
        mapping_addresses,
        overflow_blocks,
        shards,
        plan_cache_capacity,
        ingest_queue_cap,
        // Worker pinning, admission tick, submission-queue depth and the
        // journal sync policy are runtime state of the serving process, not
        // data: the snapshot format does not carry them, and a restored
        // service starts with the inert defaults (the restoring caller may
        // opt back in on its own machine — `Store::open` re-arms
        // journaling from its caller's config).
        pin_workers: false,
        admission_tick: std::time::Duration::ZERO,
        service_queue_depth: None,
        journal_mode: JournalMode::Off,
    };
    config.validate()?;
    Ok(config)
}

fn encode_matrix<W: Write>(
    enc: &mut Encoder<W>,
    matrix: &CompressedMatrix,
) -> Result<(), SnapshotError> {
    enc.put_u64(matrix.side())?;
    enc.put_u32(matrix.layer())?;
    enc.put_u64(matrix.bucket_entries() as u64)?;
    enc.put_u32(matrix.mapping())?;
    let lens = matrix.raw_lens();
    enc.put_bytes(lens)?;
    for bucket in 0..lens.len() {
        for slot in matrix.bucket_occupied_slots(bucket) {
            enc.put_u64(slot.key)?;
            enc.put_u16(slot.idx)?;
            enc.put_u32(slot.time_offset)?;
            enc.put_i64(slot.weight)?;
        }
    }
    enc.put_u64(matrix.spill_entries().len() as u64)?;
    for spill in matrix.spill_entries() {
        enc.put_u64(spill.addr_src)?;
        enc.put_u64(spill.addr_dst)?;
        enc.put_u32(spill.fp_src)?;
        enc.put_u32(spill.fp_dst)?;
        enc.put_i64(spill.weight)?;
    }
    Ok(())
}

fn decode_matrix<R: Read>(dec: &mut Decoder<R>) -> Result<CompressedMatrix, SnapshotError> {
    let side = dec.get_u64()?;
    let layer = dec.get_u32()?;
    let bucket_entries = dec.get_len(u8::MAX as u64, "matrix bucket_entries")?;
    let mapping = dec.get_u32()?;
    // Pre-validate what CompressedMatrix::new would otherwise assert on, so
    // a corrupt snapshot reports a typed error instead of panicking.
    if !side.is_power_of_two() || !(2..=MAX_MATRIX_SIDE).contains(&side) {
        return Err(SnapshotError::Corrupt(format!(
            "matrix side {side} is not a power of two in [2, {MAX_MATRIX_SIDE}]"
        )));
    }
    if bucket_entries == 0 {
        return Err(SnapshotError::Corrupt(
            "matrix bucket_entries must be at least 1".into(),
        ));
    }
    if mapping == 0 || mapping as usize > crate::matrix::MAX_MAPPING {
        return Err(SnapshotError::Corrupt(format!(
            "matrix mapping {mapping} outside [1, {}]",
            crate::matrix::MAX_MAPPING
        )));
    }
    // Read everything BEFORE constructing the matrix: `CompressedMatrix::new`
    // eagerly allocates `b · d²` slots, so a corrupt `side` field must first
    // have to prove itself by actually delivering `d²` occupancy bytes —
    // a bit-flipped geometry on a small file dies with UnexpectedEof after a
    // bounded chunked read, never with an OOM abort.
    let buckets = (side * side) as usize;
    let lens = read_chunked_bytes(dec, buckets)?;
    let occupied_count: usize = lens.iter().map(|&l| l as usize).sum();
    let mut occupied = Vec::with_capacity(occupied_count.min(MAX_PREALLOC));
    for _ in 0..occupied_count {
        occupied.push(Slot {
            key: dec.get_u64()?,
            idx: dec.get_u16()?,
            time_offset: dec.get_u32()?,
            weight: dec.get_i64()?,
        });
    }
    let spill_count = dec.get_len(MAX_SPILL, "matrix spill count")?;
    let mut spill = Vec::with_capacity(spill_count.min(MAX_PREALLOC));
    for _ in 0..spill_count {
        spill.push(SpillEntry {
            addr_src: dec.get_u64()?,
            addr_dst: dec.get_u64()?,
            fp_src: dec.get_u32()?,
            fp_dst: dec.get_u32()?,
            weight: dec.get_i64()?,
        });
    }
    let mut matrix = CompressedMatrix::new(side, layer, bucket_entries, mapping);
    matrix
        .restore_slab(lens, occupied, spill)
        .map_err(SnapshotError::Corrupt)?;
    Ok(matrix)
}

fn encode_chain<W: Write>(
    enc: &mut Encoder<W>,
    chain: &OverflowChain,
) -> Result<(), SnapshotError> {
    let (side, bucket_entries, mapping) = chain.geometry();
    enc.put_u64(side)?;
    enc.put_u64(bucket_entries as u64)?;
    enc.put_u32(mapping)?;
    enc.put_u64(chain.blocks().len() as u64)?;
    for block in chain.blocks() {
        encode_matrix(enc, block)?;
    }
    Ok(())
}

fn decode_chain<R: Read>(dec: &mut Decoder<R>) -> Result<OverflowChain, SnapshotError> {
    let side = dec.get_u64()?;
    let bucket_entries = dec.get_len(u8::MAX as u64, "overflow bucket_entries")?;
    let mapping = dec.get_u32()?;
    // The chain geometry seeds `CompressedMatrix::new` for every FUTURE
    // overflow block (the first post-restore same-timestamp burst), whose
    // asserts would then panic inside a live service — validate it now, with
    // the same bounds decode_matrix applies, so corrupt geometry is a typed
    // error at restore time.
    if !side.is_power_of_two() || !(2..=MAX_MATRIX_SIDE).contains(&side) {
        return Err(SnapshotError::Corrupt(format!(
            "overflow chain side {side} is not a power of two in [2, {MAX_MATRIX_SIDE}]"
        )));
    }
    if bucket_entries == 0 {
        return Err(SnapshotError::Corrupt(
            "overflow chain bucket_entries must be at least 1".into(),
        ));
    }
    if mapping == 0 || mapping as usize > crate::matrix::MAX_MAPPING {
        return Err(SnapshotError::Corrupt(format!(
            "overflow chain mapping {mapping} outside [1, {}]",
            crate::matrix::MAX_MAPPING
        )));
    }
    let blocks_len = dec.get_len(MAX_BLOCKS, "overflow block count")?;
    let mut blocks = Vec::with_capacity(blocks_len.min(MAX_PREALLOC));
    for _ in 0..blocks_len {
        blocks.push(decode_matrix(dec)?);
    }
    Ok(OverflowChain::from_restored_parts(
        side,
        bucket_entries,
        mapping,
        blocks,
    ))
}

fn encode_leaf<W: Write>(enc: &mut Encoder<W>, leaf: &LeafNode) -> Result<(), SnapshotError> {
    enc.put_u64(leaf.start_time)?;
    enc.put_u64(leaf.end_time)?;
    enc.put_u64(leaf.items)?;
    encode_matrix(enc, &leaf.matrix)?;
    encode_chain(enc, &leaf.overflow)
}

fn decode_leaf<R: Read>(dec: &mut Decoder<R>) -> Result<LeafNode, SnapshotError> {
    let start_time = dec.get_u64()?;
    let end_time = dec.get_u64()?;
    let items = dec.get_u64()?;
    if end_time < start_time {
        return Err(SnapshotError::Corrupt(format!(
            "leaf time range [{start_time}, {end_time}] is inverted"
        )));
    }
    let matrix = decode_matrix(dec)?;
    let overflow = decode_chain(dec)?;
    let mut leaf = LeafNode::new(matrix, overflow, start_time);
    leaf.end_time = end_time;
    leaf.items = items;
    Ok(leaf)
}

/// Builds a section payload with an in-memory encoder.
fn section_payload(
    build: impl FnOnce(&mut Encoder<&mut Vec<u8>>) -> Result<(), SnapshotError>,
) -> Result<Vec<u8>, SnapshotError> {
    let mut payload = Vec::new();
    let mut enc = Encoder::new(&mut payload);
    build(&mut enc)?;
    Ok(payload)
}

fn read_header<R: Read>(dec: &mut Decoder<R>, expected_magic: u64) -> Result<(), SnapshotError> {
    let magic = dec.get_u64()?;
    if magic != expected_magic {
        return Err(SnapshotError::BadMagic {
            expected: expected_magic,
            found: magic,
        });
    }
    let version = dec.get_u32()?;
    if version > FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    Ok(())
}

/// Reads a section header and checks the tag is the expected one (sections
/// are written in a fixed order in version 1).
fn expect_section<R: Read>(
    dec: &mut Decoder<R>,
    expected: u16,
) -> Result<(u64, u64), SnapshotError> {
    let (tag, len) = dec.section_header()?;
    if tag != expected {
        return Err(SnapshotError::Corrupt(format!(
            "expected section {expected}, found {tag}"
        )));
    }
    Ok((len, dec.bytes_read()))
}

impl HiggsSummary {
    /// Serialises this summary into `sink` as one self-contained snapshot
    /// document (magic, version, config / meta / leaves / internals
    /// sections, trailing checksum). Returns the document checksum — the
    /// value [`ShardedHiggs::snapshot_to_dir`] records per shard in its
    /// manifest.
    ///
    /// Deferred-aggregation state is persisted faithfully: unmaterialised
    /// internal nodes are written without a matrix and the pending-job list
    /// rides along, so snapshotting a [`ParallelHiggs`]-driven summary
    /// mid-aggregation restores to exactly the same (still correct,
    /// leaf-descending) query behaviour. Snapshot after a flush for fully
    /// materialised files.
    pub fn write_snapshot<W: Write>(&self, sink: &mut W) -> Result<u64, SnapshotError> {
        let mut enc = Encoder::new(sink);
        enc.put_u64(SUMMARY_MAGIC)?;
        enc.put_u32(FORMAT_VERSION)?;

        let config_payload = section_payload(|enc| encode_config(enc, &self.config))?;
        enc.section(TAG_CONFIG, &config_payload)?;

        let meta_payload = section_payload(|enc| {
            enc.put_u64(self.total_items)?;
            enc.put_u64(self.epoch)?;
            enc.put_bool(self.defer_aggregation)?;
            enc.put_u64(self.pending.len() as u64)?;
            for job in &self.pending {
                enc.put_u64(job.level as u64)?;
                enc.put_u64(job.index as u64)?;
            }
            Ok(())
        })?;
        enc.section(TAG_META, &meta_payload)?;

        let leaves_payload = section_payload(|enc| {
            enc.put_u64(self.leaves.len() as u64)?;
            for leaf in &self.leaves {
                encode_leaf(enc, leaf)?;
            }
            Ok(())
        })?;
        enc.section(TAG_LEAVES, &leaves_payload)?;

        let internals_payload = section_payload(|enc| {
            enc.put_u64(self.internals.len() as u64)?;
            for level in &self.internals {
                enc.put_u64(level.len() as u64)?;
                for node in level {
                    enc.put_u64(node.start_time)?;
                    enc.put_u64(node.end_time)?;
                    match &node.matrix {
                        Some(matrix) => {
                            enc.put_bool(true)?;
                            encode_matrix(enc, matrix)?;
                        }
                        None => enc.put_bool(false)?,
                    }
                }
            }
            Ok(())
        })?;
        enc.section(TAG_INTERNALS, &internals_payload)?;

        Ok(enc.finish_with_checksum()?)
    }

    /// Reads a snapshot written by [`write_snapshot`](Self::write_snapshot)
    /// back into a summary, verifying magic, format version, section
    /// framing, structural invariants, and the trailing checksum. On success
    /// the returned summary answers every query bit-identically to the one
    /// that was snapshotted (with a cold plan cache); every failure mode is
    /// a typed [`SnapshotError`].
    pub fn read_snapshot<R: Read>(source: &mut R) -> Result<Self, SnapshotError> {
        let (summary, _) = Self::read_snapshot_with_checksum(source)?;
        Ok(summary)
    }

    /// [`read_snapshot`](Self::read_snapshot), additionally returning the
    /// verified document checksum (compared against the manifest during
    /// sharded restore).
    pub fn read_snapshot_with_checksum<R: Read>(
        source: &mut R,
    ) -> Result<(Self, u64), SnapshotError> {
        let mut dec = Decoder::new(source);
        read_header(&mut dec, SUMMARY_MAGIC)?;

        let (len, start) = expect_section(&mut dec, TAG_CONFIG)?;
        let config = decode_config(&mut dec)?;
        dec.expect_section_end(start, len, TAG_CONFIG)?;

        let (len, start) = expect_section(&mut dec, TAG_META)?;
        let total_items = dec.get_u64()?;
        let epoch = dec.get_u64()?;
        let defer_aggregation = dec.get_bool()?;
        let pending_len = dec.get_len(MAX_PENDING, "pending job count")?;
        let mut pending = Vec::with_capacity(pending_len.min(MAX_PREALLOC));
        for _ in 0..pending_len {
            pending.push(PendingAggregation {
                level: dec.get_len(MAX_LEVELS, "pending job level")?,
                index: dec.get_len(MAX_NODES, "pending job index")?,
            });
        }
        dec.expect_section_end(start, len, TAG_META)?;

        let (len, start) = expect_section(&mut dec, TAG_LEAVES)?;
        let leaf_count = dec.get_len(MAX_LEAVES, "leaf count")?;
        let mut leaves = Vec::with_capacity(leaf_count.min(MAX_PREALLOC));
        for _ in 0..leaf_count {
            leaves.push(decode_leaf(&mut dec)?);
        }
        dec.expect_section_end(start, len, TAG_LEAVES)?;

        let (len, start) = expect_section(&mut dec, TAG_INTERNALS)?;
        let level_count = dec.get_len(MAX_LEVELS, "internal level count")?;
        let mut internals = Vec::with_capacity(level_count);
        for _ in 0..level_count {
            let node_count = dec.get_len(MAX_NODES, "internal node count")?;
            let mut nodes = Vec::with_capacity(node_count.min(MAX_PREALLOC));
            for _ in 0..node_count {
                let start_time = dec.get_u64()?;
                let end_time = dec.get_u64()?;
                let matrix = if dec.get_bool()? {
                    Some(decode_matrix(&mut dec)?)
                } else {
                    None
                };
                nodes.push(InternalNode {
                    matrix,
                    start_time,
                    end_time,
                });
            }
            internals.push(nodes);
        }
        dec.expect_section_end(start, len, TAG_INTERNALS)?;

        let checksum = dec.verify_checksum()?;

        // Cross-section validation: every pending aggregation job must name
        // an existing, unmaterialised internal node — a job pointing past
        // the restored tree would panic in `leaf_span` on the first insert
        // or flush, long after restore reported success. (The checksum does
        // not protect against this: it is trivially recomputable, so a
        // crafted or version-skewed file can be checksum-valid yet
        // structurally inconsistent.)
        for job in &pending {
            let node_exists = internals
                .get(job.level)
                .is_some_and(|nodes| job.index < nodes.len());
            if !node_exists {
                return Err(SnapshotError::Corrupt(format!(
                    "pending aggregation job (level {}, index {}) does not name an \
                     internal node of the restored tree",
                    job.level, job.index
                )));
            }
        }

        let summary = HiggsSummary::from_restored_parts(
            config,
            leaves,
            internals,
            total_items,
            defer_aggregation,
            pending,
            epoch,
        )?;
        Ok((summary, checksum))
    }
}

/// The manifest of a sharded snapshot directory: format version, the full
/// service configuration (shard count included — routing needs nothing
/// else, `shard_of` is a pure function of `(vertex, shards)`), and one
/// checksum + item count per shard file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotManifest {
    /// Snapshot format version the directory was written with.
    pub format_version: u32,
    /// The service configuration, `shards` field included.
    pub config: HiggsConfig,
    /// Per-shard document checksums, indexed by shard.
    pub shard_checksums: Vec<u64>,
    /// Per-shard stored item counts at snapshot time (diagnostic).
    pub shard_items: Vec<u64>,
}

impl SnapshotManifest {
    /// Number of shards the snapshot holds.
    pub fn shard_count(&self) -> usize {
        self.shard_checksums.len()
    }

    /// Total items across all shards at snapshot time.
    pub fn total_items(&self) -> u64 {
        self.shard_items.iter().sum()
    }

    fn write_to(&self, sink: &mut impl Write) -> Result<u64, SnapshotError> {
        let mut enc = Encoder::new(sink);
        enc.put_u64(MANIFEST_MAGIC)?;
        enc.put_u32(self.format_version)?;
        let payload = section_payload(|enc| {
            encode_config(enc, &self.config)?;
            enc.put_u64(self.shard_checksums.len() as u64)?;
            for (&checksum, &items) in self.shard_checksums.iter().zip(&self.shard_items) {
                enc.put_u64(checksum)?;
                enc.put_u64(items)?;
            }
            Ok(())
        })?;
        enc.section(TAG_MANIFEST, &payload)?;
        Ok(enc.finish_with_checksum()?)
    }

    fn read_from(source: &mut impl Read) -> Result<Self, SnapshotError> {
        let mut dec = Decoder::new(source);
        let magic = dec.get_u64()?;
        if magic != MANIFEST_MAGIC {
            return Err(SnapshotError::BadMagic {
                expected: MANIFEST_MAGIC,
                found: magic,
            });
        }
        let format_version = dec.get_u32()?;
        if format_version > FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: format_version,
                supported: FORMAT_VERSION,
            });
        }
        let (len, start) = expect_section(&mut dec, TAG_MANIFEST)?;
        let config = decode_config(&mut dec)?;
        let shard_count = dec.get_len(crate::shard::MAX_SHARDS as u64, "manifest shard count")?;
        let mut shard_checksums = Vec::with_capacity(shard_count);
        let mut shard_items = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            shard_checksums.push(dec.get_u64()?);
            shard_items.push(dec.get_u64()?);
        }
        dec.expect_section_end(start, len, TAG_MANIFEST)?;
        dec.verify_checksum()?;
        if shard_count != config.shards {
            return Err(SnapshotError::Corrupt(format!(
                "manifest shard table holds {shard_count} entries but the config declares {} shards",
                config.shards
            )));
        }
        Ok(Self {
            format_version,
            config,
            shard_checksums,
            shard_items,
        })
    }

    /// Reads and verifies the manifest of a snapshot directory without
    /// touching the shard files (a cheap pre-flight / inspection hook).
    pub fn read_from_dir(dir: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        let path = dir.as_ref().join(MANIFEST_FILE);
        let mut file = std::fs::File::open(&path)?;
        Self::read_from(&mut file)
    }
}

/// File name of shard `index` inside a snapshot directory.
pub fn shard_file_name(index: usize) -> String {
    format!("shard-{index:03}.higgs")
}

/// Whether `dir` already holds a snapshot manifest (crate-internal: decides
/// between fresh start and recovery in `Store::open`).
pub(crate) fn manifest_exists(dir: &Path) -> bool {
    dir.join(MANIFEST_FILE).exists()
}

/// The trailing document checksum of the manifest in `dir`, or `0` when the
/// directory holds no (or a torn, sub-checksum-length) manifest. This is the
/// journal *covering stamp*: each shard journal records which manifest its
/// records extend, so recovery can tell a live journal tail from a stale
/// journal whose rotation was interrupted (see the [`crate::journal`] module
/// docs).
pub(crate) fn manifest_tail_checksum(dir: &Path) -> Result<u64, SnapshotError> {
    let path = dir.join(MANIFEST_FILE);
    let mut file = match std::fs::File::open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e.into()),
    };
    let len = file.metadata()?.len();
    if len < 8 {
        return Ok(0);
    }
    use std::io::{Read as _, Seek as _, SeekFrom};
    file.seek(SeekFrom::End(-8))?;
    let mut tail = [0u8; 8];
    file.read_exact(&mut tail)?;
    Ok(u64::from_le_bytes(tail))
}

/// Loads one shard's pipeline for writer recovery: the shard's snapshot file
/// when present (its own checksum verified), a fresh pipeline otherwise.
/// Unlike full restore this deliberately skips the manifest cross-checks —
/// recovery must work from whatever intact state survives.
pub(crate) fn load_shard_pipeline(
    dir: &Path,
    shard: usize,
    config: &HiggsConfig,
    workers: usize,
) -> Result<ParallelHiggs, SnapshotError> {
    let path = dir.join(shard_file_name(shard));
    match std::fs::File::open(&path) {
        Ok(f) => {
            let mut file = std::io::BufReader::new(f);
            let summary = HiggsSummary::read_snapshot(&mut file)?;
            Ok(ParallelHiggs::from_summary(summary, workers))
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(ParallelHiggs::new_on_core(
            *config,
            workers,
            ParallelHiggs::pin_core_for(config, shard),
        )),
        Err(e) => Err(e.into()),
    }
}

/// Restores per-shard pipelines from a snapshot directory and replays each
/// shard's journal tail on top (the recovery half of the rotation fence: a
/// mutation lives in exactly one of snapshot or journal, so snapshot +
/// replay reconstructs the full history). Returns the manifest's config
/// alongside the pipelines; nothing is spawned here.
pub(crate) fn restore_pipelines(
    dir: &Path,
    workers_per_shard: usize,
) -> Result<(HiggsConfig, Vec<ParallelHiggs>), SnapshotError> {
    let (config, mut pipelines) = restore_snapshot_pipelines(dir, workers_per_shard)?;
    // Journal tail replay: mutations that were journaled after the snapshot
    // the directory holds (e.g. the process crashed before the next
    // rotation). A directory without journals replays nothing, and a
    // journal stamped for an older manifest (interrupted rotation) is
    // discarded rather than double-applied.
    let covering = manifest_tail_checksum(dir)?;
    for (index, pipeline) in pipelines.iter_mut().enumerate() {
        let records =
            crate::journal::replay(dir, index, covering).map_err(SnapshotError::Journal)?;
        if !records.is_empty() {
            crate::journal::apply_records(pipeline, records);
            pipeline.flush();
        }
    }
    Ok((config, pipelines))
}

/// The snapshot-only half of [`restore_pipelines`]: restores per-shard
/// pipelines from the directory's snapshot **without** replaying journal
/// tails. This is the bootstrap of a [`Follower`](crate::Follower), which
/// must apply the leader's journals through its own cursor instead — a
/// replay here would double-apply every record the cursor then ships.
pub(crate) fn restore_snapshot_pipelines(
    dir: &Path,
    workers_per_shard: usize,
) -> Result<(HiggsConfig, Vec<ParallelHiggs>), SnapshotError> {
    let manifest = SnapshotManifest::read_from_dir(dir)?;
    let declared = manifest.shard_count();
    // An extra shard file beyond the declared count means the manifest
    // and the directory disagree (e.g. a manifest from a smaller
    // service was copied in): refuse rather than silently drop data.
    let mut present = 0usize;
    while dir.join(shard_file_name(present)).exists() {
        present += 1;
    }
    if present != declared {
        return Err(SnapshotError::ShardCountMismatch {
            manifest: declared,
            found: present,
        });
    }
    let mut summaries = Vec::with_capacity(declared);
    for index in 0..declared {
        let path = dir.join(shard_file_name(index));
        let mut file = match std::fs::File::open(&path) {
            Ok(f) => std::io::BufReader::new(f),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(SnapshotError::MissingShard { shard: index, path });
            }
            Err(e) => return Err(e.into()),
        };
        let (summary, checksum) = HiggsSummary::read_snapshot_with_checksum(&mut file)?;
        if checksum != manifest.shard_checksums[index] {
            return Err(SnapshotError::ShardChecksumMismatch {
                shard: index,
                manifest: manifest.shard_checksums[index],
                file: checksum,
            });
        }
        summaries.push(summary);
    }
    let pipelines: Vec<ParallelHiggs> = summaries
        .into_iter()
        .map(|s| ParallelHiggs::from_summary(s, workers_per_shard))
        .collect();
    Ok((manifest.config, pipelines))
}

impl ShardedHiggs {
    /// Snapshots the whole service into `dir` (created if absent): one
    /// summary snapshot file per shard plus a [`SnapshotManifest`]
    /// (`manifest.higgs`, written last so a crashed snapshot never leaves a
    /// directory that passes restore validation).
    ///
    /// The snapshot is **read-your-writes consistent**: the acked-`Flush`
    /// clock is driven first, exactly as for queries, so every mutation
    /// enqueued before this call — through the trait surface or any
    /// [`IngestHandle`](crate::IngestHandle) clone — is included, background
    /// aggregations materialised. See the [module docs](self) for the
    /// concurrent-ingest caveat.
    ///
    /// For a **durable** service ([`Store::open`](crate::Store::open) with
    /// [`StoreOptions::durable`](crate::StoreOptions::durable)) snapshotting
    /// into its own journal directory additionally **rotates the journals**:
    /// every writer parks at a fence while the files are written, and a
    /// *successful* snapshot truncates each shard's journal (the snapshot now
    /// covers those mutations); a failed one leaves the journals untouched.
    /// Either way every mutation remains recorded in exactly one of
    /// {snapshot, journal}. A service with a degraded shard refuses to
    /// snapshot ([`SnapshotError::DegradedShard`]) — the shard's state is
    /// partial and its journal must not be rotated away.
    pub fn snapshot_to_dir(
        &self,
        dir: impl AsRef<Path>,
    ) -> Result<SnapshotManifest, SnapshotError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        if let Some(shard) = self.first_degraded_shard() {
            return Err(SnapshotError::DegradedShard { shard });
        }
        self.flush();
        let rotating = self
            .durable_dir()
            .is_some_and(|journal_dir| same_dir(journal_dir, dir));
        if rotating {
            // Park every writer for the duration of the file writes, then
            // deliver the verdict: rotation (journal truncation, stamped
            // with the new manifest's checksum) only on success. The fence
            // also re-flushes each pipeline, covering mutations that slipped
            // in between `flush()` above and the fence commands landing, and
            // release blocks until every writer has committed its rotation —
            // when this returns, the journals really are rotated.
            let fence = self.fence_writers();
            // Re-check health now that every writer is parked. A writer that
            // degraded between the check above and the fence acks (its
            // degraded replacement answers the fence) would otherwise have
            // its partially-applied pipeline captured and stamped into a new
            // manifest while its journal keeps the old covering stamp — a
            // restart would dismiss that journal as stale and lose its
            // acknowledged mutations. Parked writers apply nothing, so this
            // check is race-free until the fence is released.
            if let Some(shard) = self.first_degraded_shard() {
                fence.release(None);
                return Err(SnapshotError::DegradedShard { shard });
            }
            match self.write_snapshot_files(dir) {
                Ok((manifest, checksum)) => {
                    fence.release(Some(checksum));
                    Ok(manifest)
                }
                Err(e) => {
                    fence.release(None);
                    Err(e)
                }
            }
        } else {
            self.write_snapshot_files(dir).map(|(manifest, _)| manifest)
        }
    }

    /// Writes the per-shard snapshot files and the manifest, returning the
    /// manifest together with its document checksum (the journal covering
    /// stamp).
    fn write_snapshot_files(&self, dir: &Path) -> Result<(SnapshotManifest, u64), SnapshotError> {
        write_snapshot_files(dir, self.shard_pipelines())
    }
}

/// Writes per-shard snapshot files and the manifest for `shards` into `dir`
/// (manifest **last**, so a crash mid-write never leaves a directory that
/// passes restore validation), returning the manifest and its document
/// checksum. The caller is responsible for quiescence: pipelines must not
/// mutate while this reads them (a fence, or exclusive ownership as in the
/// reshard fold).
pub(crate) fn write_snapshot_files(
    dir: &Path,
    shards: &[Arc<RwLock<ParallelHiggs>>],
) -> Result<(SnapshotManifest, u64), SnapshotError> {
    let mut shard_checksums = Vec::with_capacity(shards.len());
    let mut shard_items = Vec::with_capacity(shards.len());
    let mut config = None;
    for (index, shard) in shards.iter().enumerate() {
        failpoint!("snapshot::write_shard", |msg: String| SnapshotError::Io(
            std::io::Error::other(msg)
        ));
        let pipeline = shard.read().expect("shard lock poisoned");
        let summary = pipeline.summary();
        let path = dir.join(shard_file_name(index));
        let mut file = std::io::BufWriter::new(std::fs::File::create(&path)?);
        let checksum = summary.write_snapshot(&mut file)?;
        file.into_inner().map_err(|e| e.into_error())?.sync_all()?;
        shard_checksums.push(checksum);
        shard_items.push(summary.total_items());
        config.get_or_insert(*summary.config());
    }
    // Remove stale shard files left by an earlier, larger snapshot into
    // the same directory — restore's census would otherwise reject the
    // whole directory (ShardCountMismatch) even though this snapshot
    // succeeded.
    let mut stale = shards.len();
    loop {
        let path = dir.join(shard_file_name(stale));
        if !path.exists() {
            break;
        }
        std::fs::remove_file(&path)?;
        stale += 1;
    }
    // LINT-ALLOW(durability-io-panic): config validation rejects zero
    // shards, so the shard loop above ran at least once.
    let mut config = config.expect("a service holds at least one shard");
    // Shard summaries carry the per-summary view of the config; the
    // manifest records the *service* shard count so restore rebuilds the
    // same partitioning. Worker pinning is runtime placement state, not
    // data: it is never encoded, so the returned manifest reports it
    // cleared exactly as a re-read of the written file would.
    config.shards = shards.len();
    config.pin_workers = false;
    // Likewise for the serving knobs: admission tick, submission queue
    // depth and journal sync policy describe the front-end process, not
    // the summary.
    config.admission_tick = std::time::Duration::ZERO;
    config.service_queue_depth = None;
    config.journal_mode = JournalMode::Off;
    let manifest = SnapshotManifest {
        format_version: FORMAT_VERSION,
        config,
        shard_checksums,
        shard_items,
    };
    let path = dir.join(MANIFEST_FILE);
    let mut file = std::io::BufWriter::new(std::fs::File::create(&path)?);
    let checksum = manifest.write_to(&mut file)?;
    file.into_inner().map_err(|e| e.into_error())?.sync_all()?;
    Ok((manifest, checksum))
}

impl ShardedHiggs {
    /// Rebuilds a warm service from a directory written by
    /// [`snapshot_to_dir`](Self::snapshot_to_dir), with one aggregation
    /// worker per shard. Writer threads restart with empty queues; the
    /// restored service immediately serves queries bit-identically to the
    /// snapshotted one and keeps accepting inserts/deletes.
    ///
    /// When the directory also holds per-shard write-ahead journals (it was
    /// the live directory of a durable service, see
    /// [`ShardedHiggs::new_durable`]), each journal's tail is replayed on
    /// top of the restored shard — this is the crash-recovery path: snapshot
    /// plus journal reconstructs every acknowledged mutation. A torn final
    /// record (the crash hit mid-append) is tolerated as a clean end of the
    /// journal; interior corruption is a typed
    /// [`JournalError`]. The restored service is
    /// **not** durable itself — use
    /// [`StoreOptions::durable`](crate::StoreOptions::durable) to both
    /// recover and keep journaling.
    #[deprecated(
        since = "0.1.0",
        note = "use `Store::open(StoreOptions::restore(dir))`"
    )]
    pub fn restore_from_dir(dir: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        crate::store::Store::open(crate::store::StoreOptions::restore(dir))
    }

    /// [`restore_from_dir`](Self::restore_from_dir) with `workers_per_shard`
    /// aggregation workers behind each shard's writer.
    ///
    /// Validation order: manifest (magic, version, checksum, internal
    /// consistency), directory shard-file census against the manifest's
    /// count, then each shard file's own checksum and its manifest-recorded
    /// checksum, then journal tail replay. Nothing is spawned until every
    /// shard decoded cleanly, so a failed restore never leaks writer
    /// threads.
    #[deprecated(
        since = "0.1.0",
        note = "use `Store::open(StoreOptions::restore(dir).workers(n))`"
    )]
    pub fn restore_from_dir_with_workers(
        dir: impl AsRef<Path>,
        workers_per_shard: usize,
    ) -> Result<Self, SnapshotError> {
        crate::store::Store::open(
            crate::store::StoreOptions::restore(dir).workers(workers_per_shard),
        )
    }
}

/// Whether two paths name the same directory (canonicalised when possible,
/// literal comparison as the fallback for paths that cannot be resolved).
fn same_dir(a: &Path, b: &Path) -> bool {
    match (std::fs::canonicalize(a), std::fs::canonicalize(b)) {
        (Ok(ca), Ok(cb)) => ca == cb,
        _ => a == b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Store, StoreOptions};
    use higgs_common::{StreamEdge, TemporalGraphSummary, TimeRange};

    #[test]
    fn empty_summary_round_trips() {
        let live = HiggsSummary::new(HiggsConfig::paper_default());
        let mut bytes = Vec::new();
        live.write_snapshot(&mut bytes).expect("snapshot empty");
        let restored = HiggsSummary::read_snapshot(&mut bytes.as_slice()).expect("restore empty");
        assert_eq!(restored.leaf_count(), 0);
        assert_eq!(restored.total_items(), 0);
        assert_eq!(restored.config(), live.config());
        assert_eq!(restored.edge_query(1, 2, TimeRange::all()), 0);
    }

    #[test]
    fn snapshot_preserves_epoch_and_counters_but_not_runtime_state() {
        let mut live = HiggsSummary::new(HiggsConfig::paper_default());
        for i in 0..500u64 {
            live.insert(&StreamEdge::new(i % 30, (i * 7) % 30, 1, i));
        }
        live.delete(&StreamEdge::new(1, 7, 1, 1));
        // Warm the plan cache and counter — runtime state that must NOT
        // survive a snapshot.
        let _ = live.query(&higgs_common::Query::edge(1, 7, TimeRange::all()));
        assert!(live.plans_built() > 0);

        let mut bytes = Vec::new();
        live.write_snapshot(&mut bytes).expect("snapshot");
        let restored = HiggsSummary::read_snapshot(&mut bytes.as_slice()).expect("restore");
        assert_eq!(restored.mutation_epoch(), live.mutation_epoch());
        assert_eq!(restored.total_items(), live.total_items());
        assert_eq!(restored.plans_built(), 0, "plan counter starts fresh");
        assert_eq!(restored.plan_cache_len(), 0, "plan cache starts cold");
    }

    #[test]
    fn shard_file_names_are_stable() {
        assert_eq!(shard_file_name(0), "shard-000.higgs");
        assert_eq!(shard_file_name(63), "shard-063.higgs");
    }

    #[test]
    fn snapshot_error_messages_name_the_failure() {
        let cases = [
            (
                SnapshotError::BadMagic {
                    expected: SUMMARY_MAGIC,
                    found: 7,
                }
                .to_string(),
                "bad snapshot magic",
            ),
            (
                SnapshotError::UnsupportedVersion {
                    found: 9,
                    supported: FORMAT_VERSION,
                }
                .to_string(),
                "newer than the supported",
            ),
            (
                SnapshotError::ShardCountMismatch {
                    manifest: 2,
                    found: 4,
                }
                .to_string(),
                "2 shard(s)",
            ),
            (
                SnapshotError::ShardChecksumMismatch {
                    shard: 1,
                    manifest: 1,
                    file: 2,
                }
                .to_string(),
                "does not match the manifest",
            ),
            (
                SnapshotError::Corrupt("broken".into()).to_string(),
                "corrupt snapshot",
            ),
            (
                SnapshotError::Journal(JournalError::Corrupt {
                    shard: 1,
                    record: 2,
                    detail: "checksum".into(),
                })
                .to_string(),
                "journal replay failed",
            ),
            (
                SnapshotError::DegradedShard { shard: 3 }.to_string(),
                "shard 3 is degraded",
            ),
        ];
        for (message, needle) in cases {
            assert!(message.contains(needle), "{message:?} missing {needle:?}");
        }
    }

    #[test]
    fn rotating_snapshot_truncates_journals_and_restore_is_exact() {
        use crate::journal::journal_file_name;

        // The rotation fence: after a successful snapshot into the durable
        // directory the journals must be empty (a mutation lives in exactly
        // one of snapshot or journal), so restore-plus-replay must equal the
        // snapshot — and must NOT double-apply the journaled mutations,
        // which would inflate weights (inserts are additive, not
        // idempotent).
        let dir = std::env::temp_dir().join(format!(
            "higgs-rotation-fence-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = HiggsConfig::builder()
            .shards(2)
            .journal_mode(JournalMode::SyncEveryN(8))
            .build()
            .expect("valid durable configuration");
        let service = Store::open(StoreOptions::durable(config, &dir)).expect("durable service");
        let handle = service.ingest_handle();
        let edges: Vec<StreamEdge> = (0..1_000u64)
            .map(|i| StreamEdge::new(i % 50, (i * 7) % 50, 1 + i % 3, i))
            .collect();
        for e in &edges {
            handle.insert(e).expect("ingest");
        }
        // Journal appends happen on the writer threads; wait for them before
        // measuring the pre-rotation journal size.
        service.flush();
        let pre_rotation = std::fs::metadata(dir.join(journal_file_name(0)))
            .expect("journal exists")
            .len();
        let manifest = service.snapshot_to_dir(&dir).expect("rotating snapshot");
        assert_eq!(manifest.total_items(), 1_000);
        let covering = manifest_tail_checksum(&dir).expect("manifest checksum");
        assert_ne!(covering, 0, "a written manifest has a real checksum");
        for shard in 0..2 {
            let len = std::fs::metadata(dir.join(journal_file_name(shard)))
                .expect("journal exists")
                .len();
            assert!(
                len < pre_rotation,
                "rotation must truncate shard {shard}'s journal ({len} bytes left)"
            );
            assert!(
                crate::journal::replay(&dir, shard, covering)
                    .expect("truncated journal replays")
                    .is_empty(),
                "a rotated journal must replay to nothing"
            );
        }
        // Post-rotation mutations land in the fresh journal only.
        let extra = StreamEdge::new(1, 7, 5, 2_000);
        handle.insert(&extra).expect("ingest after rotation");
        service.flush();
        let expected_batch = [
            higgs_common::Query::edge(1, 7, TimeRange::all()),
            higgs_common::Query::vertex(1, higgs_common::VertexDirection::Out, TimeRange::all()),
        ];
        let expected = service.query_batch(&expected_batch);
        drop(service);
        let recovered = Store::open(StoreOptions::durable(config, &dir)).expect("recovery");
        assert_eq!(
            recovered.query_batch(&expected_batch),
            expected,
            "snapshot + journal tail must reconstruct the exact state"
        );
        assert_eq!(recovered.total_items(), 1_001);
        drop(recovered);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_into_a_foreign_directory_does_not_rotate_journals() {
        use crate::journal::journal_file_name;

        let dir = std::env::temp_dir().join(format!(
            "higgs-foreign-snap-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let other = dir.join("elsewhere");
        let _ = std::fs::remove_dir_all(&dir);
        let config = HiggsConfig::builder()
            .shards(1)
            .journal_mode(JournalMode::Buffered)
            .build()
            .expect("valid durable configuration");
        let mut service =
            Store::open(StoreOptions::durable(config, &dir)).expect("durable service");
        service.insert(&StreamEdge::new(1, 2, 5, 10));
        service.flush();
        let before = std::fs::metadata(dir.join(journal_file_name(0)))
            .expect("journal exists")
            .len();
        service.snapshot_to_dir(&other).expect("snapshot elsewhere");
        let after = std::fs::metadata(dir.join(journal_file_name(0)))
            .expect("journal exists")
            .len();
        assert_eq!(
            before, after,
            "a snapshot outside the journal directory must not rotate"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_snapshot_directory_is_an_io_error() {
        // The filesystem failure mode must surface as the typed Io variant
        // (carrying the underlying error), not as Corrupt or a panic.
        let dir = std::env::temp_dir().join("higgs-snapshot-test-definitely-absent");
        match SnapshotManifest::read_from_dir(&dir) {
            Err(SnapshotError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::NotFound);
            }
            other => panic!("missing directory must be Io, got {other:?}"),
        }
    }

    #[test]
    fn invalid_persisted_config_is_a_config_error() {
        // A snapshot whose persisted d1 fails HiggsConfig::validate must be
        // rejected with the typed Config variant before any state is built.
        let live = HiggsSummary::new(HiggsConfig::paper_default());
        let mut bytes = Vec::new();
        live.write_snapshot(&mut bytes).expect("snapshot");
        // The config payload opens right after magic (8) + version (4) +
        // section tag (2) + payload length (8); its first field is d1 as a
        // little-endian u64. Zero is rejected by validate (not a power of
        // two >= 2).
        bytes[22..30].copy_from_slice(&0u64.to_le_bytes());
        match HiggsSummary::read_snapshot(&mut bytes.as_slice()) {
            Err(SnapshotError::Config(e)) => {
                assert_eq!(e, ConfigError::InvalidMatrixSide { d1: 0 });
            }
            other => panic!("invalid persisted config must be Config, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_pending_job_is_rejected_not_deferred_to_a_panic() {
        // A checksum-valid snapshot whose pending job points past the tree
        // must fail at restore time with a typed error — not restore
        // "successfully" and panic inside leaf_span on the first flush.
        let mut live = HiggsSummary::with_deferred_aggregation(HiggsConfig {
            d1: 4,
            f1_bits: 12,
            r_bits: 1,
            bucket_entries: 2,
            mapping_addresses: 2,
            overflow_blocks: true,
            shards: 1,
            plan_cache_capacity: 8,
            ingest_queue_cap: None,
            pin_workers: false,
            admission_tick: std::time::Duration::ZERO,
            service_queue_depth: None,
            journal_mode: JournalMode::Off,
        });
        for i in 0..2_000u64 {
            live.insert(&StreamEdge::new(i % 60, (i * 7) % 60, 1, i));
        }
        assert!(
            !live.pending.is_empty(),
            "deferred summary must carry pending jobs for this test"
        );
        live.pending[0].index = 1_000_000; // structurally impossible
        let mut bytes = Vec::new();
        live.write_snapshot(&mut bytes).expect("snapshot");
        match HiggsSummary::read_snapshot(&mut bytes.as_slice()) {
            Err(SnapshotError::Corrupt(msg)) => {
                assert!(msg.contains("pending aggregation job"), "{msg}");
            }
            other => panic!("out-of-range pending job must be Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_matrix_geometry_fails_typed_without_huge_allocation() {
        // Blow the matrix side field up to the maximum the format allows: a
        // small file must die with UnexpectedEof from the bounded chunked
        // read — not abort on a terabyte allocation.
        let mut live = HiggsSummary::new(HiggsConfig::paper_default());
        for i in 0..200u64 {
            live.insert(&StreamEdge::new(i % 20, (i * 3) % 20, 1, i));
        }
        let mut bytes = Vec::new();
        live.write_snapshot(&mut bytes).expect("snapshot");
        // The first leaf matrix's side u64 sits right after the leaves
        // section header + leaf count + (start, end, items): locate the
        // leaves section by scanning for its tag at a section boundary is
        // brittle; instead patch every occurrence of the little-endian d1
        // (16) that is followed by the layer field (1u32) — the matrix
        // geometry prefix is the only place that byte pattern occurs.
        let needle = [16u8, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0];
        let pos = bytes
            .windows(needle.len())
            .position(|w| w == needle)
            .expect("leaf matrix geometry present");
        bytes[pos..pos + 8].copy_from_slice(&MAX_MATRIX_SIDE.to_le_bytes());
        match HiggsSummary::read_snapshot(&mut bytes.as_slice()) {
            Err(SnapshotError::Codec(CodecError::UnexpectedEof)) => {}
            // Depending on surrounding bytes the huge lens read may also be
            // caught by a later structural check; any typed error is fine —
            // the test's real assertion is "no OOM abort, no panic".
            Err(SnapshotError::Corrupt(_) | SnapshotError::Codec(_)) => {}
            other => panic!("corrupt geometry must be a typed error, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_overflow_chain_geometry_is_rejected_at_restore_time() {
        // Chain geometry seeds future overflow blocks; a zero side would
        // panic in CompressedMatrix::new on the first post-restore burst.
        let mut live = HiggsSummary::new(HiggsConfig::paper_default());
        for i in 0..50u64 {
            live.insert(&StreamEdge::new(i % 10, (i * 3) % 10, 1, i));
        }
        let mut bytes = Vec::new();
        live.write_snapshot(&mut bytes).expect("snapshot");
        // The chain geometry prefix of the paper config is the unique byte
        // run side=16u64, bucket_entries=1u64, mapping=4u32.
        let mut needle = Vec::new();
        needle.extend_from_slice(&16u64.to_le_bytes());
        needle.extend_from_slice(&1u64.to_le_bytes());
        needle.extend_from_slice(&4u32.to_le_bytes());
        let pos = bytes
            .windows(needle.len())
            .position(|w| w == needle)
            .expect("chain geometry present");
        bytes[pos..pos + 8].copy_from_slice(&0u64.to_le_bytes());
        match HiggsSummary::read_snapshot(&mut bytes.as_slice()) {
            Err(SnapshotError::Corrupt(msg)) => {
                assert!(msg.contains("overflow chain side"), "{msg}");
            }
            other => panic!("zero chain side must be Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn garbled_section_order_is_a_typed_error() {
        let mut summary = HiggsSummary::new(HiggsConfig::paper_default());
        summary.insert(&StreamEdge::new(1, 2, 3, 4));
        let mut bytes = Vec::new();
        summary.write_snapshot(&mut bytes).expect("snapshot");
        // Overwrite the first section tag (directly after magic + version)
        // with a bogus tag: the reader must refuse with a typed error.
        bytes[12] = 0xAA;
        match HiggsSummary::read_snapshot(&mut bytes.as_slice()) {
            Err(SnapshotError::Corrupt(msg)) => {
                assert!(msg.contains("expected section"), "{msg}");
            }
            other => panic!("bogus section tag must be Corrupt, got {other:?}"),
        }
    }
}
