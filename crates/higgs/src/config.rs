//! Configuration of a HIGGS summary: the [`HiggsConfig`] parameter set, the
//! [`HiggsConfigBuilder`] fluent constructor, and the [`ConfigError`]
//! validation diagnostics.

use higgs_common::hashing::FingerprintLayout;
use std::fmt;
use std::time::Duration;

/// Upper bound on [`HiggsConfig::admission_tick`]: a tick longer than this
/// adds more queueing delay than any plausible coalescing win (the serving
/// layer's whole point is sub-tick latency), so validation rejects it as a
/// likely units mistake (seconds where milliseconds were meant).
pub const MAX_ADMISSION_TICK: Duration = Duration::from_millis(100);

/// Durability policy of the per-shard write-ahead journal (see the
/// [`journal`](crate::journal) module). Selected via
/// [`HiggsConfigBuilder::journal_mode`]; the default is [`Off`](Self::Off),
/// so existing deployments pay nothing until they opt in.
///
/// Like `pin_workers` and the serving knobs, the journal mode is **runtime
/// durability state** of the serving process: it is never persisted in
/// snapshots, and a restored service defaults to `Off` unless the caller
/// re-arms journaling through the durable restore path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum JournalMode {
    /// No journal: mutations exist only in memory between snapshots (the
    /// pre-journal behaviour, and the default).
    #[default]
    Off,
    /// Append every record through a buffered writer, flushing to the OS on
    /// every append but never forcing the disk (`fsync`). Survives process
    /// crashes; an OS crash may lose the buffered tail.
    Buffered,
    /// Like [`Buffered`](Self::Buffered), plus an `fsync` every `n` records
    /// (`n ≥ 1`; `SyncEveryN(1)` syncs every append). Bounds loss on OS
    /// crash or power failure to the last `n - 1` records per shard.
    SyncEveryN(u32),
}

/// Why a [`HiggsConfig`] was rejected by validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `d1` must be a power of two no smaller than 2 (matrix addresses are
    /// the low bits of the vertex hash).
    InvalidMatrixSide {
        /// The rejected `d1` value.
        d1: u64,
    },
    /// `F1` must lie in `[R, 31]`: at least `R` bits must be available to
    /// convert into address bits per level climbed, and fingerprints are
    /// stored in 32-bit halves.
    InvalidFingerprintBits {
        /// The rejected `F1` value.
        f1_bits: u32,
        /// The configured `R` value it was checked against.
        r_bits: u32,
    },
    /// `R` must lie in `[1, 8]` (the branching factor is `θ = 4^R`).
    InvalidAddressBits {
        /// The rejected `R` value.
        r_bits: u32,
    },
    /// `b` must lie in `[1, 255]`: per-bucket occupancy is stored as `u8` in
    /// the flat slab layout.
    InvalidBucketEntries {
        /// The rejected `b` value.
        bucket_entries: usize,
    },
    /// `r` must lie in `[1, MAX_MAPPING]`: MMB index pairs are stored as two
    /// `u8` halves of a `u16`.
    InvalidMappingAddresses {
        /// The rejected `r` value.
        mapping_addresses: u32,
    },
    /// `shards` must lie in `[1, MAX_SHARDS]`: every shard owns a writer
    /// thread plus aggregation workers, so the count is bounded.
    InvalidShardCount {
        /// The rejected shard count.
        shards: usize,
    },
    /// `ingest_queue_cap` must be at least 1 when set: a zero-capacity
    /// writer queue could never accept a command, deadlocking the first
    /// producer. Use `None` (the default) for unbounded queues.
    InvalidIngestQueueCap,
    /// `admission_tick` must not exceed [`MAX_ADMISSION_TICK`]: longer ticks
    /// add pure queueing delay without any additional coalescing benefit and
    /// almost always indicate a units mistake.
    InvalidAdmissionTick {
        /// The rejected tick duration.
        admission_tick: Duration,
    },
    /// `service_queue_depth` must be at least 1 when set: a zero-capacity
    /// submission queue could never admit a request, so every submission
    /// would fail with backpressure. Use `None` (the default) for an
    /// unbounded submission queue.
    InvalidServiceQueueDepth,
    /// `journal_mode` was `SyncEveryN(0)`: a zero sync interval is
    /// meaningless (use `SyncEveryN(1)` to sync every record, or `Buffered`
    /// to never force the disk).
    InvalidJournalSyncInterval,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConfigError::InvalidMatrixSide { d1 } => {
                write!(f, "d1 must be a power of two >= 2, got {d1}")
            }
            ConfigError::InvalidFingerprintBits { f1_bits, r_bits } => {
                write!(f, "F1 must be in [R, 31] = [{r_bits}, 31], got {f1_bits}")
            }
            ConfigError::InvalidAddressBits { r_bits } => {
                write!(f, "R must be in [1, 8], got {r_bits}")
            }
            ConfigError::InvalidBucketEntries { bucket_entries } => {
                write!(f, "b must be in [1, 255], got {bucket_entries}")
            }
            ConfigError::InvalidMappingAddresses { mapping_addresses } => {
                write!(
                    f,
                    "r must be in [1, {}], got {mapping_addresses}",
                    crate::matrix::MAX_MAPPING
                )
            }
            ConfigError::InvalidShardCount { shards } => {
                write!(
                    f,
                    "shards must be in [1, {}], got {shards}",
                    crate::shard::MAX_SHARDS
                )
            }
            ConfigError::InvalidIngestQueueCap => {
                write!(
                    f,
                    "ingest_queue_cap must be at least 1 when set \
                     (use None for unbounded ingest queues)"
                )
            }
            ConfigError::InvalidAdmissionTick { admission_tick } => {
                write!(
                    f,
                    "admission_tick must be at most {:?}, got {admission_tick:?}",
                    MAX_ADMISSION_TICK
                )
            }
            ConfigError::InvalidServiceQueueDepth => {
                write!(
                    f,
                    "service_queue_depth must be at least 1 when set \
                     (use None for an unbounded submission queue)"
                )
            }
            ConfigError::InvalidJournalSyncInterval => {
                write!(
                    f,
                    "journal_mode sync interval must be at least 1 \
                     (SyncEveryN(1) syncs every record; use Buffered to never fsync)"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Tunable parameters of a [`HiggsSummary`](crate::HiggsSummary).
///
/// The defaults follow Section VI-A of the paper: leaf matrix side `d1 = 16`,
/// fingerprint length `F1 = 19` bits, `b = 3` entries per bucket, `r = 4`
/// mapping addresses per vertex (so each edge has 4×4 candidate buckets and a
/// 4-bit index pair), and `θ = 4` children per node (`R = 1` fingerprint bit
/// converted to address bits per level).
///
/// Construct one with [`HiggsConfig::builder`] for validated, fallible
/// construction (`Result<_, ConfigError>`), or start from
/// [`HiggsConfig::paper_default`] and adjust fields / apply the ablation
/// helpers.
///
/// The full parameter set is persisted in snapshots (see
/// [`snapshot`](crate::snapshot)) and re-validated on restore — a restored
/// summary or service is always built from a configuration that passes
/// [`validate`](Self::validate), and corrupt persisted parameters surface as
/// [`SnapshotError::Config`](crate::SnapshotError::Config).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HiggsConfig {
    /// Leaf-layer compressed-matrix side `d1` (power of two).
    pub d1: u64,
    /// Leaf-layer fingerprint length `F1` in bits (per endpoint, ≤ 31).
    pub f1_bits: u32,
    /// Fingerprint bits converted into address bits per level climbed (`R`);
    /// the branching factor is `θ = 4^R`.
    pub r_bits: u32,
    /// Number of entries per bucket (`b`).
    pub bucket_entries: usize,
    /// Number of mapping addresses per vertex (`r`) for the Multiple Mapping
    /// Buckets optimisation; `1` disables MMB.
    pub mapping_addresses: u32,
    /// Whether overflow blocks absorb same-timestamp bursts (Section IV-C).
    ///
    /// Overflow blocks share the leaf matrix side `d1` (so their entries lift
    /// into ancestor aggregates without losing address bits) but use a single
    /// entry per bucket, keeping each block small.
    pub overflow_blocks: bool,
    /// Number of shards a [`ShardedHiggs`](crate::ShardedHiggs) built from
    /// this configuration partitions the summary into (by hash of the source
    /// vertex). `1` means a single unsharded summary; plain
    /// [`HiggsSummary`](crate::HiggsSummary) construction ignores the field.
    pub shards: usize,
    /// Number of query plans the cross-batch [`PlanCache`](crate::PlanCache)
    /// retains per summary (LRU, epoch-invalidated; see the
    /// [`plan_cache`](crate::plan_cache) module docs). `0` disables plan
    /// caching entirely — every typed query then rebuilds its plan, which is
    /// the reference behaviour the cache is tested against. In a
    /// [`ShardedHiggs`](crate::ShardedHiggs) **each shard** owns a cache of
    /// this capacity.
    pub plan_cache_capacity: usize,
    /// Capacity (in commands) of each shard's ingest queue in a
    /// [`ShardedHiggs`](crate::ShardedHiggs). `None` (the default) keeps the
    /// writer channels unbounded; `Some(n)` makes producers **block** once a
    /// shard's writer is `n` commands behind, turning sustained overload into
    /// backpressure instead of unbounded memory growth. One command is one
    /// edge, one deletion, or one routed batch of up to 512 edges, so the
    /// worst-case buffered footprint per shard is `n × 512` edges. Plain
    /// [`HiggsSummary`](crate::HiggsSummary) construction ignores the field.
    pub ingest_queue_cap: Option<usize>,
    /// Whether a [`ShardedHiggs`](crate::ShardedHiggs) pins each shard's
    /// worker threads (the writer thread plus that shard's aggregation
    /// workers) to one core (`shard_index % available_cores`), keeping each
    /// shard's matrix slabs resident in a single core's private cache. A
    /// standalone [`ParallelHiggs`](crate::ParallelHiggs) pins its workers
    /// to core 0 when set. Pinning is best-effort (a no-op on platforms
    /// without affinity syscalls — see [`higgs_common::affinity`]) and is
    /// **runtime placement state**: it is never persisted in snapshots, and
    /// restored services default to unpinned. Defaults to `false`.
    pub pin_workers: bool,
    /// How long a [`HiggsService`](crate::HiggsService) admission loop waits
    /// after the first queued submission before closing the tick, so that
    /// concurrent clients' queries land in the same coalesced per-shard
    /// batch. `Duration::ZERO` (the default) closes a tick as soon as the
    /// queue momentarily drains — maximum responsiveness, coalescing only
    /// what is already queued; larger values trade per-request latency for
    /// wider cross-client plan/probe sharing. Must not exceed
    /// [`MAX_ADMISSION_TICK`]. Like `pin_workers` this is **runtime serving
    /// state**: never persisted in snapshots, and restored services default
    /// to a zero tick. Plain summary construction ignores the field.
    pub admission_tick: Duration,
    /// Capacity (in submissions) of a [`HiggsService`](crate::HiggsService)
    /// submission queue. `None` (the default) keeps the queue unbounded;
    /// `Some(n)` makes `submit` fail fast with a typed overload error once
    /// `n` submissions are waiting for admission, turning sustained query
    /// overload into explicit backpressure the client can act on. Runtime
    /// serving state: never persisted in snapshots. Plain summary
    /// construction ignores the field.
    pub service_queue_depth: Option<usize>,
    /// Durability policy of the per-shard write-ahead journal a *durable*
    /// [`ShardedHiggs`](crate::ShardedHiggs) keeps alongside its snapshot
    /// directory (see the [`journal`](crate::journal) module and
    /// [`Store::open`](crate::Store::open)).
    /// [`JournalMode::Off`] (the default) disables journaling entirely.
    /// Runtime durability state: never persisted in snapshots — a restored
    /// service journals only when restored through the durable path. Plain
    /// summary construction ignores the field.
    pub journal_mode: JournalMode,
}

impl Default for HiggsConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl HiggsConfig {
    /// The configuration used throughout the paper's experiments
    /// (Section VI-A).
    pub fn paper_default() -> Self {
        Self {
            d1: 16,
            f1_bits: 19,
            r_bits: 1,
            bucket_entries: 3,
            mapping_addresses: 4,
            overflow_blocks: true,
            shards: 1,
            plan_cache_capacity: crate::plan_cache::DEFAULT_PLAN_CACHE_CAPACITY,
            ingest_queue_cap: None,
            pin_workers: false,
            admission_tick: Duration::ZERO,
            service_queue_depth: None,
            journal_mode: JournalMode::Off,
        }
    }

    /// Starts a fluent, validated builder seeded with the paper-default
    /// parameters.
    ///
    /// ```
    /// use higgs::HiggsConfig;
    ///
    /// let config = HiggsConfig::builder()
    ///     .d1(64)
    ///     .bucket_entries(2)
    ///     .build()
    ///     .expect("valid configuration");
    /// assert_eq!(config.d1, 64);
    ///
    /// assert!(HiggsConfig::builder().d1(12).build().is_err());
    /// ```
    pub fn builder() -> HiggsConfigBuilder {
        HiggsConfigBuilder {
            config: Self::paper_default(),
        }
    }

    /// A configuration with Multiple Mapping Buckets disabled (used by the
    /// Fig. 20b ablation).
    pub fn without_mmb(mut self) -> Self {
        self.mapping_addresses = 1;
        self
    }

    /// A configuration with overflow blocks disabled (used by the Fig. 20b
    /// ablation).
    pub fn without_overflow_blocks(mut self) -> Self {
        self.overflow_blocks = false;
        self
    }

    /// A configuration with a different leaf matrix side (the Fig. 21
    /// parameter sweep).
    pub fn with_d1(mut self, d1: u64) -> Self {
        self.d1 = d1;
        self
    }

    /// The branching factor `θ = 4^R`.
    pub fn theta(&self) -> usize {
        1usize << (2 * self.r_bits)
    }

    /// Number of entries a leaf matrix can hold (`b · d1²`).
    pub fn leaf_capacity(&self) -> usize {
        self.bucket_entries * (self.d1 * self.d1) as usize
    }

    /// The fingerprint/address bit layout shared by all layers.
    pub fn layout(&self) -> FingerprintLayout {
        FingerprintLayout::new(self.f1_bits, self.d1, self.r_bits)
    }

    /// Validates the configuration, returning the first violated constraint.
    ///
    /// Called by [`HiggsSummary::try_new`](crate::HiggsSummary::try_new) and
    /// [`HiggsConfigBuilder::build`]; the panicking convenience path
    /// ([`HiggsSummary::new`](crate::HiggsSummary::new)) surfaces the same
    /// diagnostics through `expect`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.d1.is_power_of_two() || self.d1 < 2 {
            return Err(ConfigError::InvalidMatrixSide { d1: self.d1 });
        }
        if !(1..=8).contains(&self.r_bits) {
            return Err(ConfigError::InvalidAddressBits {
                r_bits: self.r_bits,
            });
        }
        if self.f1_bits < self.r_bits || self.f1_bits > 31 {
            return Err(ConfigError::InvalidFingerprintBits {
                f1_bits: self.f1_bits,
                r_bits: self.r_bits,
            });
        }
        // Bounds shared with CompressedMatrix::new: per-bucket occupancy is
        // stored as u8 and MMB index pairs as two u8 halves of a u16.
        if !(1..=u8::MAX as usize).contains(&self.bucket_entries) {
            return Err(ConfigError::InvalidBucketEntries {
                bucket_entries: self.bucket_entries,
            });
        }
        if !(1..=crate::matrix::MAX_MAPPING as u32).contains(&self.mapping_addresses) {
            return Err(ConfigError::InvalidMappingAddresses {
                mapping_addresses: self.mapping_addresses,
            });
        }
        if !(1..=crate::shard::MAX_SHARDS).contains(&self.shards) {
            return Err(ConfigError::InvalidShardCount {
                shards: self.shards,
            });
        }
        if self.ingest_queue_cap == Some(0) {
            return Err(ConfigError::InvalidIngestQueueCap);
        }
        if self.admission_tick > MAX_ADMISSION_TICK {
            return Err(ConfigError::InvalidAdmissionTick {
                admission_tick: self.admission_tick,
            });
        }
        if self.service_queue_depth == Some(0) {
            return Err(ConfigError::InvalidServiceQueueDepth);
        }
        if self.journal_mode == JournalMode::SyncEveryN(0) {
            return Err(ConfigError::InvalidJournalSyncInterval);
        }
        Ok(())
    }
}

/// Fluent, validated constructor for [`HiggsConfig`], started with
/// [`HiggsConfig::builder`]. Every knob defaults to the paper's Section VI-A
/// value; [`build`](Self::build) returns `Err(ConfigError)` instead of
/// panicking on invalid combinations.
#[derive(Clone, Copy, Debug)]
pub struct HiggsConfigBuilder {
    config: HiggsConfig,
}

impl HiggsConfigBuilder {
    /// Sets the leaf-layer matrix side `d1` (must be a power of two ≥ 2).
    pub fn d1(mut self, d1: u64) -> Self {
        self.config.d1 = d1;
        self
    }

    /// Sets the leaf-layer fingerprint length `F1` in bits (must lie in
    /// `[R, 31]`).
    pub fn f1_bits(mut self, f1_bits: u32) -> Self {
        self.config.f1_bits = f1_bits;
        self
    }

    /// Sets `R`, the fingerprint bits converted into address bits per level
    /// (branching factor `θ = 4^R`; must lie in `[1, 8]`).
    pub fn r_bits(mut self, r_bits: u32) -> Self {
        self.config.r_bits = r_bits;
        self
    }

    /// Sets `b`, the number of entries per bucket (must lie in `[1, 255]`).
    pub fn bucket_entries(mut self, bucket_entries: usize) -> Self {
        self.config.bucket_entries = bucket_entries;
        self
    }

    /// Sets `r`, the number of MMB mapping addresses per vertex (`1`
    /// disables MMB).
    pub fn mapping_addresses(mut self, mapping_addresses: u32) -> Self {
        self.config.mapping_addresses = mapping_addresses;
        self
    }

    /// Enables or disables overflow blocks (Section IV-C).
    pub fn overflow_blocks(mut self, enabled: bool) -> Self {
        self.config.overflow_blocks = enabled;
        self
    }

    /// Sets the number of shards a [`ShardedHiggs`](crate::ShardedHiggs)
    /// partitions the summary into (must lie in `[1, MAX_SHARDS]`; `1` keeps
    /// a single unsharded summary).
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Sets how many query plans the cross-batch plan cache retains per
    /// summary (LRU; `0` disables caching). Defaults to
    /// [`DEFAULT_PLAN_CACHE_CAPACITY`](crate::plan_cache::DEFAULT_PLAN_CACHE_CAPACITY).
    pub fn plan_cache_capacity(mut self, capacity: usize) -> Self {
        self.config.plan_cache_capacity = capacity;
        self
    }

    /// Bounds each shard's ingest queue at `cap` commands (must be ≥ 1):
    /// producers that outrun a shard's writer block instead of growing the
    /// queue without bound. The default keeps the queues unbounded.
    pub fn ingest_queue_cap(mut self, cap: usize) -> Self {
        self.config.ingest_queue_cap = Some(cap);
        self
    }

    /// Pins each shard's worker threads (writer plus aggregation workers) to
    /// one core; see [`HiggsConfig::pin_workers`]. Best-effort, defaults to
    /// off, and never persisted in snapshots.
    pub fn pin_workers(mut self, pin: bool) -> Self {
        self.config.pin_workers = pin;
        self
    }

    /// Sets how long a [`HiggsService`](crate::HiggsService) admission loop
    /// holds a tick open to coalesce concurrent clients' queries (must not
    /// exceed [`MAX_ADMISSION_TICK`]; `Duration::ZERO`, the default, closes
    /// the tick as soon as the submission queue momentarily drains).
    pub fn admission_tick(mut self, tick: Duration) -> Self {
        self.config.admission_tick = tick;
        self
    }

    /// Bounds a [`HiggsService`](crate::HiggsService) submission queue at
    /// `depth` waiting submissions (must be ≥ 1): further `submit` calls
    /// fail fast with a typed overload error instead of queueing without
    /// bound. The default keeps the submission queue unbounded.
    pub fn service_queue_depth(mut self, depth: usize) -> Self {
        self.config.service_queue_depth = Some(depth);
        self
    }

    /// Sets the write-ahead journal durability policy a durable
    /// [`ShardedHiggs`](crate::ShardedHiggs) uses (see [`JournalMode`];
    /// `SyncEveryN` requires an interval ≥ 1). Defaults to
    /// [`JournalMode::Off`] and is never persisted in snapshots.
    pub fn journal_mode(mut self, mode: JournalMode) -> Self {
        self.config.journal_mode = mode;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<HiggsConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_6a() {
        let c = HiggsConfig::paper_default();
        assert_eq!(c.d1, 16);
        assert_eq!(c.f1_bits, 19);
        assert_eq!(c.bucket_entries, 3);
        assert_eq!(c.mapping_addresses, 4);
        assert_eq!(c.theta(), 4);
        assert_eq!(c.leaf_capacity(), 3 * 256);
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn builder_defaults_to_paper_parameters() {
        let built = HiggsConfig::builder().build().expect("defaults are valid");
        assert_eq!(built, HiggsConfig::paper_default());
    }

    #[test]
    fn builder_sets_every_knob() {
        let c = HiggsConfig::builder()
            .d1(64)
            .f1_bits(21)
            .r_bits(2)
            .bucket_entries(4)
            .mapping_addresses(2)
            .overflow_blocks(false)
            .shards(4)
            .plan_cache_capacity(16)
            .ingest_queue_cap(1_024)
            .pin_workers(true)
            .admission_tick(Duration::from_micros(250))
            .service_queue_depth(4_096)
            .journal_mode(JournalMode::SyncEveryN(64))
            .build()
            .expect("valid configuration");
        assert_eq!(c.d1, 64);
        assert_eq!(c.f1_bits, 21);
        assert_eq!(c.r_bits, 2);
        assert_eq!(c.theta(), 16);
        assert_eq!(c.bucket_entries, 4);
        assert_eq!(c.mapping_addresses, 2);
        assert!(!c.overflow_blocks);
        assert_eq!(c.shards, 4);
        assert_eq!(c.plan_cache_capacity, 16);
        assert_eq!(c.ingest_queue_cap, Some(1_024));
        assert!(c.pin_workers);
        assert_eq!(c.admission_tick, Duration::from_micros(250));
        assert_eq!(c.service_queue_depth, Some(4_096));
        assert_eq!(c.journal_mode, JournalMode::SyncEveryN(64));
    }

    #[test]
    fn pin_workers_defaults_off() {
        assert!(!HiggsConfig::paper_default().pin_workers);
        let built = HiggsConfig::builder().build().expect("valid");
        assert!(!built.pin_workers);
    }

    #[test]
    fn plan_cache_defaults_and_disabling() {
        let c = HiggsConfig::paper_default();
        assert_eq!(
            c.plan_cache_capacity,
            crate::plan_cache::DEFAULT_PLAN_CACHE_CAPACITY
        );
        assert_eq!(c.ingest_queue_cap, None);
        // Capacity 0 is a valid configuration: it disables caching.
        assert!(HiggsConfig::builder()
            .plan_cache_capacity(0)
            .build()
            .is_ok());
    }

    #[test]
    fn zero_ingest_queue_cap_rejected() {
        assert_eq!(
            HiggsConfig::builder().ingest_queue_cap(0).build(),
            Err(ConfigError::InvalidIngestQueueCap)
        );
        assert!(HiggsConfig::builder().ingest_queue_cap(1).build().is_ok());
    }

    #[test]
    fn serving_knobs_default_to_inert_values() {
        let c = HiggsConfig::paper_default();
        assert_eq!(c.admission_tick, Duration::ZERO);
        assert_eq!(c.service_queue_depth, None);
        assert_eq!(c.journal_mode, JournalMode::Off);
        assert_eq!(JournalMode::default(), JournalMode::Off);
    }

    #[test]
    fn zero_journal_sync_interval_rejected() {
        assert_eq!(
            HiggsConfig::builder()
                .journal_mode(JournalMode::SyncEveryN(0))
                .build(),
            Err(ConfigError::InvalidJournalSyncInterval)
        );
        // Every-record sync and the non-syncing modes are all valid.
        for mode in [
            JournalMode::SyncEveryN(1),
            JournalMode::Buffered,
            JournalMode::Off,
        ] {
            assert!(HiggsConfig::builder().journal_mode(mode).build().is_ok());
        }
    }

    #[test]
    fn oversized_admission_tick_rejected() {
        let too_long = MAX_ADMISSION_TICK + Duration::from_millis(1);
        assert_eq!(
            HiggsConfig::builder().admission_tick(too_long).build(),
            Err(ConfigError::InvalidAdmissionTick {
                admission_tick: too_long
            })
        );
        // The bound itself is accepted.
        assert!(HiggsConfig::builder()
            .admission_tick(MAX_ADMISSION_TICK)
            .build()
            .is_ok());
    }

    #[test]
    fn zero_service_queue_depth_rejected() {
        assert_eq!(
            HiggsConfig::builder().service_queue_depth(0).build(),
            Err(ConfigError::InvalidServiceQueueDepth)
        );
        assert!(HiggsConfig::builder()
            .service_queue_depth(1)
            .build()
            .is_ok());
    }

    #[test]
    fn ablation_helpers() {
        let c = HiggsConfig::paper_default().without_mmb();
        assert_eq!(c.mapping_addresses, 1);
        let c = HiggsConfig::paper_default().without_overflow_blocks();
        assert!(!c.overflow_blocks);
        let c = HiggsConfig::paper_default().with_d1(64);
        assert_eq!(c.d1, 64);
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn layout_is_consistent_with_config() {
        let c = HiggsConfig::paper_default();
        let layout = c.layout();
        assert_eq!(layout.theta(), c.theta());
        assert_eq!(layout.matrix_side(1), c.d1);
        assert_eq!(layout.fingerprint_bits(1), c.f1_bits);
    }

    #[test]
    fn invalid_d1_rejected() {
        assert_eq!(
            HiggsConfig::builder().d1(12).build(),
            Err(ConfigError::InvalidMatrixSide { d1: 12 })
        );
        assert_eq!(
            HiggsConfig::builder().d1(1).build(),
            Err(ConfigError::InvalidMatrixSide { d1: 1 })
        );
    }

    #[test]
    fn invalid_fingerprint_and_address_bits_rejected() {
        assert_eq!(
            HiggsConfig::builder().f1_bits(32).build(),
            Err(ConfigError::InvalidFingerprintBits {
                f1_bits: 32,
                r_bits: 1
            })
        );
        assert_eq!(
            HiggsConfig::builder().r_bits(3).f1_bits(2).build(),
            Err(ConfigError::InvalidFingerprintBits {
                f1_bits: 2,
                r_bits: 3
            })
        );
        assert_eq!(
            HiggsConfig::builder().r_bits(0).build(),
            Err(ConfigError::InvalidAddressBits { r_bits: 0 })
        );
        assert_eq!(
            HiggsConfig::builder().r_bits(9).build(),
            Err(ConfigError::InvalidAddressBits { r_bits: 9 })
        );
    }

    #[test]
    fn invalid_bucket_entries_rejected() {
        assert_eq!(
            HiggsConfig::builder().bucket_entries(0).build(),
            Err(ConfigError::InvalidBucketEntries { bucket_entries: 0 })
        );
        // Occupancy counts are stored as u8 in the slab layout; validation
        // must fail instead of letting leaf construction panic later.
        assert_eq!(
            HiggsConfig::builder().bucket_entries(256).build(),
            Err(ConfigError::InvalidBucketEntries {
                bucket_entries: 256
            })
        );
    }

    #[test]
    fn invalid_mapping_addresses_rejected() {
        let err = HiggsConfig::builder().mapping_addresses(0).build();
        assert_eq!(
            err,
            Err(ConfigError::InvalidMappingAddresses {
                mapping_addresses: 0
            })
        );
    }

    #[test]
    fn invalid_shard_count_rejected() {
        assert_eq!(
            HiggsConfig::builder().shards(0).build(),
            Err(ConfigError::InvalidShardCount { shards: 0 })
        );
        assert_eq!(
            HiggsConfig::builder()
                .shards(crate::shard::MAX_SHARDS + 1)
                .build(),
            Err(ConfigError::InvalidShardCount {
                shards: crate::shard::MAX_SHARDS + 1
            })
        );
        assert!(HiggsConfig::builder()
            .shards(crate::shard::MAX_SHARDS)
            .build()
            .is_ok());
    }

    #[test]
    fn config_error_messages_name_the_constraint() {
        let msgs = [
            ConfigError::InvalidMatrixSide { d1: 12 }.to_string(),
            ConfigError::InvalidFingerprintBits {
                f1_bits: 40,
                r_bits: 1,
            }
            .to_string(),
            ConfigError::InvalidAddressBits { r_bits: 0 }.to_string(),
            ConfigError::InvalidBucketEntries { bucket_entries: 0 }.to_string(),
            ConfigError::InvalidMappingAddresses {
                mapping_addresses: 99,
            }
            .to_string(),
            ConfigError::InvalidShardCount { shards: 0 }.to_string(),
            ConfigError::InvalidIngestQueueCap.to_string(),
            ConfigError::InvalidAdmissionTick {
                admission_tick: Duration::from_secs(2),
            }
            .to_string(),
            ConfigError::InvalidServiceQueueDepth.to_string(),
            ConfigError::InvalidJournalSyncInterval.to_string(),
        ];
        for (msg, needle) in msgs.iter().zip([
            "d1",
            "F1",
            "R must",
            "b must",
            "r must",
            "shards must",
            "ingest_queue_cap",
            "admission_tick",
            "service_queue_depth",
            "journal_mode",
        ]) {
            assert!(msg.contains(needle), "{msg:?} missing {needle:?}");
        }
    }
}
