//! Configuration of a HIGGS summary.

use higgs_common::hashing::FingerprintLayout;

/// Tunable parameters of a [`HiggsSummary`](crate::HiggsSummary).
///
/// The defaults follow Section VI-A of the paper: leaf matrix side `d1 = 16`,
/// fingerprint length `F1 = 19` bits, `b = 3` entries per bucket, `r = 4`
/// mapping addresses per vertex (so each edge has 4×4 candidate buckets and a
/// 4-bit index pair), and `θ = 4` children per node (`R = 1` fingerprint bit
/// converted to address bits per level).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HiggsConfig {
    /// Leaf-layer compressed-matrix side `d1` (power of two).
    pub d1: u64,
    /// Leaf-layer fingerprint length `F1` in bits (per endpoint, ≤ 31).
    pub f1_bits: u32,
    /// Fingerprint bits converted into address bits per level climbed (`R`);
    /// the branching factor is `θ = 4^R`.
    pub r_bits: u32,
    /// Number of entries per bucket (`b`).
    pub bucket_entries: usize,
    /// Number of mapping addresses per vertex (`r`) for the Multiple Mapping
    /// Buckets optimisation; `1` disables MMB.
    pub mapping_addresses: u32,
    /// Whether overflow blocks absorb same-timestamp bursts (Section IV-C).
    ///
    /// Overflow blocks share the leaf matrix side `d1` (so their entries lift
    /// into ancestor aggregates without losing address bits) but use a single
    /// entry per bucket, keeping each block small.
    pub overflow_blocks: bool,
}

impl Default for HiggsConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl HiggsConfig {
    /// The configuration used throughout the paper's experiments
    /// (Section VI-A).
    pub fn paper_default() -> Self {
        Self {
            d1: 16,
            f1_bits: 19,
            r_bits: 1,
            bucket_entries: 3,
            mapping_addresses: 4,
            overflow_blocks: true,
        }
    }

    /// A configuration with Multiple Mapping Buckets disabled (used by the
    /// Fig. 20b ablation).
    pub fn without_mmb(mut self) -> Self {
        self.mapping_addresses = 1;
        self
    }

    /// A configuration with overflow blocks disabled (used by the Fig. 20b
    /// ablation).
    pub fn without_overflow_blocks(mut self) -> Self {
        self.overflow_blocks = false;
        self
    }

    /// A configuration with a different leaf matrix side (the Fig. 21
    /// parameter sweep).
    pub fn with_d1(mut self, d1: u64) -> Self {
        self.d1 = d1;
        self
    }

    /// The branching factor `θ = 4^R`.
    pub fn theta(&self) -> usize {
        1usize << (2 * self.r_bits)
    }

    /// Number of entries a leaf matrix can hold (`b · d1²`).
    pub fn leaf_capacity(&self) -> usize {
        self.bucket_entries * (self.d1 * self.d1) as usize
    }

    /// The fingerprint/address bit layout shared by all layers.
    pub fn layout(&self) -> FingerprintLayout {
        FingerprintLayout::new(self.f1_bits, self.d1, self.r_bits)
    }

    /// Validates the configuration, panicking with a descriptive message on
    /// invalid combinations. Called by [`HiggsSummary::new`](crate::HiggsSummary::new).
    pub fn validate(&self) {
        assert!(self.d1.is_power_of_two(), "d1 must be a power of two");
        assert!(self.d1 >= 2, "d1 must be at least 2");
        assert!(
            self.f1_bits >= self.r_bits && self.f1_bits <= 31,
            "F1 must be in [R, 31]"
        );
        assert!((1..=8).contains(&self.r_bits), "R must be in [1, 8]");
        // Bounds shared with CompressedMatrix::new: per-bucket occupancy is
        // stored as u8 and MMB index pairs as two u8 halves of a u16.
        assert!(
            (1..=u8::MAX as usize).contains(&self.bucket_entries),
            "b must be in [1, 255]"
        );
        assert!(
            (1..=crate::matrix::MAX_MAPPING as u32).contains(&self.mapping_addresses),
            "r must be in [1, {}]",
            crate::matrix::MAX_MAPPING
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_6a() {
        let c = HiggsConfig::paper_default();
        assert_eq!(c.d1, 16);
        assert_eq!(c.f1_bits, 19);
        assert_eq!(c.bucket_entries, 3);
        assert_eq!(c.mapping_addresses, 4);
        assert_eq!(c.theta(), 4);
        assert_eq!(c.leaf_capacity(), 3 * 256);
        c.validate();
    }

    #[test]
    fn ablation_helpers() {
        let c = HiggsConfig::paper_default().without_mmb();
        assert_eq!(c.mapping_addresses, 1);
        let c = HiggsConfig::paper_default().without_overflow_blocks();
        assert!(!c.overflow_blocks);
        let c = HiggsConfig::paper_default().with_d1(64);
        assert_eq!(c.d1, 64);
        c.validate();
    }

    #[test]
    fn layout_is_consistent_with_config() {
        let c = HiggsConfig::paper_default();
        let layout = c.layout();
        assert_eq!(layout.theta(), c.theta());
        assert_eq!(layout.matrix_side(1), c.d1);
        assert_eq!(layout.fingerprint_bits(1), c.f1_bits);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn invalid_d1_rejected() {
        HiggsConfig {
            d1: 12,
            ..HiggsConfig::paper_default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "b must be")]
    fn invalid_bucket_entries_rejected() {
        HiggsConfig {
            bucket_entries: 0,
            ..HiggsConfig::paper_default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "b must be")]
    fn oversized_bucket_entries_rejected_at_validation() {
        // Occupancy counts are stored as u8 in the slab layout; validate()
        // must fail fast instead of letting leaf construction panic later.
        HiggsConfig {
            bucket_entries: 256,
            ..HiggsConfig::paper_default()
        }
        .validate();
    }
}
