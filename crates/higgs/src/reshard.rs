//! Elastic resharding: changing a service's shard count by refolding its
//! mutation history.
//!
//! ## Why history, not snapshots
//!
//! A shard's leaf matrices store only `(address, fingerprint)` pairs — the
//! raw vertex identifiers are consumed by the hash and cannot be recovered
//! from the summary. Re-partitioning therefore cannot move data between
//! shard snapshots: it must **re-stream the raw mutations** through
//! [`shard_of`] at the new width. That raw record is the elastic history log
//! (see [`crate::history`]): per-shard, append-only, never truncated, each
//! mutation stamped with a global sequence number at ingest routing time.
//!
//! ## The fold
//!
//! [`read_history`](crate::history::read_history) merges every shard's
//! history files of every generation into one globally ordered operation
//! stream. The fold then plays that stream into `M` fresh pipelines,
//! routing each operation by `shard_of(src, M)`. Because every insert and
//! delete is replayed in its original global order, the folded service
//! answers queries **bit-identically** to a service built fresh at `M`
//! shards from the same single-producer workload. (Concurrent producers race
//! sequence stamping against channel sends, so cross-producer interleaving
//! is reconstructed in stamp order, which may differ from channel order —
//! HIGGS summaries are order-insensitive for inserts, so this matters only
//! for delete/insert races between producers.)
//!
//! ## Offline vs online
//!
//! [`ShardedHiggs::restore_resharded`] refolds a directory with no service
//! running — validation happens before anything is spawned, so a corrupt
//! source returns a typed [`ReshardError`] and leaks no writer threads.
//! [`ShardedHiggs::reshard`](crate::ShardedHiggs::reshard) does the same
//! fold on a live service behind the writer fence; see its docs for the
//! commit protocol.

use crate::config::HiggsConfig;
use crate::history::{self, HistoryOp, HistoryOpKind};
use crate::journal::{Journal, JournalError};
use crate::parallel::ParallelHiggs;
use crate::shard::{DurableState, ShardedHiggs, MAX_SHARDS};
use crate::snapshot::SnapshotError;
use higgs_common::hashing::shard_of;
use higgs_common::TemporalGraphSummary;
use std::fmt;
use std::path::Path;
use std::sync::{Arc, RwLock};

/// Why a reshard (offline refold or live [`ShardedHiggs::reshard`]) failed.
/// Every failure mode is typed; offline failures spawn nothing, and live
/// pre-commit failures leave the service unchanged.
#[derive(Debug)]
pub enum ReshardError {
    /// The requested shard count is outside `1..=MAX_SHARDS`.
    InvalidShardCount {
        /// The count that was requested.
        requested: usize,
    },
    /// The directory (or service) has no elastic mutation history to
    /// refold — it was created without
    /// [`StoreOptions::elastic`](crate::StoreOptions::elastic), or is not
    /// durable at all. The message names the missing prerequisite.
    HistoryUnavailable {
        /// What exactly is missing.
        detail: String,
    },
    /// The history record is internally inconsistent: interior corruption in
    /// a history file, or divergent records sharing a sequence number. The
    /// source directory cannot be trusted as a refold basis.
    Corrupt {
        /// The violation, as reported by the history reader.
        detail: String,
    },
    /// Reading history or (re)opening a journal/history log failed with an
    /// I/O-level journal error.
    Journal(JournalError),
    /// Reading the manifest or committing the refolded snapshot failed.
    Snapshot(SnapshotError),
    /// A shard is degraded: its writer failed and was not recovered, so
    /// mutations it acknowledged may be missing from the history log.
    /// Refolding would silently drop them — recover (or restore) first.
    Degraded {
        /// Index of the degraded shard.
        shard: usize,
    },
}

impl fmt::Display for ReshardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReshardError::InvalidShardCount { requested } => write!(
                f,
                "invalid target shard count {requested}: must be between 1 and {MAX_SHARDS}"
            ),
            ReshardError::HistoryUnavailable { detail } => {
                write!(f, "no elastic history to refold: {detail}")
            }
            ReshardError::Corrupt { detail } => {
                write!(f, "corrupt mutation history: {detail}")
            }
            ReshardError::Journal(e) => write!(f, "reshard I/O failed: {e}"),
            ReshardError::Snapshot(e) => write!(f, "reshard commit failed: {e}"),
            ReshardError::Degraded { shard } => write!(
                f,
                "shard {shard} is degraded: its acknowledged mutations may be missing \
                 from history, so a refold would drop them"
            ),
        }
    }
}

impl std::error::Error for ReshardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReshardError::Journal(e) => Some(e),
            ReshardError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JournalError> for ReshardError {
    fn from(e: JournalError) -> Self {
        // A corruption diagnosis survives the conversion as the dedicated
        // variant so callers (and the error-coverage lint) can distinguish
        // "the history is damaged" from "the disk misbehaved".
        match e {
            JournalError::Corrupt {
                shard,
                record,
                detail,
            } => ReshardError::Corrupt {
                detail: format!("shard {shard}, record {record}: {detail}"),
            },
            other => ReshardError::Journal(other),
        }
    }
}

impl From<SnapshotError> for ReshardError {
    fn from(e: SnapshotError) -> Self {
        ReshardError::Snapshot(e)
    }
}

/// Folds a globally ordered mutation history into `config.shards` fresh
/// pipelines, routing each operation through [`shard_of`] at the new width
/// and replaying it in order. Pipelines come back flushed (all aggregation
/// visible).
pub(crate) fn fold_history(
    ops: &[HistoryOp],
    config: &HiggsConfig,
    workers_per_shard: usize,
) -> Vec<ParallelHiggs> {
    let mut pipelines: Vec<ParallelHiggs> = (0..config.shards)
        .map(|s| {
            ParallelHiggs::new_on_core(
                *config,
                workers_per_shard,
                ParallelHiggs::pin_core_for(config, s),
            )
        })
        .collect();
    for op in ops {
        let pipeline = &mut pipelines[shard_of(op.edge.src, config.shards)];
        match op.kind {
            HistoryOpKind::Insert => pipeline.insert(&op.edge),
            HistoryOpKind::Delete => pipeline.delete(&op.edge),
        }
    }
    for pipeline in &mut pipelines {
        pipeline.flush();
    }
    pipelines
}

/// The offline reshard: refolds `dir`'s elastic history at `new_shards`,
/// commits the refolded snapshot into `dir`, and opens the directory as a
/// durable elastic service at the new width. Shared by
/// [`ShardedHiggs::restore_resharded`] and the
/// [`Store::open_resharded`](crate::Store::open_resharded) open path.
pub(crate) fn open_resharded(
    dir: &Path,
    new_shards: usize,
    workers_per_shard: usize,
    mode: crate::config::JournalMode,
) -> Result<ShardedHiggs, ReshardError> {
    if new_shards == 0 || new_shards > MAX_SHARDS {
        return Err(ReshardError::InvalidShardCount {
            requested: new_shards,
        });
    }
    if mode == crate::config::JournalMode::Off {
        return Err(ReshardError::HistoryUnavailable {
            detail: "an elastic service requires journaling (JournalMode::Off given): \
                     history cannot be maintained without the durable write path"
                .into(),
        });
    }
    // Everything below, up to the snapshot commit, only *reads*: a typed
    // failure here leaves the directory untouched and spawns nothing.
    let old_gen =
        history::max_history_gen(dir)?.ok_or_else(|| ReshardError::HistoryUnavailable {
            detail: format!(
                "{} holds no history files: the directory was not opened elastic \
                 (StoreOptions::elastic), so its mutation history was never recorded",
                dir.display()
            ),
        })?;
    let stored = crate::snapshot::SnapshotManifest::read_from_dir(dir)
        .map(|m| m.config)
        .map_err(|e| match e {
            // A crash before the first snapshot is still refoldable: the
            // history alone carries every acknowledged mutation, and the
            // default config of the history-only case comes from nowhere —
            // so a *missing* manifest is only acceptable when the caller
            // goes through `Store::open` with an explicit config. Here the
            // manifest is the config source; its absence is typed.
            SnapshotError::Io(io) if io.kind() == std::io::ErrorKind::NotFound => {
                ReshardError::HistoryUnavailable {
                    detail: format!(
                        "{} has no snapshot manifest to take the configuration from; \
                         open the directory with Store::open and an explicit config, \
                         then reshard online",
                        dir.display()
                    ),
                }
            }
            other => ReshardError::Snapshot(other),
        })?;
    let ops = history::read_history(dir)?;
    let next_seq = history::max_history_seq(dir)?.map_or(0, |s| s + 1);
    let mut config = stored;
    config.shards = new_shards;
    config.journal_mode = mode;
    let shards: Vec<Arc<RwLock<ParallelHiggs>>> = fold_history(&ops, &config, workers_per_shard)
        .into_iter()
        .map(|p| Arc::new(RwLock::new(p)))
        .collect();
    // Commit point: manifest written last. From here the directory is at the
    // new width; journals stamped for the old manifest are reset on open.
    crate::snapshot::write_snapshot_files(dir, &shards)?;
    let covering = crate::snapshot::manifest_tail_checksum(dir)?;
    let journals = (0..new_shards)
        .map(|s| Journal::open(dir, s, mode, covering).map(Some))
        .collect::<Result<Vec<_>, _>>()
        .map_err(ReshardError::from)?;
    let histories = (0..new_shards)
        .map(|s| crate::history::HistoryLog::open(dir, old_gen + 1, s, mode).map(Some))
        .collect::<Result<Vec<_>, _>>()
        .map_err(ReshardError::from)?;
    // Journals of retired shard slots are superseded by the snapshot just
    // committed; best-effort removal (a leftover is reset by `Journal::open`
    // if the count ever grows past it again).
    let mut stale = new_shards;
    loop {
        let path = dir.join(crate::journal::journal_file_name(stale));
        if !path.exists() {
            break;
        }
        let _ = std::fs::remove_file(&path);
        stale += 1;
    }
    let durable = Arc::new(DurableState {
        dir: dir.to_path_buf(),
        mode,
        workers_per_shard,
        history_gen: Some(old_gen + 1),
    });
    let service =
        ShardedHiggs::from_arc_pipelines_with(config, shards, Some(durable), journals, histories)
            .map_err(|e| ReshardError::Snapshot(SnapshotError::Config(e)))?;
    service.resume_seq(next_seq);
    Ok(service)
}

impl ShardedHiggs {
    /// Rebuilds a service from an **elastic** durable directory at a
    /// different shard count: the directory's full mutation history is
    /// re-streamed through [`shard_of`] at `new_shards`, the refolded layout
    /// is committed back into the directory, and the service opens durable
    /// (journaling in [`JournalMode::Buffered`](crate::JournalMode) — use
    /// [`Store::open_resharded`](crate::Store::open_resharded) with an
    /// explicit config to pick a different mode) at the new width.
    ///
    /// Queries on the result are bit-identical to a service built fresh at
    /// `new_shards` from the same single-producer workload.
    ///
    /// Fails with a typed [`ReshardError`] — invalid count, missing history
    /// ([`StoreOptions::elastic`](crate::StoreOptions::elastic) was never
    /// set), corrupt history — **before** anything is spawned.
    pub fn restore_resharded(
        dir: impl AsRef<Path>,
        new_shards: usize,
    ) -> Result<Self, ReshardError> {
        Self::restore_resharded_with_workers(dir, new_shards, 1)
    }

    /// [`restore_resharded`](Self::restore_resharded) with
    /// `workers_per_shard` aggregation workers behind each shard's writer.
    pub fn restore_resharded_with_workers(
        dir: impl AsRef<Path>,
        new_shards: usize,
        workers_per_shard: usize,
    ) -> Result<Self, ReshardError> {
        open_resharded(
            dir.as_ref(),
            new_shards,
            workers_per_shard,
            crate::config::JournalMode::Buffered,
        )
    }
}
