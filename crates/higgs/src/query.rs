//! Temporal-range-query evaluation for HIGGS: edge and vertex queries over a
//! [`QueryPlan`], plus the [`TemporalGraphSummary`] trait implementation that
//! plugs HIGGS into the shared experiment harness (path and subgraph queries
//! come from `higgs_common::SummaryExt`, identical for every competitor).

use crate::boundary::{QueryPlan, QueryTarget};
use crate::tree::HiggsSummary;
use higgs_common::{
    StreamEdge, TemporalGraphSummary, TimeRange, VertexDirection, VertexId, Weight,
};

impl HiggsSummary {
    /// Edge query evaluated over an existing plan (exposed so benchmarks can
    /// separate planning cost from matrix-access cost).
    ///
    /// Each endpoint is hashed once for the whole plan; per-target work is
    /// only the layer-specific fingerprint/address re-partition of that hash.
    pub fn edge_query_with_plan(&self, src: VertexId, dst: VertexId, plan: &QueryPlan) -> Weight {
        let hs1 = self.layout.split_vertex(src, 1);
        let hd1 = self.layout.split_vertex(dst, 1);
        let mut total: u64 = 0;
        for target in &plan.targets {
            match *target {
                QueryTarget::Leaf { index, filter } => {
                    let leaf = &self.leaves[index];
                    total += leaf.matrix.edge_weight(
                        hs1.address,
                        hd1.address,
                        hs1.fingerprint as u32,
                        hd1.fingerprint as u32,
                        Some(filter),
                    );
                    total += leaf.overflow.edge_weight(
                        hs1.address,
                        hd1.address,
                        hs1.fingerprint as u32,
                        hd1.fingerprint as u32,
                        Some(filter),
                    );
                }
                QueryTarget::Aggregate { level, index } => {
                    let layer = level as u32 + 2;
                    let node = &self.internals[level][index];
                    let matrix = node
                        .matrix
                        .as_ref()
                        .expect("plan only references materialised aggregates");
                    let hs = self.layout.split(hs1.hash, layer);
                    let hd = self.layout.split(hd1.hash, layer);
                    total += matrix.edge_weight(
                        hs.address,
                        hd.address,
                        hs.fingerprint as u32,
                        hd.fingerprint as u32,
                        None,
                    );
                }
            }
        }
        total
    }

    /// Vertex query evaluated over an existing plan.
    pub fn vertex_query_with_plan(
        &self,
        vertex: VertexId,
        direction: VertexDirection,
        plan: &QueryPlan,
    ) -> Weight {
        let hv1 = self.layout.split_vertex(vertex, 1);
        let mut total: u64 = 0;
        for target in &plan.targets {
            match *target {
                QueryTarget::Leaf { index, filter } => {
                    let leaf = &self.leaves[index];
                    let (m, o) = match direction {
                        VertexDirection::Out => (
                            leaf.matrix.src_weight(
                                hv1.address,
                                hv1.fingerprint as u32,
                                Some(filter),
                            ),
                            leaf.overflow.src_weight(
                                hv1.address,
                                hv1.fingerprint as u32,
                                Some(filter),
                            ),
                        ),
                        VertexDirection::In => (
                            leaf.matrix.dst_weight(
                                hv1.address,
                                hv1.fingerprint as u32,
                                Some(filter),
                            ),
                            leaf.overflow.dst_weight(
                                hv1.address,
                                hv1.fingerprint as u32,
                                Some(filter),
                            ),
                        ),
                    };
                    total += m + o;
                }
                QueryTarget::Aggregate { level, index } => {
                    let layer = level as u32 + 2;
                    let node = &self.internals[level][index];
                    let matrix = node
                        .matrix
                        .as_ref()
                        .expect("plan only references materialised aggregates");
                    let hv = self.layout.split(hv1.hash, layer);
                    total += match direction {
                        VertexDirection::Out => {
                            matrix.src_weight(hv.address, hv.fingerprint as u32, None)
                        }
                        VertexDirection::In => {
                            matrix.dst_weight(hv.address, hv.fingerprint as u32, None)
                        }
                    };
                }
            }
        }
        total
    }
}

impl TemporalGraphSummary for HiggsSummary {
    fn insert(&mut self, edge: &StreamEdge) {
        self.insert_edge(edge);
    }

    fn delete(&mut self, edge: &StreamEdge) {
        self.delete_edge(edge);
    }

    fn edge_query(&self, src: VertexId, dst: VertexId, range: TimeRange) -> Weight {
        let plan = self.plan(range);
        self.edge_query_with_plan(src, dst, &plan)
    }

    fn vertex_query(
        &self,
        vertex: VertexId,
        direction: VertexDirection,
        range: TimeRange,
    ) -> Weight {
        let plan = self.plan(range);
        self.vertex_query_with_plan(vertex, direction, &plan)
    }

    fn space_bytes(&self) -> usize {
        self.space()
    }

    fn name(&self) -> &'static str {
        "HIGGS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HiggsConfig;
    use higgs_common::{ExactTemporalGraph, SummaryExt};

    fn tiny_config() -> HiggsConfig {
        HiggsConfig {
            d1: 4,
            f1_bits: 14,
            r_bits: 1,
            bucket_entries: 2,
            mapping_addresses: 2,
            overflow_blocks: true,
        }
    }

    fn fig5_edges() -> Vec<StreamEdge> {
        vec![
            StreamEdge::new(1, 2, 1, 1),
            StreamEdge::new(4, 5, 1, 2),
            StreamEdge::new(2, 3, 1, 3),
            StreamEdge::new(1, 4, 2, 4),
            StreamEdge::new(4, 6, 3, 5),
            StreamEdge::new(2, 3, 1, 6),
            StreamEdge::new(3, 7, 2, 7),
            StreamEdge::new(4, 7, 2, 8),
            StreamEdge::new(2, 3, 2, 9),
            StreamEdge::new(5, 6, 1, 10),
            StreamEdge::new(6, 7, 1, 11),
        ]
    }

    #[test]
    fn reproduces_example_1_exactly() {
        let mut s = HiggsSummary::new(HiggsConfig::paper_default());
        for e in fig5_edges() {
            s.insert(&e);
        }
        // Example 1 of the paper.
        assert_eq!(s.edge_query(2, 3, TimeRange::new(5, 10)), 3);
        assert_eq!(
            s.vertex_query(4, VertexDirection::Out, TimeRange::new(1, 11)),
            6
        );
        let sub = higgs_common::SubgraphQuery {
            edges: vec![(2, 3), (3, 7), (2, 4)],
            range: TimeRange::new(4, 8),
        };
        assert_eq!(s.subgraph_query(&sub), 3);
    }

    #[test]
    fn matches_exact_store_on_small_collision_free_stream() {
        let mut s = HiggsSummary::new(HiggsConfig::paper_default());
        let mut exact = ExactTemporalGraph::new();
        let edges: Vec<StreamEdge> = (0..500u64)
            .map(|i| StreamEdge::new(i % 37, (i * 13) % 41 + 100, 1 + i % 4, i))
            .collect();
        for e in &edges {
            s.insert(e);
            exact.insert(e);
        }
        for (lo, hi) in [(0u64, 499u64), (10, 20), (100, 400), (250, 250)] {
            let r = TimeRange::new(lo, hi);
            for e in edges.iter().step_by(17) {
                assert_eq!(
                    s.edge_query(e.src, e.dst, r),
                    exact.edge_query(e.src, e.dst, r),
                    "edge ({},{}) over {r}",
                    e.src,
                    e.dst
                );
            }
            for v in [0u64, 5, 17, 101, 120] {
                assert_eq!(
                    s.vertex_query(v, VertexDirection::Out, r),
                    exact.vertex_query(v, VertexDirection::Out, r)
                );
                assert_eq!(
                    s.vertex_query(v, VertexDirection::In, r),
                    exact.vertex_query(v, VertexDirection::In, r)
                );
            }
        }
    }

    #[test]
    fn never_underestimates_with_tiny_matrices() {
        // Force heavy collisions with a deliberately under-sized structure:
        // estimates may exceed the truth but never fall below it.
        let mut s = HiggsSummary::new(tiny_config());
        let mut exact = ExactTemporalGraph::new();
        for i in 0..5_000u64 {
            let e = StreamEdge::new(i % 23, (i * 7) % 23, 1, i / 3);
            s.insert(&e);
            exact.insert(&e);
        }
        for (lo, hi) in [(0u64, 2000u64), (100, 300), (0, 50), (1500, 1666)] {
            let r = TimeRange::new(lo, hi);
            for src in 0..23u64 {
                for dst in 0..23u64 {
                    let est = s.edge_query(src, dst, r);
                    let truth = exact.edge_query(src, dst, r);
                    assert!(est >= truth, "underestimate for ({src},{dst}) over {r}");
                }
                let est = s.vertex_query(src, VertexDirection::Out, r);
                let truth = exact.vertex_query(src, VertexDirection::Out, r);
                assert!(est >= truth);
            }
        }
    }

    #[test]
    fn temporal_filtering_respects_range_boundaries() {
        let mut s = HiggsSummary::new(HiggsConfig::paper_default());
        s.insert(&StreamEdge::new(1, 2, 10, 100));
        s.insert(&StreamEdge::new(1, 2, 20, 200));
        s.insert(&StreamEdge::new(1, 2, 30, 300));
        assert_eq!(s.edge_query(1, 2, TimeRange::new(0, 99)), 0);
        assert_eq!(s.edge_query(1, 2, TimeRange::new(100, 100)), 10);
        assert_eq!(s.edge_query(1, 2, TimeRange::new(100, 200)), 30);
        assert_eq!(s.edge_query(1, 2, TimeRange::new(150, 250)), 20);
        assert_eq!(s.edge_query(1, 2, TimeRange::new(301, 400)), 0);
        assert_eq!(s.edge_query(1, 2, TimeRange::all()), 60);
    }

    #[test]
    fn plan_reuse_matches_direct_queries() {
        let mut s = HiggsSummary::new(tiny_config());
        for i in 0..3_000u64 {
            s.insert(&StreamEdge::new(i % 80, (i * 3) % 80, 1, i));
        }
        let range = TimeRange::new(500, 2_200);
        let plan = s.plan(range);
        for src in (0..80u64).step_by(7) {
            for dst in (0..80u64).step_by(11) {
                assert_eq!(
                    s.edge_query_with_plan(src, dst, &plan),
                    s.edge_query(src, dst, range)
                );
            }
            assert_eq!(
                s.vertex_query_with_plan(src, VertexDirection::In, &plan),
                s.vertex_query(src, VertexDirection::In, range)
            );
        }
    }

    #[test]
    fn name_is_higgs() {
        let s = HiggsSummary::new(HiggsConfig::paper_default());
        assert_eq!(s.name(), "HIGGS");
    }
}
