//! Temporal-range-query evaluation for HIGGS: edge and vertex queries over a
//! [`QueryPlan`], the typed [`Query`] evaluation (`query_with_plan`), and the
//! [`TemporalGraphSummary`] trait implementation that plugs HIGGS into the
//! shared experiment harness.
//!
//! HIGGS overrides the trait's batch surface with a **plan-sharing,
//! columnar executor**: [`TemporalGraphSummary::query_batch`] groups the
//! batch by distinct [`TimeRange`] ([`higgs_common::group_by_range`] — a
//! linear small-vec grouping, since batches rarely span more than a handful
//! of windows), obtains each range's plan from the cross-batch
//! [`plan_cache`](crate::plan_cache) (one Algorithm-3 boundary search per
//! range *per summary lifetime* while the summary does not mutate), and then
//! evaluates each group **columnar**: every query of the group is broken
//! into primitive probes (one per edge/vertex lookup), the probes are
//! deduplicated, their endpoints hashed once, and the probe set sorted by
//! bucket address — after which each plan target's slab is swept **once**,
//! answering every probe against it. A batch of N queries over T targets
//! costs T cache-friendly passes instead of N × T scattered walks, and a
//! k-hop path query costs one boundary search instead of k. Results are
//! bit-identical to the per-primitive loop: probes accumulate the same
//! per-target contributions in the same plan order, and per-query results
//! are re-assembled by summing probe totals exactly as the per-query
//! composition would.

use crate::boundary::{QueryPlan, QueryTarget};
use crate::matrix::ProbeScratch;
use crate::tree::HiggsSummary;
use higgs_common::hashing::HashedVertex;
use higgs_common::{
    group_by_range, Query, StreamEdge, TemporalGraphSummary, TimeRange, VertexDirection, VertexId,
    Weight,
};

impl HiggsSummary {
    /// Contribution of leaf `index` (matrix plus overflow blocks) to an edge
    /// query, restricted to the inclusive offset `filter`.
    fn leaf_edge_weight(
        &self,
        index: usize,
        hs1: &HashedVertex,
        hd1: &HashedVertex,
        filter: (u32, u32),
    ) -> u64 {
        let mut scratch = ProbeScratch::new();
        self.leaf_edge_weight_scratch(&mut scratch, index, hs1, hd1, filter)
    }

    /// [`leaf_edge_weight`](Self::leaf_edge_weight) with a caller-provided
    /// probe scratch (the columnar executor threads one scratch through a
    /// whole probe sweep; leaf matrix and overflow blocks share geometry, so
    /// the candidate fill is reused across all of them).
    // LINT-ALLOW(hot-path-panic): `index` comes from a plan target or a
    // clamped leaf span, both of which only reference existing leaves.
    fn leaf_edge_weight_scratch(
        &self,
        scratch: &mut ProbeScratch,
        index: usize,
        hs1: &HashedVertex,
        hd1: &HashedVertex,
        filter: (u32, u32),
    ) -> u64 {
        let leaf = &self.leaves[index];
        leaf.matrix.edge_weight_scratch(
            scratch,
            hs1.address,
            hd1.address,
            hs1.fingerprint as u32,
            hd1.fingerprint as u32,
            Some(filter),
        ) + leaf.overflow.edge_weight_scratch(
            scratch,
            hs1.address,
            hd1.address,
            hs1.fingerprint as u32,
            hd1.fingerprint as u32,
            Some(filter),
        )
    }

    /// Contribution of leaf `index` (matrix plus overflow blocks) to a vertex
    /// query, restricted to the inclusive offset `filter`.
    fn leaf_vertex_weight(
        &self,
        index: usize,
        hv1: &HashedVertex,
        direction: VertexDirection,
        filter: (u32, u32),
    ) -> u64 {
        let mut scratch = ProbeScratch::new();
        self.leaf_vertex_weight_scratch(&mut scratch, index, hv1, direction, filter)
    }

    /// [`leaf_vertex_weight`](Self::leaf_vertex_weight) with a
    /// caller-provided probe scratch.
    // LINT-ALLOW(hot-path-panic): `index` comes from a plan target or a
    // clamped leaf span, both of which only reference existing leaves.
    fn leaf_vertex_weight_scratch(
        &self,
        scratch: &mut ProbeScratch,
        index: usize,
        hv1: &HashedVertex,
        direction: VertexDirection,
        filter: (u32, u32),
    ) -> u64 {
        let leaf = &self.leaves[index];
        match direction {
            VertexDirection::Out => {
                leaf.matrix.src_weight_scratch(
                    scratch,
                    hv1.address,
                    hv1.fingerprint as u32,
                    Some(filter),
                ) + leaf.overflow.src_weight_scratch(
                    scratch,
                    hv1.address,
                    hv1.fingerprint as u32,
                    Some(filter),
                )
            }
            VertexDirection::In => {
                leaf.matrix.dst_weight_scratch(
                    scratch,
                    hv1.address,
                    hv1.fingerprint as u32,
                    Some(filter),
                ) + leaf.overflow.dst_weight_scratch(
                    scratch,
                    hv1.address,
                    hv1.fingerprint as u32,
                    Some(filter),
                )
            }
        }
    }

    /// Graceful fallback when a plan references an aggregate whose matrix has
    /// not materialised (deferred aggregation still in flight, or a plan
    /// built against a different materialisation state): descend to the
    /// leaves the node covers and evaluate them with the plan's range filter,
    /// exactly as the boundary search would have.
    // LINT-ALLOW(hot-path-panic): `leaf_span` clamps `last` to the final
    // existing leaf (and the empty-leaves case returns early above), so
    // `leaves[leaf_idx]` is always in range.
    fn unaggregated_leaves(
        &self,
        level: usize,
        index: usize,
        range: Option<TimeRange>,
        mut leaf_eval: impl FnMut(usize, (u32, u32)) -> u64,
    ) -> u64 {
        if self.leaves.is_empty() {
            return 0;
        }
        // `leaf_span` already clamps `last` to the final existing leaf.
        let (first, last) = self.leaf_span(level, index);
        let mut total = 0u64;
        for leaf_idx in first..=last {
            let filter = match range {
                Some(r) => match self.leaves[leaf_idx].offset_filter(r) {
                    Some(f) => f,
                    None => continue,
                },
                None => (0, u32::MAX),
            };
            total += leaf_eval(leaf_idx, filter);
        }
        total
    }

    /// Edge query evaluated over an existing plan (exposed so benchmarks can
    /// separate planning cost from matrix-access cost).
    ///
    /// Each endpoint is hashed once for the whole plan; per-target work is
    /// only the layer-specific fingerprint/address re-partition of that hash.
    // LINT-ALLOW(hot-path-panic): plan targets are built by the boundary
    // search against this summary's own tree, so `internals[level][index]`
    // always addresses an existing node.
    pub fn edge_query_with_plan(&self, src: VertexId, dst: VertexId, plan: &QueryPlan) -> Weight {
        let hs1 = self.layout.split_vertex(src, 1);
        let hd1 = self.layout.split_vertex(dst, 1);
        let mut total: u64 = 0;
        for target in &plan.targets {
            match *target {
                QueryTarget::Leaf { index, filter } => {
                    total += self.leaf_edge_weight(index, &hs1, &hd1, filter);
                }
                QueryTarget::Aggregate { level, index } => {
                    let node = &self.internals[level][index];
                    match node.matrix.as_ref() {
                        Some(matrix) => {
                            let layer = level as u32 + 2;
                            let hs = self.layout.split(hs1.hash, layer);
                            let hd = self.layout.split(hd1.hash, layer);
                            total += matrix.edge_weight(
                                hs.address,
                                hd.address,
                                hs.fingerprint as u32,
                                hd.fingerprint as u32,
                                None,
                            );
                        }
                        None => {
                            total +=
                                self.unaggregated_leaves(level, index, plan.range, |idx, f| {
                                    self.leaf_edge_weight(idx, &hs1, &hd1, f)
                                });
                        }
                    }
                }
            }
        }
        total
    }

    /// Vertex query evaluated over an existing plan.
    // LINT-ALLOW(hot-path-panic): plan targets are built by the boundary
    // search against this summary's own tree, so `internals[level][index]`
    // always addresses an existing node.
    pub fn vertex_query_with_plan(
        &self,
        vertex: VertexId,
        direction: VertexDirection,
        plan: &QueryPlan,
    ) -> Weight {
        let hv1 = self.layout.split_vertex(vertex, 1);
        let mut total: u64 = 0;
        for target in &plan.targets {
            match *target {
                QueryTarget::Leaf { index, filter } => {
                    total += self.leaf_vertex_weight(index, &hv1, direction, filter);
                }
                QueryTarget::Aggregate { level, index } => {
                    let node = &self.internals[level][index];
                    match node.matrix.as_ref() {
                        Some(matrix) => {
                            let layer = level as u32 + 2;
                            let hv = self.layout.split(hv1.hash, layer);
                            total += match direction {
                                VertexDirection::Out => {
                                    matrix.src_weight(hv.address, hv.fingerprint as u32, None)
                                }
                                VertexDirection::In => {
                                    matrix.dst_weight(hv.address, hv.fingerprint as u32, None)
                                }
                            };
                        }
                        None => {
                            total +=
                                self.unaggregated_leaves(level, index, plan.range, |idx, f| {
                                    self.leaf_vertex_weight(idx, &hv1, direction, f)
                                });
                        }
                    }
                }
            }
        }
        total
    }

    /// Evaluates one typed [`Query`] of any kind against an existing plan.
    ///
    /// The plan must have been built for `query.range()`; every hop of a
    /// path query and every edge of a subgraph query reuses it, which is
    /// what makes a k-hop path cost one boundary search instead of k.
    // LINT-ALLOW(hot-path-panic): `windows(2)` yields exactly-2-element
    // slices, so `w[0]`/`w[1]` cannot be out of range.
    pub fn query_with_plan(&self, query: &Query, plan: &QueryPlan) -> Weight {
        match query {
            Query::Edge(q) => self.edge_query_with_plan(q.src, q.dst, plan),
            Query::Vertex(q) => self.vertex_query_with_plan(q.vertex, q.direction, plan),
            Query::Path(q) => q
                .vertices
                .windows(2)
                .map(|w| self.edge_query_with_plan(w[0], w[1], plan))
                .sum(),
            Query::Subgraph(q) => q
                .edges
                .iter()
                .map(|&(s, d)| self.edge_query_with_plan(s, d, plan))
                .sum(),
        }
    }

    /// Columnar evaluation of one range group of a batch: every query in
    /// `members` (indices into `queries`, all sharing `plan`'s range) is
    /// decomposed into primitive probes, the probes deduplicated and sorted
    /// by bucket address, and each plan target swept **once** over the whole
    /// probe set. Per-query results are written into `results`.
    ///
    /// Bit-identity with the per-query loop: each probe total accumulates the
    /// same per-target contributions in the same plan order that
    /// [`edge_query_with_plan`](Self::edge_query_with_plan) /
    /// [`vertex_query_with_plan`](Self::vertex_query_with_plan) would
    /// produce, and composite queries sum their probe totals in hop/edge
    /// order exactly like [`query_with_plan`](Self::query_with_plan).
    // LINT-ALLOW(hot-path-panic): all indexing in this sweep is closed over
    // vectors built a few lines earlier with matching lengths — `probes`
    // parallels the sorted probe keys, `edge_totals`/`vertex_totals`
    // parallel `edge_keys`/`vertex_keys`, `results`/`queries` are indexed by
    // member ids collected from `queries` itself, and `windows(2)` yields
    // exactly-2-element slices.
    fn evaluate_group_columnar(
        &self,
        queries: &[Query],
        members: &[u32],
        plan: &QueryPlan,
        results: &mut [Weight],
    ) {
        // Probe keys, deduplicated: one edge probe per distinct (src, dst)
        // pair, one vertex probe per distinct (vertex, direction).
        let mut edge_keys: Vec<(VertexId, VertexId)> = Vec::new();
        let mut vertex_keys: Vec<(VertexId, VertexDirection)> = Vec::new();
        for &qi in members {
            match &queries[qi as usize] {
                Query::Edge(q) => edge_keys.push((q.src, q.dst)),
                Query::Vertex(q) => vertex_keys.push((q.vertex, q.direction)),
                Query::Path(q) => {
                    edge_keys.extend(q.vertices.windows(2).map(|w| (w[0], w[1])));
                }
                Query::Subgraph(q) => edge_keys.extend(q.edges.iter().copied()),
            }
        }
        edge_keys.sort_unstable();
        edge_keys.dedup();
        vertex_keys.sort_unstable();
        vertex_keys.dedup();

        // Hash every distinct endpoint exactly once (probes share endpoints:
        // consecutive path hops, fan-in subgraphs).
        let mut endpoints: Vec<VertexId> = edge_keys
            .iter()
            .flat_map(|&(src, dst)| [src, dst])
            .chain(vertex_keys.iter().map(|&(vertex, _)| vertex))
            .collect();
        endpoints.sort_unstable();
        endpoints.dedup();
        let hashed: Vec<HashedVertex> = endpoints
            .iter()
            .map(|&v| self.layout.split_vertex(v, 1))
            .collect();
        let hash_of = |v: VertexId| -> HashedVertex {
            // Every probe endpoint was collected into `endpoints` above, so
            // the search can only miss on a logic error; fall through to
            // recomputing the hash (bit-identical to the table entry) rather
            // than panicking on the hot path.
            match endpoints.binary_search(&v) {
                // LINT-ALLOW(hot-path-panic): index returned by
                // binary_search over this very slice is in bounds.
                Ok(pos) => hashed[pos],
                Err(_) => {
                    debug_assert!(false, "endpoint {v} not hashed above");
                    self.layout.split_vertex(v, 1)
                }
            }
        };

        let edge_probes: Vec<(HashedVertex, HashedVertex)> = edge_keys
            .iter()
            .map(|&(src, dst)| (hash_of(src), hash_of(dst)))
            .collect();
        let vertex_probes: Vec<(HashedVertex, VertexDirection)> = vertex_keys
            .iter()
            .map(|&(vertex, direction)| (hash_of(vertex), direction))
            .collect();

        // Sweep orders sorted by bucket address, so each target pass walks
        // its slab in (mostly) ascending row order. Higher layers re-derive
        // their address as `(address << R) | fp_top`, which preserves this
        // ordering as a prefix order, so one sort serves every layer. The
        // key packs both addresses into one `u128` (one scalar compare per
        // element; tie order is irrelevant because probe contributions only
        // accumulate).
        let mut edge_sweep: Vec<u32> = (0..edge_probes.len() as u32).collect();
        edge_sweep.sort_unstable_by_key(|&p| {
            let (hs, hd) = &edge_probes[p as usize];
            (u128::from(hs.address) << 64) | u128::from(hd.address)
        });
        let mut vertex_sweep: Vec<u32> = (0..vertex_probes.len() as u32).collect();
        vertex_sweep.sort_unstable_by_key(|&p| vertex_probes[p as usize].0.address);

        // One pass per plan target over the whole probe set. A single probe
        // scratch serves the entire group: the sweeps are address-sorted, so
        // consecutive probes often share endpoints and skip their candidate
        // refill. While answering probe `k`, the slab lines of probe
        // `k + PREFETCH_AHEAD` are software-prefetched — the probe set is
        // known in advance, so the sweep never waits on a cold first bucket.
        const PREFETCH_AHEAD: usize = 8;
        let mut scratch = ProbeScratch::new();
        let mut edge_totals = vec![0u64; edge_probes.len()];
        let mut vertex_totals = vec![0u64; vertex_probes.len()];
        for target in &plan.targets {
            match *target {
                QueryTarget::Leaf { index, filter } => {
                    let leaf = &self.leaves[index];
                    for (k, &p) in edge_sweep.iter().enumerate() {
                        if let Some(&ahead) = edge_sweep.get(k + PREFETCH_AHEAD) {
                            let (hs, hd) = &edge_probes[ahead as usize];
                            leaf.matrix.prefetch_edge_probe(hs.address, hd.address);
                        }
                        let (hs1, hd1) = &edge_probes[p as usize];
                        edge_totals[p as usize] +=
                            self.leaf_edge_weight_scratch(&mut scratch, index, hs1, hd1, filter);
                    }
                    for (k, &p) in vertex_sweep.iter().enumerate() {
                        if let Some(&ahead) = vertex_sweep.get(k + PREFETCH_AHEAD) {
                            let (hv, direction) = &vertex_probes[ahead as usize];
                            match direction {
                                VertexDirection::Out => leaf.matrix.prefetch_row_probe(hv.address),
                                VertexDirection::In => leaf.matrix.prefetch_col_probe(hv.address),
                            }
                        }
                        let (hv1, direction) = &vertex_probes[p as usize];
                        vertex_totals[p as usize] += self.leaf_vertex_weight_scratch(
                            &mut scratch,
                            index,
                            hv1,
                            *direction,
                            filter,
                        );
                    }
                }
                QueryTarget::Aggregate { level, index } => {
                    let node = &self.internals[level][index];
                    match node.matrix.as_ref() {
                        Some(matrix) => {
                            let layer = level as u32 + 2;
                            for (k, &p) in edge_sweep.iter().enumerate() {
                                if let Some(&ahead) = edge_sweep.get(k + PREFETCH_AHEAD) {
                                    let (hs, hd) = &edge_probes[ahead as usize];
                                    matrix.prefetch_edge_probe(
                                        self.layout.split(hs.hash, layer).address,
                                        self.layout.split(hd.hash, layer).address,
                                    );
                                }
                                let (hs1, hd1) = &edge_probes[p as usize];
                                let hs = self.layout.split(hs1.hash, layer);
                                let hd = self.layout.split(hd1.hash, layer);
                                edge_totals[p as usize] += matrix.edge_weight_scratch(
                                    &mut scratch,
                                    hs.address,
                                    hd.address,
                                    hs.fingerprint as u32,
                                    hd.fingerprint as u32,
                                    None,
                                );
                            }
                            for (k, &p) in vertex_sweep.iter().enumerate() {
                                if let Some(&ahead) = vertex_sweep.get(k + PREFETCH_AHEAD) {
                                    let (hv, direction) = &vertex_probes[ahead as usize];
                                    let addr = self.layout.split(hv.hash, layer).address;
                                    match direction {
                                        VertexDirection::Out => matrix.prefetch_row_probe(addr),
                                        VertexDirection::In => matrix.prefetch_col_probe(addr),
                                    }
                                }
                                let (hv1, direction) = &vertex_probes[p as usize];
                                let hv = self.layout.split(hv1.hash, layer);
                                vertex_totals[p as usize] += match direction {
                                    VertexDirection::Out => matrix.src_weight_scratch(
                                        &mut scratch,
                                        hv.address,
                                        hv.fingerprint as u32,
                                        None,
                                    ),
                                    VertexDirection::In => matrix.dst_weight_scratch(
                                        &mut scratch,
                                        hv.address,
                                        hv.fingerprint as u32,
                                        None,
                                    ),
                                };
                            }
                        }
                        None => {
                            for &p in &edge_sweep {
                                let (hs1, hd1) = &edge_probes[p as usize];
                                edge_totals[p as usize] +=
                                    self.unaggregated_leaves(level, index, plan.range, |idx, f| {
                                        self.leaf_edge_weight(idx, hs1, hd1, f)
                                    });
                            }
                            for &p in &vertex_sweep {
                                let (hv1, direction) = &vertex_probes[p as usize];
                                vertex_totals[p as usize] +=
                                    self.unaggregated_leaves(level, index, plan.range, |idx, f| {
                                        self.leaf_vertex_weight(idx, hv1, *direction, f)
                                    });
                            }
                        }
                    }
                }
            }
        }

        // Re-assemble per-query results from the probe totals. Every query
        // key was collected into `edge_keys`/`vertex_keys` during probe
        // planning, so the searches can only miss on a logic error; report 0
        // (the empty-summary answer) under a debug assertion instead of
        // panicking on the hot path.
        let edge_total = |src: VertexId, dst: VertexId| -> u64 {
            match edge_keys.binary_search(&(src, dst)) {
                // LINT-ALLOW(hot-path-panic): `edge_totals` is built with
                // one entry per `edge_keys` element, so the index holds.
                Ok(pos) => edge_totals[pos],
                Err(_) => {
                    debug_assert!(false, "edge probe ({src}, {dst}) not collected above");
                    0
                }
            }
        };
        for &qi in members {
            let qi = qi as usize;
            results[qi] = match &queries[qi] {
                Query::Edge(q) => edge_total(q.src, q.dst),
                Query::Vertex(q) => match vertex_keys.binary_search(&(q.vertex, q.direction)) {
                    // LINT-ALLOW(hot-path-panic): `vertex_totals` is built
                    // with one entry per `vertex_keys` element.
                    Ok(pos) => vertex_totals[pos],
                    Err(_) => {
                        debug_assert!(false, "vertex probe not collected above");
                        0
                    }
                },
                Query::Path(q) => q.vertices.windows(2).map(|w| edge_total(w[0], w[1])).sum(),
                Query::Subgraph(q) => q.edges.iter().map(|&(s, d)| edge_total(s, d)).sum(),
            };
        }
    }
}

impl TemporalGraphSummary for HiggsSummary {
    fn insert(&mut self, edge: &StreamEdge) {
        self.insert_edge(edge);
    }

    fn delete(&mut self, edge: &StreamEdge) {
        self.delete_edge(edge);
    }

    fn edge_query(&self, src: VertexId, dst: VertexId, range: TimeRange) -> Weight {
        // The primitive surface deliberately bypasses the plan cache: it is
        // the reference composition batch/cache results are tested against.
        let plan = self.plan(range);
        self.edge_query_with_plan(src, dst, &plan)
    }

    fn vertex_query(
        &self,
        vertex: VertexId,
        direction: VertexDirection,
        range: TimeRange,
    ) -> Weight {
        let plan = self.plan(range);
        self.vertex_query_with_plan(vertex, direction, &plan)
    }

    fn query(&self, query: &Query) -> Weight {
        // Typed surface: plans come from the cross-batch cache, so repeated
        // windows skip the boundary search entirely (epoch-validated, see
        // `plan_cache`).
        let plan = self.cached_plan(query.range());
        self.query_with_plan(query, &plan)
    }

    fn query_batch(&self, queries: &[Query]) -> Vec<Weight> {
        // Plan-sharing columnar executor: group by distinct range (linear
        // small-vec grouping — batches rarely span more than a few windows),
        // fetch each range's plan from the cross-batch cache (at most one
        // boundary search per range, zero when warm), then sweep each plan
        // target once over the group's deduplicated, address-sorted probes.
        let mut results = vec![0u64; queries.len()];
        for (range, members) in group_by_range(queries) {
            let plan = self.cached_plan(range);
            if let [only] = members.as_slice() {
                // A lone query gains nothing from probe dedup/sorting; skip
                // the columnar machinery (query_with_plan is the row-wise
                // reference the columnar path is bit-identical to).
                let qi = *only as usize;
                // LINT-ALLOW(hot-path-panic): `members` holds indices into
                // `queries`, and `results` was sized to `queries.len()`.
                results[qi] = self.query_with_plan(&queries[qi], &plan);
            } else {
                self.evaluate_group_columnar(queries, &members, &plan, &mut results);
            }
        }
        results
    }

    fn space_bytes(&self) -> usize {
        self.space()
    }

    fn name(&self) -> &'static str {
        "HIGGS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HiggsConfig;
    use higgs_common::{ExactTemporalGraph, SubgraphQuery, SummaryExt};

    fn tiny_config() -> HiggsConfig {
        HiggsConfig::builder()
            .d1(4)
            .f1_bits(14)
            .bucket_entries(2)
            .mapping_addresses(2)
            .build()
            .expect("valid test configuration")
    }

    fn fig5_edges() -> Vec<StreamEdge> {
        vec![
            StreamEdge::new(1, 2, 1, 1),
            StreamEdge::new(4, 5, 1, 2),
            StreamEdge::new(2, 3, 1, 3),
            StreamEdge::new(1, 4, 2, 4),
            StreamEdge::new(4, 6, 3, 5),
            StreamEdge::new(2, 3, 1, 6),
            StreamEdge::new(3, 7, 2, 7),
            StreamEdge::new(4, 7, 2, 8),
            StreamEdge::new(2, 3, 2, 9),
            StreamEdge::new(5, 6, 1, 10),
            StreamEdge::new(6, 7, 1, 11),
        ]
    }

    #[test]
    fn reproduces_example_1_exactly() {
        let mut s = HiggsSummary::new(HiggsConfig::paper_default());
        for e in fig5_edges() {
            s.insert(&e);
        }
        // Example 1 of the paper, through both the primitive and the typed
        // surface.
        assert_eq!(s.edge_query(2, 3, TimeRange::new(5, 10)), 3);
        assert_eq!(s.query(&Query::edge(2, 3, TimeRange::new(5, 10))), 3);
        assert_eq!(
            s.vertex_query(4, VertexDirection::Out, TimeRange::new(1, 11)),
            6
        );
        let sub = SubgraphQuery::new(vec![(2, 3), (3, 7), (2, 4)], TimeRange::new(4, 8));
        assert_eq!(s.subgraph_query(&sub), 3);
        assert_eq!(s.query(&Query::Subgraph(sub)), 3);
    }

    #[test]
    fn matches_exact_store_on_small_collision_free_stream() {
        let mut s = HiggsSummary::new(HiggsConfig::paper_default());
        let mut exact = ExactTemporalGraph::new();
        let edges: Vec<StreamEdge> = (0..500u64)
            .map(|i| StreamEdge::new(i % 37, (i * 13) % 41 + 100, 1 + i % 4, i))
            .collect();
        for e in &edges {
            s.insert(e);
            exact.insert(e);
        }
        for (lo, hi) in [(0u64, 499u64), (10, 20), (100, 400), (250, 250)] {
            let r = TimeRange::new(lo, hi);
            for e in edges.iter().step_by(17) {
                assert_eq!(
                    s.edge_query(e.src, e.dst, r),
                    exact.edge_query(e.src, e.dst, r),
                    "edge ({},{}) over {r}",
                    e.src,
                    e.dst
                );
            }
            for v in [0u64, 5, 17, 101, 120] {
                assert_eq!(
                    s.vertex_query(v, VertexDirection::Out, r),
                    exact.vertex_query(v, VertexDirection::Out, r)
                );
                assert_eq!(
                    s.vertex_query(v, VertexDirection::In, r),
                    exact.vertex_query(v, VertexDirection::In, r)
                );
            }
        }
    }

    #[test]
    fn never_underestimates_with_tiny_matrices() {
        // Force heavy collisions with a deliberately under-sized structure:
        // estimates may exceed the truth but never fall below it.
        let mut s = HiggsSummary::new(tiny_config());
        let mut exact = ExactTemporalGraph::new();
        for i in 0..5_000u64 {
            let e = StreamEdge::new(i % 23, (i * 7) % 23, 1, i / 3);
            s.insert(&e);
            exact.insert(&e);
        }
        for (lo, hi) in [(0u64, 2000u64), (100, 300), (0, 50), (1500, 1666)] {
            let r = TimeRange::new(lo, hi);
            for src in 0..23u64 {
                for dst in 0..23u64 {
                    let est = s.edge_query(src, dst, r);
                    let truth = exact.edge_query(src, dst, r);
                    assert!(est >= truth, "underestimate for ({src},{dst}) over {r}");
                }
                let est = s.vertex_query(src, VertexDirection::Out, r);
                let truth = exact.vertex_query(src, VertexDirection::Out, r);
                assert!(est >= truth);
            }
        }
    }

    #[test]
    fn temporal_filtering_respects_range_boundaries() {
        let mut s = HiggsSummary::new(HiggsConfig::paper_default());
        s.insert(&StreamEdge::new(1, 2, 10, 100));
        s.insert(&StreamEdge::new(1, 2, 20, 200));
        s.insert(&StreamEdge::new(1, 2, 30, 300));
        assert_eq!(s.edge_query(1, 2, TimeRange::new(0, 99)), 0);
        assert_eq!(s.edge_query(1, 2, TimeRange::new(100, 100)), 10);
        assert_eq!(s.edge_query(1, 2, TimeRange::new(100, 200)), 30);
        assert_eq!(s.edge_query(1, 2, TimeRange::new(150, 250)), 20);
        assert_eq!(s.edge_query(1, 2, TimeRange::new(301, 400)), 0);
        assert_eq!(s.edge_query(1, 2, TimeRange::all()), 60);
    }

    #[test]
    fn plan_reuse_matches_direct_queries() {
        let mut s = HiggsSummary::new(tiny_config());
        for i in 0..3_000u64 {
            s.insert(&StreamEdge::new(i % 80, (i * 3) % 80, 1, i));
        }
        let range = TimeRange::new(500, 2_200);
        let plan = s.plan(range);
        for src in (0..80u64).step_by(7) {
            for dst in (0..80u64).step_by(11) {
                assert_eq!(
                    s.edge_query_with_plan(src, dst, &plan),
                    s.edge_query(src, dst, range)
                );
            }
            assert_eq!(
                s.vertex_query_with_plan(src, VertexDirection::In, &plan),
                s.vertex_query(src, VertexDirection::In, range)
            );
        }
    }

    #[test]
    fn typed_query_surface_matches_primitives() {
        let mut s = HiggsSummary::new(tiny_config());
        for i in 0..2_500u64 {
            s.insert(&StreamEdge::new(i % 60, (i * 11) % 60, 1 + i % 2, i));
        }
        let r = TimeRange::new(300, 2_000);
        assert_eq!(s.query(&Query::edge(3, 33, r)), s.edge_query(3, 33, r));
        assert_eq!(
            s.query(&Query::vertex(7, VertexDirection::In, r)),
            s.vertex_query(7, VertexDirection::In, r)
        );
        let path = higgs_common::PathQuery::new(vec![1, 11, 38, typed_dst(38)], r);
        assert_eq!(s.query(&Query::Path(path.clone())), s.path_query(&path));
        let sub = SubgraphQuery::new(vec![(1, 11), (2, 22), (3, 33)], r);
        assert_eq!(
            s.query(&Query::Subgraph(sub.clone())),
            s.subgraph_query(&sub)
        );
    }

    fn typed_dst(v: u64) -> u64 {
        (v * 11) % 60
    }

    #[test]
    fn query_batch_is_bit_identical_and_shares_plans() {
        let mut s = HiggsSummary::new(tiny_config());
        for i in 0..4_000u64 {
            s.insert(&StreamEdge::new(i % 90, (i * 7) % 90, 1, i));
        }
        let a = TimeRange::new(100, 1_500);
        let b = TimeRange::new(2_000, 3_900);
        let queries: Vec<Query> = vec![
            Query::edge(1, 7, a),
            Query::vertex(2, VertexDirection::Out, a),
            Query::path(vec![3, 21, 57, 39], a),
            Query::subgraph(vec![(4, 28), (5, 35), (6, 42)], b),
            Query::edge(8, 56, b),
            Query::path(vec![9, 63, 81], b),
        ];
        s.reset_plan_count();
        let batched = s.query_batch(&queries);
        // Two distinct ranges in the batch → exactly two boundary searches,
        // even though the batch expands into 11 primitive lookups.
        assert_eq!(s.plans_built(), 2);
        let looped: Vec<Weight> = queries.iter().map(|q| s.query(q)).collect();
        assert_eq!(batched, looped);
    }

    #[test]
    fn single_path_query_plans_once() {
        let mut s = HiggsSummary::new(tiny_config());
        for i in 0..3_000u64 {
            s.insert(&StreamEdge::new(i % 70, (i * 3) % 70, 1, i));
        }
        let r = TimeRange::new(200, 2_700);
        let path = higgs_common::PathQuery::new(vec![1, 3, 9, 27, 11, 33, 29, 17, 51, 13, 39], r);
        assert_eq!(path.hops(), 10);
        s.reset_plan_count();
        let typed = s.query(&Query::Path(path.clone()));
        assert_eq!(s.plans_built(), 1, "typed path query must plan once");
        s.reset_plan_count();
        let legacy = s.path_query(&path);
        assert_eq!(
            s.plans_built(),
            10,
            "per-hop composition plans once per hop"
        );
        assert_eq!(typed, legacy);
    }

    #[test]
    fn unmaterialised_aggregate_falls_back_to_leaf_descent() {
        // Regression test for the former
        // `expect("plan only references materialised aggregates")`: a plan
        // whose Aggregate target points at a node with deferred (in-flight)
        // aggregation must descend to the leaves instead of panicking.
        let mut s = HiggsSummary::with_deferred_aggregation(tiny_config());
        for i in 0..3_000u64 {
            s.insert(&StreamEdge::new(i % 50, (i * 3) % 50, 1, i));
        }
        assert!(
            s.internals.iter().flatten().any(|n| n.matrix.is_none()),
            "deferred mode must leave aggregates unmaterialised"
        );
        let (level, index) = (0usize, 0usize);
        let node_range = s.internals[level][index].time_range();
        let crafted = QueryPlan {
            targets: vec![QueryTarget::Aggregate { level, index }],
            range: Some(node_range),
        };
        for src in (0..50u64).step_by(7) {
            let dst = (src * 3) % 50;
            assert_eq!(
                s.edge_query_with_plan(src, dst, &crafted),
                s.edge_query(src, dst, node_range),
                "edge fallback for ({src},{dst})"
            );
            for dir in [VertexDirection::Out, VertexDirection::In] {
                assert_eq!(
                    s.vertex_query_with_plan(src, dir, &crafted),
                    s.vertex_query(src, dir, node_range),
                    "vertex fallback for {src}"
                );
            }
        }
        // A rangeless plan covers the node's whole subtree.
        let rangeless = QueryPlan {
            targets: vec![QueryTarget::Aggregate { level, index }],
            range: None,
        };
        assert_eq!(
            s.edge_query_with_plan(1, 3, &rangeless),
            s.edge_query(1, 3, node_range)
        );
    }

    #[test]
    fn batch_queries_stay_correct_with_deferred_aggregation_in_flight() {
        let mut deferred = HiggsSummary::with_deferred_aggregation(tiny_config());
        let mut inline = HiggsSummary::new(tiny_config());
        for i in 0..3_000u64 {
            let e = StreamEdge::new(i % 50, (i * 3) % 50, 1, i);
            deferred.insert(&e);
            inline.insert(&e);
        }
        let queries: Vec<Query> = (0..10u64)
            .map(|k| Query::edge(k, (k * 3) % 50, TimeRange::new(100 * k, 2_000 + 50 * k)))
            .chain([Query::path(vec![1, 3, 9, 27], TimeRange::new(0, 2_999))])
            .collect();
        assert_eq!(deferred.query_batch(&queries), inline.query_batch(&queries));
    }

    #[test]
    fn name_is_higgs() {
        let s = HiggsSummary::new(HiggsConfig::paper_default());
        assert_eq!(s.name(), "HIGGS");
    }
}
