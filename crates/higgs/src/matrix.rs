//! The HIGGS compressed matrix: a `d × d` grid of buckets, each holding up to
//! `b` fingerprinted entries, with the Multiple Mapping Buckets (MMB)
//! optimisation of Section IV-C.
//!
//! # Storage layout
//!
//! Bucket storage is a single contiguous slab: one `Vec` of `b · d²`
//! fixed-stride slots (bucket `(row, col)` owns slots
//! `[(row·d + col)·b, (row·d + col + 1)·b)`) plus one `Vec<u8>` of per-bucket
//! occupancy counts. Compared to the obvious `Vec<Vec<Entry>>` this removes
//! one heap allocation and one pointer chase per bucket: probing a bucket is
//! an index computation into an array that is already warm in cache, and a
//! source-vertex query sweeps a row as one contiguous `d · b`-slot range
//! instead of `d` separate heap objects.
//!
//! Each slot stores the match key packed into two integers: the fingerprint
//! pair as one `u64` (`fp_src` in the high half, `fp_dst` in the low half —
//! exact, since fingerprints are at most 32 bits each) and the MMB index pair
//! as one `u16`. A candidate scan therefore compares one `u64` and one `u16`
//! per slot instead of four separate fields. The index pair cannot be folded
//! into the key `u64` without truncating fingerprints (32 + 32 + 4 + 4 bits
//! exceeds 64), and truncation would change query semantics, so it stays a
//! separate — still single-compare — field.
//!
//! # Probing
//!
//! Every operation precomputes its `r` candidate rows and columns once with
//! an iterative LCG walk ([`AddressSequence::fill_sequence`]) into small
//! stack arrays; the `r × r` candidate loops then index those arrays. The
//! seed implementation recomputed each address from scratch per probe
//! (`address(base, i)` is O(i)), making the candidate loops effectively
//! cubic in `r`. Insertion additionally fuses the seed's two passes
//! (match-scan, then free-slot-scan) into a single sweep that records the
//! first free slot while searching for a match.
//!
//! Leaf matrices store a per-entry time offset relative to the matrix's start
//! time; aggregated (non-leaf) matrices store no temporal information
//! (Section IV-A). Every entry also records the index pair `(i, j)` of the
//! mapping-bucket it occupies so that queries and aggregation can attribute
//! it to the correct base address.

use higgs_common::hashing::AddressSequence;

/// Maximum number of MMB mapping addresses per vertex: index pairs are
/// stored as two 8-bit halves of a `u16` and candidate addresses live in
/// fixed stack arrays of this size. [`HiggsConfig`](crate::HiggsConfig)
/// validates the same bound.
pub const MAX_MAPPING: usize = 16;

/// One stored edge record: the fingerprint pair, the MMB index pair, the
/// time offset (leaf matrices only; 0 in aggregated matrices), and the
/// accumulated weight.
///
/// This is the public *view* of a slot; internally the fingerprint and index
/// pairs are packed (see the module docs), and [`CompressedMatrix::entries`]
/// materialises `Entry` values on the fly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Entry {
    /// Source fingerprint at this matrix's layer.
    pub fp_src: u32,
    /// Destination fingerprint at this matrix's layer.
    pub fp_dst: u32,
    /// Index of the source mapping address used (`i` of the index pair).
    pub idx_src: u8,
    /// Index of the destination mapping address used (`j` of the index pair).
    pub idx_dst: u8,
    /// Timestamp offset relative to the matrix's start time (leaf layer only).
    pub time_offset: u32,
    /// Accumulated weight (signed so deletions cannot wrap).
    pub weight: i64,
}

/// A query-time filter on entry time offsets (inclusive bounds). `None`
/// disables temporal filtering (non-leaf matrices).
pub type OffsetFilter = Option<(u32, u32)>;

/// One occupied slot of the slab: the packed match key plus payload.
/// Crate-visible so the snapshot codec can persist the slab verbatim.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Slot {
    /// `fp_src` in the high 32 bits, `fp_dst` in the low 32 bits.
    pub(crate) key: u64,
    /// `idx_src` in the high byte, `idx_dst` in the low byte.
    pub(crate) idx: u16,
    /// Timestamp offset relative to the matrix's start time (leaf layer only).
    pub(crate) time_offset: u32,
    /// Accumulated weight.
    pub(crate) weight: i64,
}

const EMPTY_SLOT: Slot = Slot {
    key: 0,
    idx: 0,
    time_offset: 0,
    weight: 0,
};

#[inline]
fn pack_key(fp_src: u32, fp_dst: u32) -> u64 {
    (u64::from(fp_src) << 32) | u64::from(fp_dst)
}

#[inline]
fn pack_idx(i: usize, j: usize) -> u16 {
    ((i as u16) << 8) | j as u16
}

/// A spilled aggregation entry: kept outside the bucket grid when every
/// candidate bucket of an aggregation insert is full. Spills are rare (the
/// parent has the same total capacity as its children) but must preserve
/// exact attribution so that aggregation never loses weight for any edge.
/// Crate-visible so the snapshot codec can persist spills verbatim.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct SpillEntry {
    pub(crate) addr_src: u64,
    pub(crate) addr_dst: u64,
    pub(crate) fp_src: u32,
    pub(crate) fp_dst: u32,
    pub(crate) weight: i64,
}

/// The HIGGS compressed matrix.
#[derive(Clone, Debug)]
pub struct CompressedMatrix {
    side: u64,
    layer: u32,
    bucket_entries: usize,
    mapping: u32,
    seq: AddressSequence,
    /// `b · d²` fixed-stride slots; bucket `(r, c)` owns
    /// `slots[(r·d + c)·b ..][..b]`, of which the first `lens[r·d + c]` are
    /// occupied.
    slots: Vec<Slot>,
    /// Per-bucket occupancy, indexed by `r·d + c`.
    lens: Vec<u8>,
    spill: Vec<SpillEntry>,
    stored: usize,
}

impl CompressedMatrix {
    /// Creates an empty matrix of `side × side` buckets at tree layer
    /// `layer`, with `bucket_entries` entries per bucket and `mapping`
    /// candidate addresses per vertex.
    pub fn new(side: u64, layer: u32, bucket_entries: usize, mapping: u32) -> Self {
        assert!(side.is_power_of_two() && side >= 2);
        assert!(
            bucket_entries >= 1 && bucket_entries <= u8::MAX as usize,
            "bucket_entries must be in [1, 255]"
        );
        assert!(
            mapping >= 1 && mapping as usize <= MAX_MAPPING,
            "mapping must be in [1, {MAX_MAPPING}]"
        );
        let buckets = (side * side) as usize;
        Self {
            side,
            layer,
            bucket_entries,
            mapping,
            seq: AddressSequence::new(side),
            slots: vec![EMPTY_SLOT; buckets * bucket_entries],
            lens: vec![0u8; buckets],
            spill: Vec::new(),
            stored: 0,
        }
    }

    /// Matrix side length `d`.
    pub fn side(&self) -> u64 {
        self.side
    }

    /// Tree layer this matrix belongs to (1 = leaf layer).
    pub fn layer(&self) -> u32 {
        self.layer
    }

    /// Number of entries currently stored.
    pub fn stored(&self) -> usize {
        self.stored
    }

    /// Maximum number of entries (`b · d²`).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Fraction of entry slots in use (the utilisation rate of Section V-A).
    pub fn utilization(&self) -> f64 {
        self.stored as f64 / self.capacity() as f64
    }

    /// Whether the matrix holds no entries.
    pub fn is_empty(&self) -> bool {
        self.stored == 0
    }

    /// Number of aggregation entries that spilled outside the bucket grid
    /// because every candidate bucket was full (diagnostic; always zero for
    /// leaf usage and zero whenever the parent capacity suffices).
    pub fn spill_len(&self) -> usize {
        self.spill.len()
    }

    /// Total stored weight (bucket entries plus spilled entries).
    pub fn total_weight(&self) -> i64 {
        self.occupied_slots().map(|(_, s)| s.weight).sum::<i64>()
            + self.spill.iter().map(|e| e.weight).sum::<i64>()
    }

    /// The candidate rows/columns of `addr`: the first `mapping` LCG
    /// addresses, computed iteratively in one pass.
    #[inline]
    fn candidates(&self, addr: u64) -> [u64; MAX_MAPPING] {
        let mut out = [0u64; MAX_MAPPING];
        self.seq
            .fill_sequence(addr, &mut out[..self.mapping as usize]);
        out
    }

    /// Slab range of bucket `(row, col)`: `(bucket index, slot start)`.
    #[inline]
    fn bucket_slots(&self, row: u64, col: u64) -> (usize, usize) {
        let bucket = (row * self.side + col) as usize;
        (bucket, bucket * self.bucket_entries)
    }

    /// Tries to insert (or accumulate) an entry. Returns `false` if every
    /// candidate bucket is full and no matching entry exists — the signal
    /// that triggers leaf creation in Algorithm 1.
    ///
    /// `time_offset = Some(o)` (leaf matrices) requires matching entries to
    /// carry the same offset; `None` (aggregated matrices) matches on the
    /// fingerprint pair alone.
    ///
    /// Single fused pass over the `r × r` candidate buckets: while scanning
    /// for a matching entry (which may live in any candidate bucket because
    /// earlier ones were full when it first arrived), the first free slot is
    /// recorded; if the scan finds no match, the entry is placed there.
    pub fn try_insert(
        &mut self,
        addr_src: u64,
        addr_dst: u64,
        fp_src: u32,
        fp_dst: u32,
        time_offset: Option<u32>,
        weight: i64,
    ) -> bool {
        let offset = time_offset.unwrap_or(0);
        let match_any_offset = time_offset.is_none();
        let key = pack_key(fp_src, fp_dst);
        let m = self.mapping as usize;
        let rows = self.candidates(addr_src);
        let cols = self.candidates(addr_dst);
        // (bucket index, free slot position, packed index pair) of the first
        // candidate bucket with spare capacity, in (i, j) scan order.
        let mut free: Option<(usize, usize, u16)> = None;
        for (i, &row) in rows[..m].iter().enumerate() {
            for (j, &col) in cols[..m].iter().enumerate() {
                let idx = pack_idx(i, j);
                let (bucket, start) = self.bucket_slots(row, col);
                let len = self.lens[bucket] as usize;
                for slot in &mut self.slots[start..start + len] {
                    if slot.key == key
                        && slot.idx == idx
                        && (match_any_offset || slot.time_offset == offset)
                    {
                        slot.weight += weight;
                        return true;
                    }
                }
                if free.is_none() && len < self.bucket_entries {
                    free = Some((bucket, start + len, idx));
                }
            }
        }
        if let Some((bucket, pos, idx)) = free {
            self.slots[pos] = Slot {
                key,
                idx,
                time_offset: offset,
                weight,
            };
            self.lens[bucket] += 1;
            self.stored += 1;
            return true;
        }
        false
    }

    /// Inserts during aggregation: never fails. If every candidate bucket is
    /// full, the entry is kept in an exact spill list keyed by its base
    /// address and fingerprint pair, so aggregation never loses or misplaces
    /// weight (Algorithm 2's no-additional-error guarantee).
    pub fn insert_aggregated(
        &mut self,
        addr_src: u64,
        addr_dst: u64,
        fp_src: u32,
        fp_dst: u32,
        weight: i64,
    ) {
        if self.try_insert(addr_src, addr_dst, fp_src, fp_dst, None, weight) {
            return;
        }
        let addr_src = addr_src % self.side;
        let addr_dst = addr_dst % self.side;
        if let Some(existing) = self.spill.iter_mut().find(|e| {
            e.addr_src == addr_src
                && e.addr_dst == addr_dst
                && e.fp_src == fp_src
                && e.fp_dst == fp_dst
        }) {
            existing.weight += weight;
        } else {
            self.spill.push(SpillEntry {
                addr_src,
                addr_dst,
                fp_src,
                fp_dst,
                weight,
            });
        }
    }

    /// Decrements a previously inserted edge. Matching entries are searched
    /// across all candidate buckets; if `filter` is given, only entries whose
    /// offset lies inside it are decremented. Returns `true` if any entry was
    /// found.
    pub fn try_delete(
        &mut self,
        addr_src: u64,
        addr_dst: u64,
        fp_src: u32,
        fp_dst: u32,
        filter: OffsetFilter,
        weight: i64,
    ) -> bool {
        let key = pack_key(fp_src, fp_dst);
        let m = self.mapping as usize;
        let rows = self.candidates(addr_src);
        let cols = self.candidates(addr_dst);
        for (i, &row) in rows[..m].iter().enumerate() {
            for (j, &col) in cols[..m].iter().enumerate() {
                let idx = pack_idx(i, j);
                let (bucket, start) = self.bucket_slots(row, col);
                let len = self.lens[bucket] as usize;
                for slot in &mut self.slots[start..start + len] {
                    if slot.key == key && slot.idx == idx && offset_in(slot.time_offset, filter) {
                        slot.weight -= weight;
                        return true;
                    }
                }
            }
        }
        let (addr_src, addr_dst) = (addr_src % self.side, addr_dst % self.side);
        if let Some(entry) = self.spill.iter_mut().find(|e| {
            e.addr_src == addr_src
                && e.addr_dst == addr_dst
                && e.fp_src == fp_src
                && e.fp_dst == fp_dst
        }) {
            entry.weight -= weight;
            return true;
        }
        false
    }

    /// Edge query: sums entries matching the fingerprint pair (and offset
    /// filter) over all candidate buckets. Never underestimates.
    pub fn edge_weight(
        &self,
        addr_src: u64,
        addr_dst: u64,
        fp_src: u32,
        fp_dst: u32,
        filter: OffsetFilter,
    ) -> u64 {
        let key = pack_key(fp_src, fp_dst);
        let m = self.mapping as usize;
        let rows = self.candidates(addr_src);
        let cols = self.candidates(addr_dst);
        let mut total = 0i64;
        for (i, &row) in rows[..m].iter().enumerate() {
            for (j, &col) in cols[..m].iter().enumerate() {
                let idx = pack_idx(i, j);
                let (bucket, start) = self.bucket_slots(row, col);
                let len = self.lens[bucket] as usize;
                for slot in &self.slots[start..start + len] {
                    if slot.key == key && slot.idx == idx && offset_in(slot.time_offset, filter) {
                        total += slot.weight;
                    }
                }
            }
        }
        let (addr_src, addr_dst) = (addr_src % self.side, addr_dst % self.side);
        total += self
            .spill
            .iter()
            .filter(|e| {
                e.addr_src == addr_src
                    && e.addr_dst == addr_dst
                    && e.fp_src == fp_src
                    && e.fp_dst == fp_dst
            })
            .map(|e| e.weight)
            .sum::<i64>();
        total.max(0) as u64
    }

    /// Source-vertex query: sums entries in the candidate rows whose source
    /// fingerprint (and row index) match (Eq. (2) of the paper, extended to
    /// MMB rows). Each candidate row is one contiguous `d · b`-slot sweep of
    /// the slab.
    pub fn src_weight(&self, addr_src: u64, fp_src: u32, filter: OffsetFilter) -> u64 {
        let m = self.mapping as usize;
        let rows = self.candidates(addr_src);
        let mut total = 0i64;
        for (i, &row) in rows[..m].iter().enumerate() {
            let i = i as u16;
            let first_bucket = (row * self.side) as usize;
            for (bucket_off, &len) in self.lens[first_bucket..first_bucket + self.side as usize]
                .iter()
                .enumerate()
            {
                let start = (first_bucket + bucket_off) * self.bucket_entries;
                for slot in &self.slots[start..start + len as usize] {
                    if (slot.key >> 32) as u32 == fp_src
                        && slot.idx >> 8 == i
                        && offset_in(slot.time_offset, filter)
                    {
                        total += slot.weight;
                    }
                }
            }
        }
        let addr_src = addr_src % self.side;
        total += self
            .spill
            .iter()
            .filter(|e| e.addr_src == addr_src && e.fp_src == fp_src)
            .map(|e| e.weight)
            .sum::<i64>();
        total.max(0) as u64
    }

    /// Destination-vertex query: sums entries in the candidate columns whose
    /// destination fingerprint (and column index) match.
    pub fn dst_weight(&self, addr_dst: u64, fp_dst: u32, filter: OffsetFilter) -> u64 {
        let m = self.mapping as usize;
        let cols = self.candidates(addr_dst);
        let mut total = 0i64;
        for (j, &col) in cols[..m].iter().enumerate() {
            let j = j as u16;
            for row in 0..self.side {
                let (bucket, start) = self.bucket_slots(row, col);
                let len = self.lens[bucket] as usize;
                for slot in &self.slots[start..start + len] {
                    if slot.key as u32 == fp_dst
                        && slot.idx & 0xFF == j
                        && offset_in(slot.time_offset, filter)
                    {
                        total += slot.weight;
                    }
                }
            }
        }
        let addr_dst = addr_dst % self.side;
        total += self
            .spill
            .iter()
            .filter(|e| e.addr_dst == addr_dst && e.fp_dst == fp_dst)
            .map(|e| e.weight)
            .sum::<i64>();
        total.max(0) as u64
    }

    /// Iterates over occupied slots together with their bucket index.
    fn occupied_slots(&self) -> impl Iterator<Item = (usize, &Slot)> {
        self.lens
            .iter()
            .enumerate()
            .flat_map(move |(bucket, &len)| {
                let start = bucket * self.bucket_entries;
                self.slots[start..start + len as usize]
                    .iter()
                    .map(move |s| (bucket, s))
            })
    }

    /// Iterates over all stored entries together with the row/column of the
    /// bucket holding them (used by aggregation).
    pub fn entries(&self) -> impl Iterator<Item = (u64, u64, Entry)> + '_ {
        self.occupied_slots().map(move |(bucket, slot)| {
            let row = bucket as u64 / self.side;
            let col = bucket as u64 % self.side;
            let entry = Entry {
                fp_src: (slot.key >> 32) as u32,
                fp_dst: slot.key as u32,
                idx_src: (slot.idx >> 8) as u8,
                idx_dst: slot.idx as u8,
                time_offset: slot.time_offset,
                weight: slot.weight,
            };
            (row, col, entry)
        })
    }

    /// The LCG address sequence used by this matrix (needed to map stored
    /// bucket positions back to base addresses during aggregation).
    pub fn address_sequence(&self) -> AddressSequence {
        self.seq
    }

    /// Memory footprint in bytes. The slab is allocated eagerly, so this is
    /// independent of fill level (unlike the seed's per-bucket `Vec`s).
    pub fn space_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Slot>()
            + self.lens.capacity()
            + self.spill.capacity() * std::mem::size_of::<SpillEntry>()
            + std::mem::size_of::<Self>()
    }

    // --- snapshot support (crate-internal) --------------------------------
    //
    // The snapshot codec (`crate::snapshot`) persists the slab verbatim: the
    // per-bucket occupancy array plus only the occupied slots (empty slots
    // are always `EMPTY_SLOT`, so they carry no information), and the spill
    // list. These accessors expose exactly that state.

    /// Number of MMB mapping addresses per vertex (`r`).
    pub(crate) fn mapping(&self) -> u32 {
        self.mapping
    }

    /// Number of entry slots per bucket (`b`).
    pub(crate) fn bucket_entries(&self) -> usize {
        self.bucket_entries
    }

    /// The per-bucket occupancy array, indexed by `row · d + col`.
    pub(crate) fn raw_lens(&self) -> &[u8] {
        &self.lens
    }

    /// The occupied slots of bucket `bucket`, in slab order.
    pub(crate) fn bucket_occupied_slots(&self, bucket: usize) -> &[Slot] {
        let start = bucket * self.bucket_entries;
        &self.slots[start..start + self.lens[bucket] as usize]
    }

    /// The spill list, in insertion order.
    pub(crate) fn spill_entries(&self) -> &[SpillEntry] {
        &self.spill
    }

    /// Rebuilds the slab from persisted state: per-bucket occupancy plus the
    /// occupied slots in slab order (`occupied.len()` must equal the sum of
    /// `lens`), and the spill list. The geometry (`self`) must have been
    /// constructed with [`CompressedMatrix::new`] using the persisted
    /// parameters; occupancy counts exceeding `bucket_entries` or a slot
    /// count mismatch are rejected so a corrupt snapshot can never build a
    /// structurally inconsistent matrix.
    pub(crate) fn restore_slab(
        &mut self,
        lens: Vec<u8>,
        occupied: Vec<Slot>,
        spill: Vec<SpillEntry>,
    ) -> Result<(), String> {
        if lens.len() != self.lens.len() {
            return Err(format!(
                "bucket count mismatch: expected {}, got {}",
                self.lens.len(),
                lens.len()
            ));
        }
        if let Some(bad) = lens.iter().find(|&&l| l as usize > self.bucket_entries) {
            return Err(format!(
                "bucket occupancy {bad} exceeds bucket_entries {}",
                self.bucket_entries
            ));
        }
        let total: usize = lens.iter().map(|&l| l as usize).sum();
        if total != occupied.len() {
            return Err(format!(
                "occupied slot count mismatch: lens sum to {total}, got {} slots",
                occupied.len()
            ));
        }
        self.slots.fill(EMPTY_SLOT);
        let mut next = 0usize;
        for (bucket, &len) in lens.iter().enumerate() {
            let start = bucket * self.bucket_entries;
            let len = len as usize;
            self.slots[start..start + len].copy_from_slice(&occupied[next..next + len]);
            next += len;
        }
        self.lens = lens;
        self.spill = spill;
        self.stored = total;
        Ok(())
    }
}

#[inline]
fn offset_in(offset: u32, filter: OffsetFilter) -> bool {
    match filter {
        None => true,
        Some((lo, hi)) => offset >= lo && offset <= hi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> CompressedMatrix {
        CompressedMatrix::new(8, 1, 3, 4)
    }

    #[test]
    fn insert_and_edge_query() {
        let mut m = matrix();
        assert!(m.try_insert(1, 2, 100, 200, Some(5), 7));
        assert_eq!(m.edge_weight(1, 2, 100, 200, None), 7);
        assert_eq!(m.edge_weight(1, 2, 100, 200, Some((0, 10))), 7);
        assert_eq!(m.edge_weight(1, 2, 100, 200, Some((6, 10))), 0);
    }

    #[test]
    fn same_edge_same_offset_accumulates() {
        let mut m = matrix();
        assert!(m.try_insert(1, 2, 100, 200, Some(5), 3));
        assert!(m.try_insert(1, 2, 100, 200, Some(5), 4));
        assert_eq!(m.stored(), 1);
        assert_eq!(m.edge_weight(1, 2, 100, 200, None), 7);
    }

    #[test]
    fn same_edge_different_offset_uses_two_entries() {
        let mut m = matrix();
        assert!(m.try_insert(1, 2, 100, 200, Some(5), 3));
        assert!(m.try_insert(1, 2, 100, 200, Some(9), 4));
        assert_eq!(m.stored(), 2);
        assert_eq!(m.edge_weight(1, 2, 100, 200, Some((0, 6))), 3);
        assert_eq!(m.edge_weight(1, 2, 100, 200, Some((6, 9))), 4);
        assert_eq!(m.edge_weight(1, 2, 100, 200, None), 7);
    }

    #[test]
    fn aggregated_mode_ignores_offsets() {
        let mut m = CompressedMatrix::new(8, 2, 3, 4);
        assert!(m.try_insert(1, 2, 10, 20, None, 3));
        assert!(m.try_insert(1, 2, 10, 20, None, 4));
        assert_eq!(m.stored(), 1);
        assert_eq!(m.edge_weight(1, 2, 10, 20, None), 7);
    }

    #[test]
    fn distinct_fingerprints_do_not_mix() {
        let mut m = matrix();
        assert!(m.try_insert(1, 2, 100, 200, Some(0), 5));
        assert!(m.try_insert(1, 2, 101, 200, Some(0), 9));
        assert_eq!(m.edge_weight(1, 2, 100, 200, None), 5);
        assert_eq!(m.edge_weight(1, 2, 101, 200, None), 9);
    }

    #[test]
    fn insertion_fails_when_all_candidates_full() {
        // 2×2 matrix, 1 entry per bucket, 1 mapping address: capacity 4 but a
        // single (addr, addr) pair only ever sees one bucket.
        let mut m = CompressedMatrix::new(2, 1, 1, 1);
        assert!(m.try_insert(0, 0, 1, 1, Some(0), 1));
        assert!(!m.try_insert(0, 0, 2, 2, Some(0), 1), "bucket is full");
    }

    #[test]
    fn mmb_increases_effective_capacity() {
        let mut without = CompressedMatrix::new(4, 1, 1, 1);
        let mut with = CompressedMatrix::new(4, 1, 1, 4);
        let mut placed_without = 0;
        let mut placed_with = 0;
        for k in 0..64u32 {
            // All edges share the same base address pair: the worst case MMB
            // is designed for.
            if without.try_insert(1, 1, k, k, Some(0), 1) {
                placed_without += 1;
            }
            if with.try_insert(1, 1, k, k, Some(0), 1) {
                placed_with += 1;
            }
        }
        assert!(placed_with > placed_without);
    }

    #[test]
    fn vertex_queries_sum_rows_and_columns() {
        let mut m = matrix();
        m.try_insert(3, 1, 10, 21, Some(0), 2);
        m.try_insert(3, 2, 10, 22, Some(0), 3);
        m.try_insert(4, 1, 11, 21, Some(0), 5);
        assert_eq!(m.src_weight(3, 10, None), 5);
        assert_eq!(m.dst_weight(1, 21, None), 7);
        assert_eq!(m.src_weight(4, 11, None), 5);
    }

    #[test]
    fn vertex_query_respects_offset_filter() {
        let mut m = matrix();
        m.try_insert(3, 1, 10, 21, Some(2), 2);
        m.try_insert(3, 2, 10, 22, Some(8), 3);
        assert_eq!(m.src_weight(3, 10, Some((0, 4))), 2);
        assert_eq!(m.src_weight(3, 10, Some((5, 9))), 3);
    }

    #[test]
    fn delete_decrements_weight() {
        let mut m = matrix();
        m.try_insert(1, 2, 100, 200, Some(5), 7);
        assert!(m.try_delete(1, 2, 100, 200, Some((5, 5)), 3));
        assert_eq!(m.edge_weight(1, 2, 100, 200, None), 4);
        assert!(!m.try_delete(1, 2, 100, 200, Some((9, 9)), 1));
    }

    #[test]
    fn insert_aggregated_never_fails_or_loses_attribution() {
        let mut m = CompressedMatrix::new(2, 2, 1, 1);
        for k in 0..20u32 {
            m.insert_aggregated(0, 0, k, k, 1);
        }
        assert!(m.spill_len() > 0, "tiny aggregate must spill");
        assert_eq!(m.total_weight(), 20);
        // Every spilled edge remains individually queryable: no weight is
        // credited to the wrong fingerprint.
        for k in 0..20u32 {
            assert_eq!(m.edge_weight(0, 0, k, k, None), 1);
        }
        // Vertex queries see spilled entries too.
        assert_eq!(m.src_weight(0, 5, None), 1);
        assert_eq!(m.dst_weight(0, 7, None), 1);
        // Deleting a spilled entry works.
        assert!(m.try_delete(0, 0, 9, 9, None, 1));
        assert_eq!(m.edge_weight(0, 0, 9, 9, None), 0);
    }

    #[test]
    fn entries_iterator_reports_positions() {
        let mut m = matrix();
        m.try_insert(1, 2, 100, 200, Some(0), 7);
        let collected: Vec<_> = m.entries().collect();
        assert_eq!(collected.len(), 1);
        let (row, col, e) = collected[0];
        assert!(row < 8 && col < 8);
        assert_eq!(e.weight, 7);
    }

    #[test]
    fn utilization_and_space() {
        let mut m = matrix();
        assert_eq!(m.utilization(), 0.0);
        m.try_insert(1, 2, 1, 2, Some(0), 1);
        assert!(m.utilization() > 0.0);
        assert!(m.space_bytes() > 0);
        assert_eq!(m.capacity(), 3 * 64);
        assert_eq!(m.side(), 8);
        assert_eq!(m.layer(), 1);
        assert!(!m.is_empty());
    }

    #[test]
    fn packed_key_preserves_full_fingerprint_width() {
        // Fingerprints that agree on their low bits but differ in the top
        // bits must stay distinct: the packed key keeps all 32 bits of each
        // fingerprint.
        let mut m = matrix();
        let (lo, hi) = (0x0000_1234u32, 0xFFF0_1234u32);
        assert!(m.try_insert(1, 2, lo, lo, Some(0), 3));
        assert!(m.try_insert(1, 2, hi, lo, Some(0), 5));
        assert!(m.try_insert(1, 2, lo, hi, Some(0), 7));
        assert_eq!(m.edge_weight(1, 2, lo, lo, None), 3);
        assert_eq!(m.edge_weight(1, 2, hi, lo, None), 5);
        assert_eq!(m.edge_weight(1, 2, lo, hi, None), 7);
        assert_eq!(m.stored(), 3);
    }

    #[test]
    fn entries_round_trip_packed_fields() {
        let mut m = matrix();
        m.try_insert(5, 6, 0xDEAD_BEEF, 0xCAFE_F00D, Some(42), 11);
        let (_, _, e) = m.entries().next().expect("one entry");
        assert_eq!(e.fp_src, 0xDEAD_BEEF);
        assert_eq!(e.fp_dst, 0xCAFE_F00D);
        assert_eq!(e.time_offset, 42);
        assert_eq!(e.weight, 11);
        assert!(u32::from(e.idx_src) < 4 && u32::from(e.idx_dst) < 4);
    }

    #[test]
    fn slab_layout_is_fixed_stride() {
        // Filling one bucket to capacity must not affect neighbours: the
        // slab gives every bucket exactly `b` slots.
        let mut m = CompressedMatrix::new(4, 1, 2, 1);
        // Same address pair → same single candidate bucket (mapping = 1).
        assert!(m.try_insert(1, 1, 1, 1, Some(0), 1));
        assert!(m.try_insert(1, 1, 2, 2, Some(0), 1));
        assert!(!m.try_insert(1, 1, 3, 3, Some(0), 1), "bucket full");
        // A different address pair still inserts fine.
        assert!(m.try_insert(2, 2, 4, 4, Some(0), 1));
        assert_eq!(m.stored(), 3);
    }

    #[test]
    #[should_panic(expected = "mapping must be in")]
    fn mapping_above_max_rejected() {
        let _ = CompressedMatrix::new(8, 1, 3, MAX_MAPPING as u32 + 1);
    }

    #[test]
    #[should_panic(expected = "bucket_entries must be in")]
    fn oversized_bucket_rejected() {
        let _ = CompressedMatrix::new(8, 1, 256, 4);
    }
}
